//! Offline subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, by hand-parsing the item's token
//! stream (the real implementation's `syn`/`quote` stack is unavailable in
//! this offline build):
//!
//! - structs with named fields, tuple structs (incl. newtypes), unit structs,
//! - enums with unit, newtype, tuple and struct variants
//!   (externally tagged, serde's default representation),
//! - no generic parameters and no `#[serde(...)]` attributes.
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation
//! rather than silently generating wrong code. The generated impls target
//! the vendored `serde` crate's `Value`-based traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Number of fields of a tuple struct / variant.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(message) => format!("compile_error!({message:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Skips one leading attribute (`#[...]` / `#![...]`) if present.
fn skip_attribute(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '#' {
            pos += 1;
            if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
                if p.as_char() == '!' {
                    pos += 1;
                }
            }
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Bracket {
                    return pos + 1;
                }
            }
        }
    }
    pos
}

fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        let next = skip_attribute(tokens, pos);
        if next == pos {
            return pos;
        }
        pos = next;
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(pos) {
        if ident.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attributes(&tokens, 0);
    pos = skip_visibility(&tokens, pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde derive: expected struct/enum, got {other:?}")),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive (vendored subset): generic type `{name}` is not supported"
            ));
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("serde derive: unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("serde derive: expected enum body, got {other:?}")),
        },
        other => Err(format!("serde derive: unsupported item kind `{other}`")),
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Commas inside
/// groups are invisible at this level; commas inside generic arguments are
/// skipped by tracking `<`/`>` depth.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attributes(&tokens, pos);
        pos = skip_visibility(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("serde derive: expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde derive: expected `:`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (i, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if i + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attributes(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected variant name, got {other:?}"
                ))
            }
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn serialize_named_fields(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fields) => serialize_named_fields(fields, "self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Named(fields) => {
                            let bindings = fields.join(", ");
                            let payload = serialize_named_fields(fields, "*");
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({vname:?}), {payload})]),"
                            )
                        }
                        Fields::Tuple(n) => {
                            let bindings: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = bindings
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({vname:?}), {payload})]),",
                                bindings.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn deserialize_named_fields(fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::helpers::field({source}, {f:?})?,"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fields) => format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    deserialize_named_fields(fields, "__value")
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                ),
                Fields::Tuple(n) => {
                    let elements: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::helpers::element(__value, {i})?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", elements.join(", "))
                }
            };
            format!(
                "#[automatically_derived]\n\
                 impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => {
                            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                        }
                        Fields::Named(fields) => format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            deserialize_named_fields(fields, "__payload")
                        ),
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elements: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::helpers::element(__payload, {i})?"))
                                .collect();
                            format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname}({})),",
                                elements.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__tag, __payload) = ::serde::helpers::variant(__value, {name:?})?;\n\
                         match __tag {{\n{}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}
