//! Offline, API-compatible subset of
//! [rand_distr 0.4](https://docs.rs/rand_distr/0.4): the [`Distribution`]
//! trait and the samplers the Chronos workspace uses. Normal variates come
//! from the Box–Muller transform (exact, two uniforms per pair) instead of
//! upstream's ziggurat tables — slower, but dependency-free and exact.

#![deny(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// An iterator of samples (mirrors upstream's `sample_iter`).
    fn sample_iter<R: RngCore>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Iterator returned by [`Distribution::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Draws a standard normal variate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(0.0..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        if u1 > 0.0 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite()) {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the location `mu` and scale
    /// `sigma` of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !(sigma >= 0.0 && sigma.is_finite() && mu.is_finite()) {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `lambda` is not strictly positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(Error("Exp requires lambda > 0"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(5.0, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = LogNormal::new(1.0, 0.5).unwrap();
        let mut samples: Vec<f64> = (0..20_001).map(|_| dist.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!(
            (median - 1.0f64.exp()).abs() / 1.0f64.exp() < 0.05,
            "median {median}"
        );
        assert!(samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn exp_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Exp::new(0.5).unwrap();
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
    }
}
