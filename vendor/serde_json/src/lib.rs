//! Offline, API-compatible subset of [serde_json](https://docs.rs/serde_json).
//!
//! Provides exactly what this workspace calls: [`to_string`],
//! [`to_string_pretty`] and [`from_str`], implemented over the vendored
//! `serde` crate's [`Value`] data model. The emitted text is standard JSON
//! (RFC 8259): UTF-8, string escapes, `null` for non-finite floats,
//! integer-keyed maps stringified — matching upstream serde_json's defaults
//! closely enough that artifacts round-trip byte-for-byte through this pair
//! of crates.

#![deny(unsafe_code)]

use std::fmt;

pub use serde::{Number, Value};

/// Error for malformed JSON text or shape mismatches while rebuilding a
/// typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.0)
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for this subset; the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent, like
/// upstream serde_json).
///
/// # Errors
///
/// Infallible for this subset; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the document does not
/// match the target type's shape.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, number: Number) {
    match number {
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // Keep integral floats distinguishable from integers, as
            // upstream serde_json does ("1.0" not "1").
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(
            parse_value("-12").unwrap(),
            Value::Number(Number::NegInt(-12))
        );
        assert_eq!(
            parse_value("3.5e2").unwrap(),
            Value::Number(Number::Float(350.0))
        );
        assert_eq!(
            parse_value("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
    }

    #[test]
    fn pretty_round_trip() {
        let value = Value::Object(vec![
            ("label".into(), Value::Str("hadoop-ns".into())),
            (
                "values".into(),
                Value::Array(vec![
                    Value::Number(Number::Float(1.0)),
                    Value::Number(Number::PosInt(7)),
                    Value::Null,
                ]),
            ),
        ]);
        let text = to_string_pretty(&ValueWrap(value.clone())).unwrap();
        assert!(text.contains("\n  \"label\": \"hadoop-ns\""));
        assert_eq!(parse_value(&text).unwrap(), value);
    }

    struct ValueWrap(Value);
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<Option<f64>> = vec![Some(1.25), None];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1.25,null]");
        let back: Vec<Option<f64>> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{,}").is_err());
        assert!(parse_value("[1 2]").is_err());
        assert!(parse_value("12 extra").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_invalid_ones_are_rejected() {
        assert_eq!(
            parse_value("\"\\uD83D\\uDE00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        // High surrogate followed by a non-surrogate must error, not
        // silently mis-decode.
        assert!(parse_value("\"\\uD800\\u0041\"").is_err());
        assert!(parse_value("\"\\uD800\"").is_err());
    }
}
