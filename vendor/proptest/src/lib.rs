//! Offline, API-compatible subset of [proptest](https://docs.rs/proptest).
//!
//! Supports the surface `chronos-core/tests/properties.rs` uses:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - range strategies over floats and integers, tuple strategies up to
//!   arity 6, [`Strategy::prop_map`] and [`Strategy::prop_filter`],
//! - `prop_assert!`-style assertions.
//!
//! Differences from upstream, deliberate for an offline deterministic test
//! suite: inputs come from a per-test RNG seeded from a hash of the test
//! name (every run explores the same cases — no entropy, no persistence
//! file), and failing cases are reported but **not shrunk**.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-run configuration, mirroring the upstream struct's field of the
/// same name.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving input generation. Deterministic: seeded from the test
/// name, so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    #[cfg(test)]
    fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }
}

/// Builds the deterministic RNG for a named test (called by the generated
/// code of [`proptest!`]).
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng(StdRng::seed_from_u64(hash))
}

/// A source of generated values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates the next value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Discards generated values failing `predicate`, resampling instead
    /// (upstream rejects the case; resampling is equivalent without a
    /// global rejection budget). Panics after 10 000 consecutive
    /// rejections, quoting `reason`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive inputs: {}",
            self.reason
        );
    }
}

/// A strategy that always yields clones of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = ($($strategy,)+);
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Asserts inside a property body (upstream returns a `TestCaseError`; this
/// subset panics, which the test harness reports identically).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assumption: skips the rest of the current case when the condition does
/// not hold. Expands to `continue` on the generated per-case loop, so it is
/// only valid directly inside a [`proptest!`] body, like upstream.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn map_and_filter_compose() {
        let strategy = (1u32..10, 0.0f64..1.0)
            .prop_map(|(n, x)| (n * 2, x))
            .prop_filter("even half", |(n, _)| *n >= 4);
        let mut rng = crate::test_rng("compose");
        for _ in 0..100 {
            let (n, x) = crate::Strategy::generate(&strategy, &mut rng);
            assert!(n >= 4 && n % 2 == 0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_inputs_respect_ranges(a in 5u64..50, b in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
        }
    }
}
