//! Offline, API-compatible subset of [criterion](https://docs.rs/criterion).
//!
//! Implements the benchmark-definition surface the `chronos-bench` targets
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! over a simple wall-clock harness: warm up for `warm_up_time`, then time
//! batches until `measurement_time` elapses or `sample_size` samples are
//! collected, and print the mean/min per-iteration time. No statistical
//! analysis, plots or baselines — enough to measure and compare the hot
//! paths offline.

#![deny(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    #[must_use]
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter rendering only.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing parameters shared by a [`Criterion`] instance and the groups it
/// spawns.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.settings.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.settings.warm_up_time = duration;
        self
    }

    /// Sets the timing budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.settings, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_size = samples.max(1);
        self
    }

    /// Overrides the timing budget for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.settings, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id, self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; this subset prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Times the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-iteration time of each recorded sample, in nanoseconds.
    samples: Vec<f64>,
    /// Iterations batched into one timing sample, so that nanosecond-scale
    /// routines are not dominated by `Instant::now()` overhead.
    iters_per_sample: u64,
    mode: BenchMode,
    /// Warm-up bookkeeping used to size the measurement batches.
    warm_up_spent: Duration,
    warm_up_iters: u64,
}

#[derive(Debug, Default, Clone, Copy, PartialEq)]
enum BenchMode {
    #[default]
    WarmUp,
    Measure,
}

/// Target wall-clock time of one measurement batch: large enough that timer
/// overhead (tens of nanoseconds per `Instant::now()` pair) is < 0.1 % even
/// for single-digit-nanosecond routines.
const TARGET_SAMPLE_TIME: Duration = Duration::from_micros(50);

impl Bencher {
    /// Runs the routine `iters_per_sample` times per sample and records the
    /// mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::WarmUp => {
                let start = Instant::now();
                black_box(routine());
                self.warm_up_spent += start.elapsed();
                self.warm_up_iters += 1;
            }
            BenchMode::Measure => {
                let iters = self.iters_per_sample.max(1);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
            }
        }
    }
}

fn run_benchmark<F>(group: Option<&str>, id: &BenchmarkId, settings: Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut full_name = String::new();
    if let Some(group) = group {
        let _ = write!(full_name, "{group}/");
    }
    let _ = write!(full_name, "{}", id.label);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(settings.sample_size),
        iters_per_sample: 1,
        mode: BenchMode::WarmUp,
        warm_up_spent: Duration::ZERO,
        warm_up_iters: 0,
    };
    let warm_up_deadline = Instant::now() + settings.warm_up_time;
    while Instant::now() < warm_up_deadline {
        f(&mut bencher);
    }

    // Batch enough iterations per sample to amortize timer overhead, based
    // on the warm-up estimate of the per-iteration cost.
    if bencher.warm_up_iters > 0 {
        let per_iter = bencher.warm_up_spent.div_f64(bencher.warm_up_iters as f64);
        if per_iter < TARGET_SAMPLE_TIME {
            let ratio = TARGET_SAMPLE_TIME.as_nanos() as f64 / per_iter.as_nanos().max(1) as f64;
            bencher.iters_per_sample = (ratio.ceil() as u64).clamp(1, 1_000_000);
        }
    }

    bencher.mode = BenchMode::Measure;
    let deadline = Instant::now() + settings.measurement_time;
    while bencher.samples.len() < settings.sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline && !bencher.samples.is_empty() {
            break;
        }
    }

    let count = bencher.samples.len().max(1);
    let mean = bencher.samples.iter().sum::<f64>() / count as f64;
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let iters = bencher.iters_per_sample;
    println!(
        "bench: {full_name:<50} mean {:>12}  min {:>12}  ({count} samples x {iters} iters)",
        format_nanos(mean),
        format_nanos(if min.is_finite() { min } else { 0.0 }),
    );
}

/// Renders a nanosecond count with a human-friendly unit.
fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1}ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2}us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2}ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, in either the simple or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups (for `harness = false`
/// bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut counter = 0u64;
        quick().bench_function("counting", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_and_inputs_compose() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("group");
        group.sample_size(3);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
        assert_eq!(BenchmarkId::from("s").label, "s");
    }
}
