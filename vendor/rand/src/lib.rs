//! Offline, API-compatible subset of [rand 0.8](https://docs.rs/rand/0.8).
//!
//! Exposes the surface the Chronos workspace uses — [`Rng::gen_range`] over
//! float and integer ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — with a deliberately *different* engine from
//! upstream: `StdRng` here is xoshiro256++ seeded through SplitMix64 rather
//! than ChaCha12. Streams are therefore not bit-compatible with upstream
//! rand, but they are deterministic for a given seed, which is the property
//! the simulator and the test suite rely on. There is intentionally no
//! `thread_rng`/`from_entropy`: every RNG in this workspace must be
//! explicitly seeded so simulations and tests stay reproducible.

#![deny(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the float and integer types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like upstream rand.
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, mirroring
    /// upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`, mirroring upstream.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $ty;
                let value = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if value >= self.end {
                    self.start
                } else {
                    value
                }
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $ty;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = sample_below(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = sample_below(rng, span);
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (span ≤ 2^64 here;
/// `span == 0` means the full 2^64 range and cannot occur from the range
/// impls above).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    let span64 = span as u64; // span == 2^64 wraps to 0, handled below.
    if span64 == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let bits = rng.next_u64();
        if bits <= zone {
            return bits % span64;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion. Not bit-compatible with upstream rand's
    /// ChaCha12-based `StdRng`, but deterministic and fast.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut seeder = state;
            let mut next = || {
                // SplitMix64.
                seeder = seeder.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seeder;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let fraction = hits as f64 / 20_000.0;
        assert!((fraction - 0.25).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn uniformity_of_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        for _ in 0..50_000 {
            let x = rng.gen_range(0.0f64..1.0);
            buckets[(x * 10.0) as usize] += 1;
        }
        for &count in &buckets {
            assert!((4_300..=5_700).contains(&count), "bucket {count}");
        }
    }
}
