//! Offline, API-compatible subset of [serde](https://serde.rs).
//!
//! This workspace builds in an environment without access to crates.io, so
//! the handful of external crates it needs are vendored as minimal subsets
//! exposing exactly the surface the Chronos crates use. Here that surface
//! is:
//!
//! - `#[derive(Serialize, Deserialize)]` on plain structs and enums
//!   (named/tuple/unit structs; unit, newtype, tuple and struct enum
//!   variants; no generics, no `#[serde(...)]` attributes),
//! - `T: Serialize` / `T: for<'de> Deserialize<'de>` bounds as used by
//!   `serde_json::{to_string_pretty, from_str}`.
//!
//! Instead of serde's zero-copy visitor architecture, both traits go
//! through an owned JSON-shaped [`Value`] tree: `Serialize` lowers `self`
//! into a [`Value`] and `Deserialize` rebuilds `Self` from one. That is a
//! fraction of serde's performance and generality, but it is deterministic,
//! dependency-free and sufficient for the experiment artifacts this
//! workspace writes and reads back.

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be rebuilt into the requested
/// type (wrong shape, missing field, out-of-range number, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integers keep full 64-bit precision so ids and counters
/// survive round trips exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A negative integer.
    NegInt(i64),
    /// A non-negative integer.
    PosInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::NegInt(v) => v as f64,
            Number::PosInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` if it fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::NegInt(v) => Some(v),
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON document: the data model both traits go through.
///
/// Object keys keep insertion order (derived structs serialize fields in
/// declaration order, like serde's default).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Lowers a value into the JSON data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the JSON data model.
///
/// The lifetime parameter exists only so the upstream bound
/// `T: for<'de> Deserialize<'de>` keeps compiling; this subset always
/// deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            Error::msg(concat!("number out of range for ", stringify!($ty)))
                        }),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$ty>::try_from(v).ok())
                        .ok_or_else(|| {
                            Error::msg(concat!("number out of range for ", stringify!($ty)))
                        }),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = f64::from(*self);
                // serde_json serializes non-finite floats as null.
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    Value::Null
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $ty),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected char, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

/// Renders a map key as a JSON object key. JSON forces keys to be strings;
/// like serde_json, keys that serialize as numbers, booleans or strings
/// (including integer newtypes) are stringified, anything else is refused.
///
/// # Panics
///
/// Panics on structurally non-key types (arrays/objects), where upstream
/// serde_json returns a runtime error from its fallible serializer.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::Number(Number::PosInt(v)) => v.to_string(),
        Value::Number(Number::NegInt(v)) => v.to_string(),
        Value::Number(Number::Float(v)) => v.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map key must serialize as a string or number, got {}",
            other.kind()
        ),
    }
}

/// Rebuilds a map key from its JSON object-key string: first as a string
/// value, then (for integer-like keys such as id newtypes) as a number.
fn key_from_string<K: for<'de> Deserialize<'de>>(key: &str) -> Result<K, Error> {
    if let Ok(parsed) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(parsed);
    }
    let number = if let Ok(v) = key.parse::<u64>() {
        Number::PosInt(v)
    } else if let Ok(v) = key.parse::<i64>() {
        Number::NegInt(v)
    } else if let Ok(v) = key.parse::<f64>() {
        Number::Float(v)
    } else {
        return Err(Error::msg(format!("invalid map key `{key}`")));
    };
    K::from_value(&Value::Number(number))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: for<'a> Deserialize<'a> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected array of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Runtime support called by the generated derive code. Not part of the
/// public serde API surface; kept `pub` because macro expansions reference
/// it by path.
pub mod helpers {
    use super::{Deserialize, Error, Value};

    /// Fetches and deserializes a struct field by name. A missing field is
    /// retried against `null` so `Option` fields tolerate omission.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the value is not an object or the field
    /// cannot be deserialized.
    pub fn field<T: for<'de> Deserialize<'de>>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Object(_) => match value.get(name) {
                Some(inner) => {
                    T::from_value(inner).map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
                }
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error::msg(format!("missing field `{name}`"))),
            },
            other => Err(Error::msg(format!(
                "expected object for struct, got {}",
                other.kind()
            ))),
        }
    }

    /// Fetches and deserializes a tuple-struct / tuple-variant element.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the value is not an array of the right size.
    pub fn element<T: for<'de> Deserialize<'de>>(value: &Value, index: usize) -> Result<T, Error> {
        match value {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error::msg(format!("missing tuple element {index}")))
                .and_then(T::from_value),
            other => Err(Error::msg(format!(
                "expected array for tuple, got {}",
                other.kind()
            ))),
        }
    }

    /// Dispatches an externally-tagged enum value: `"Variant"` for unit
    /// variants, `{"Variant": payload}` for data variants.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] for any other shape.
    pub fn variant<'a>(value: &'a Value, enum_name: &str) -> Result<(&'a str, &'a Value), Error> {
        const UNIT: &Value = &Value::Null;
        match value {
            Value::Str(tag) => Ok((tag.as_str(), UNIT)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::msg(format!(
                "expected {enum_name} variant tag, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<f64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn integer_keyed_map_uses_string_keys() {
        let mut map = BTreeMap::new();
        map.insert(4u32, 9usize);
        let value = map.to_value();
        assert_eq!(value.get("4").and_then(|v| v.as_number_u64()), Some(9));
        assert_eq!(BTreeMap::<u32, usize>::from_value(&value), Ok(map));
    }

    impl Value {
        fn as_number_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) => n.as_u64(),
                _ => None,
            }
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NEG_INFINITY.to_value(), Value::Null);
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }
}
