//! Property-based tests for the planner: for *arbitrary* workloads and
//! worker counts, `Planner::plan_batch` must be element-for-element
//! bit-identical to sequential, uncached `Optimizer::optimize` calls —
//! memoization, deduplication and threading are pure wall-clock
//! optimizations that may never change a result, an error, or their order.

use chronos_core::prelude::*;
use chronos_plan::prelude::*;
use proptest::prelude::*;

/// Discrete pools the generator draws from. Small pools force duplicate
/// profiles (the planner's raison d'être) while still covering all three
/// strategies, feasible and infeasible timings, and several job shapes.
const TASKS: [u32; 3] = [5, 20, 120];
const T_MIN: [f64; 2] = [10.0, 20.0];
const BETA: [f64; 2] = [1.3, 1.7];
const DEADLINE_FACTOR: [f64; 3] = [1.2, 2.5, 5.0];
const PRICE: [f64; 2] = [0.5, 1.0];

/// Deterministically expands a seed into a workload of plan requests.
/// Infeasible combinations (e.g. a reactive τ_est at 80% of a tight
/// deadline) are deliberately kept: errors must round-trip through the
/// cache exactly like successes.
fn workload(seed: u64, len: usize) -> Vec<PlanRequest> {
    let mut state = seed;
    let mut next = || {
        // splitmix64-style mixing keeps the expansion deterministic per seed.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let pick = next();
            let tasks = TASKS[(pick % 3) as usize];
            let t_min = T_MIN[((pick >> 2) % 2) as usize];
            let beta = BETA[((pick >> 4) % 2) as usize];
            let deadline = t_min * DEADLINE_FACTOR[((pick >> 6) % 3) as usize];
            let price = PRICE[((pick >> 8) % 2) as usize];
            let job = JobProfile::builder()
                .tasks(tasks)
                .t_min(t_min)
                .beta(beta)
                .deadline(deadline)
                .price(price)
                .build()
                .expect("pool values are individually valid and deadline > t_min");
            let tau_est = deadline * [0.2, 0.4, 0.8][((pick >> 10) % 3) as usize];
            let tau_kill = tau_est + 0.4 * t_min;
            let params = match (pick >> 13) % 3 {
                0 => StrategyParams::clone_strategy(tau_kill),
                1 => StrategyParams::restart(tau_est, tau_kill).expect("ordered timings"),
                _ => StrategyParams::resume(tau_est, tau_kill, 0.3).expect("ordered timings"),
            };
            PlanRequest::new(job, params)
        })
        .collect()
}

/// Bit-level equality of two outcomes (plain `==` would conflate distinct
/// NaN/zero encodings; the contract here is *bit*-identity).
fn outcome_bits(outcome: &OptimizationOutcome) -> (u32, u64, u64, u64, u64) {
    (
        outcome.r,
        outcome.utility.to_bits(),
        outcome.pocd.to_bits(),
        outcome.machine_time.to_bits(),
        outcome.dollar_cost.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: plan_batch ≡ sequential uncached optimize,
    /// bit for bit, for any workload, any worker count, and any θ.
    #[test]
    fn plan_batch_is_bit_identical_to_sequential_uncached_optimize(
        seed in 0u64..1_000_000,
        len in 1usize..60,
        workers in 1u32..9,
        theta_exp in 3u32..6,
    ) {
        let theta = 10f64.powi(-(theta_exp as i32));
        let objective = UtilityModel::new(theta, 0.0).unwrap();
        let requests = workload(seed, len);

        let planner = Planner::new(objective);
        let batched = planner.plan_batch(&requests, workers);
        prop_assert_eq!(batched.len(), requests.len());

        let optimizer = Optimizer::new(objective);
        for (request, result) in requests.iter().zip(&batched) {
            let direct = optimizer.optimize(&request.job, &request.params);
            match (result, direct) {
                (Ok(plan), Ok(outcome)) => {
                    prop_assert_eq!(outcome_bits(&plan.outcome), outcome_bits(&outcome));
                }
                (Err(cached), Err(fresh)) => {
                    prop_assert_eq!(cached.to_string(), fresh.to_string());
                }
                (cached, fresh) => {
                    panic!(
                        "planner and optimizer disagree on fallibility: {cached:?} vs {fresh:?}"
                    );
                }
            }
        }

        // Deduplication really happened: misses equal the distinct key
        // count, regardless of the worker count.
        let distinct = {
            let mut keys: Vec<ProfileKey> =
                requests.iter().map(|r| planner.key_of(r)).collect();
            keys.sort_by_key(|k| format!("{k:?}"));
            keys.dedup();
            keys.len() as u64
        };
        prop_assert_eq!(planner.stats().misses, distinct);
        prop_assert_eq!(planner.stats().lookups(), len as u64);
    }

    /// Worker count never changes a batch's results (including errors).
    #[test]
    fn worker_count_is_invisible(seed in 0u64..1_000_000, len in 1usize..40) {
        let objective = UtilityModel::new(1e-4, 0.0).unwrap();
        let requests = workload(seed, len);
        let reference: Vec<Option<(u32, u64)>> = Planner::new(objective)
            .plan_batch(&requests, 1)
            .iter()
            .map(|r| r.as_ref().ok().map(|p| (p.outcome.r, p.outcome.utility.to_bits())))
            .collect();
        for workers in [2u32, 5, 8] {
            let run: Vec<Option<(u32, u64)>> = Planner::new(objective)
                .plan_batch(&requests, workers)
                .iter()
                .map(|r| r.as_ref().ok().map(|p| (p.outcome.r, p.outcome.utility.to_bits())))
                .collect();
            prop_assert_eq!(&run, &reference, "workers = {}", workers);
        }
    }
}
