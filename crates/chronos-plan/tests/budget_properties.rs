//! Property-based tests for the speculation-budget allocator: for
//! *arbitrary* batches and budgets, `budget::allocate` must be a pure,
//! deterministic function of `(batch, budget)` whose ample-budget limit is
//! bit-identical to the unconstrained per-job optima — the water-filling is
//! a constraint mechanism, never a perturbation of the closed forms.

use chronos_core::prelude::*;
use chronos_plan::prelude::*;
use proptest::prelude::*;

/// Discrete pools mirroring `planner_properties.rs`: small pools force
/// duplicate profiles (tied marginals) while covering all three strategies
/// and feasible/infeasible timings.
const TASKS: [u32; 3] = [5, 20, 120];
const T_MIN: [f64; 2] = [10.0, 20.0];
const BETA: [f64; 2] = [1.3, 1.7];
const DEADLINE_FACTOR: [f64; 3] = [1.2, 2.5, 5.0];
const PRICE: [f64; 2] = [0.5, 1.0];

/// Deterministically expands a seed into a batch of budget jobs with
/// distinct, non-monotone job ids (so job-id tie-breaking is actually
/// distinguishable from input-order tie-breaking).
fn batch(seed: u64, len: usize) -> Vec<BudgetJob> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|index| {
            let pick = next();
            let tasks = TASKS[(pick % 3) as usize];
            let t_min = T_MIN[((pick >> 2) % 2) as usize];
            let beta = BETA[((pick >> 4) % 2) as usize];
            let deadline = t_min * DEADLINE_FACTOR[((pick >> 6) % 3) as usize];
            let price = PRICE[((pick >> 8) % 2) as usize];
            let job = JobProfile::builder()
                .tasks(tasks)
                .t_min(t_min)
                .beta(beta)
                .deadline(deadline)
                .price(price)
                .build()
                .expect("pool values are individually valid and deadline > t_min");
            let tau_est = deadline * [0.2, 0.4, 0.8][((pick >> 10) % 3) as usize];
            let tau_kill = tau_est + 0.4 * t_min;
            let params = match (pick >> 13) % 3 {
                0 => StrategyParams::clone_strategy(tau_kill),
                1 => StrategyParams::restart(tau_est, tau_kill).expect("ordered timings"),
                _ => StrategyParams::resume(tau_est, tau_kill, 0.3).expect("ordered timings"),
            };
            // Scrambled-but-unique ids: reverse the index bits within a
            // 16-bit space so ascending-id order differs from input order.
            let id = (index as u64).reverse_bits() >> 48;
            BudgetJob::new(id, PlanRequest::new(job, params))
        })
        .collect()
}

fn planner() -> Planner {
    Planner::new(UtilityModel::new(1e-4, 0.0).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property of the redesign: an ample budget (B ≥ Σ r*,
    /// and a fortiori B = ∞) reproduces today's unbudgeted per-job
    /// decisions bit for bit — same grant for every job, same digest.
    #[test]
    fn ample_budget_is_bit_identical_to_unlimited(
        seed in 0u64..1_000_000,
        len in 1usize..40,
        slack in 0u64..5,
    ) {
        let planner = planner();
        let jobs = batch(seed, len);
        let unlimited = allocate(&planner, &jobs, SpeculationBudget::Unlimited).unwrap();
        let ample = allocate(
            &planner,
            &jobs,
            SpeculationBudget::Limited(unlimited.requested + slack),
        )
        .unwrap();
        for (a, b) in unlimited.grants.iter().zip(&ample.grants) {
            prop_assert_eq!(a.job, b.job);
            prop_assert_eq!(a.copies, b.copies);
            prop_assert_eq!(a.copies, a.unconstrained);
        }
        prop_assert_eq!(unlimited.digest(), ample.digest());
        prop_assert_eq!(ample.spent, ample.requested);
    }

    /// Allocation is a pure function of (batch, budget): re-running it and
    /// permuting the input order never changes any job's grant, and the
    /// budget is never overspent nor any job granted past its optimum.
    #[test]
    fn allocation_is_deterministic_order_invariant_and_within_bounds(
        seed in 0u64..1_000_000,
        len in 1usize..40,
        budget in 0u64..30,
    ) {
        let planner = planner();
        let jobs = batch(seed, len);
        let budget = SpeculationBudget::Limited(budget);
        let first = allocate(&planner, &jobs, budget).unwrap();
        let again = allocate(&planner, &jobs, budget).unwrap();
        prop_assert_eq!(&first, &again);

        let mut reversed = jobs.clone();
        reversed.reverse();
        let backwards = allocate(&planner, &reversed, budget).unwrap();
        prop_assert_eq!(first.digest(), backwards.digest());
        for (a, b) in first.grants.iter().zip(backwards.grants.iter().rev()) {
            prop_assert_eq!(a, b);
        }

        prop_assert!(first.spent <= budget.limit().unwrap());
        prop_assert!(first.spent <= first.requested);
        for grant in &first.grants {
            prop_assert!(grant.copies <= grant.unconstrained);
        }
    }

    /// A zero budget grants nothing, whatever the batch looks like.
    #[test]
    fn zero_budget_grants_nothing(seed in 0u64..1_000_000, len in 1usize..40) {
        let planner = planner();
        let jobs = batch(seed, len);
        let allocation = allocate(&planner, &jobs, SpeculationBudget::Limited(0)).unwrap();
        prop_assert!(allocation.grants.iter().all(|grant| grant.copies == 0));
        prop_assert_eq!(allocation.spent, 0);
    }
}
