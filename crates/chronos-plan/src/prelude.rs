//! Convenience re-exports for planner users.

pub use crate::budget::{
    allocate, Allocation, AllocationLedger, BudgetJob, Grant, LedgerSummary, SpeculationBudget,
};
pub use crate::cache::{CacheStats, PlanCache};
pub use crate::key::{canonical_f64_bits, JobProfileKey, ProfileKey};
pub use crate::planner::{Plan, PlanRequest, PlanResult, Planner};
