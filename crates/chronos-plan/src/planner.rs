//! The planner: memoized single plans and deduplicated batch planning.

use crate::cache::{CacheStats, PlanCache};
use crate::key::ProfileKey;
use chronos_core::{
    ChronosError, JobProfile, OptimizationOutcome, Optimizer, OptimizerConfig, StrategyParams,
    UtilityModel,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// One planning problem: a job class plus the strategy parameters to
/// optimize for it. The objective and optimizer configuration come from the
/// [`Planner`] the request is handed to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// The analytical job profile.
    pub job: JobProfile,
    /// The strategy (kind and timing) to optimize.
    pub params: StrategyParams,
}

impl PlanRequest {
    /// Builds a request.
    #[must_use]
    pub fn new(job: JobProfile, params: StrategyParams) -> Self {
        PlanRequest { job, params }
    }
}

/// A solved plan: the optimizer's outcome plus the no-speculation baseline
/// evaluated from the same closed forms — what the job would pay and risk
/// at `r = 0` — so callers can report the speculation benefit without
/// re-deriving the models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The optimum Algorithm 1 selected.
    pub outcome: OptimizationOutcome,
    /// PoCD at `r = 0` under the same strategy timing.
    pub baseline_pocd: f64,
    /// Expected machine time (VM-seconds) at `r = 0`.
    pub baseline_machine_time: f64,
    /// Expected dollar cost at `r = 0`.
    pub baseline_dollar_cost: f64,
}

impl Plan {
    /// PoCD gained by speculating at the optimum instead of `r = 0`.
    #[must_use]
    pub fn pocd_gain(&self) -> f64 {
        self.outcome.pocd - self.baseline_pocd
    }

    /// Extra machine time paid at the optimum relative to `r = 0`.
    #[must_use]
    pub fn machine_time_overhead(&self) -> f64 {
        self.outcome.machine_time - self.baseline_machine_time
    }
}

/// Outcome of planning one request: the solved [`Plan`], or the analytical
/// error (also memoized — an infeasible job class is proven infeasible
/// once, not once per job).
pub type PlanResult = Result<Plan, ChronosError>;

/// The memoizing strategy planner: an [`Optimizer`] bound to a (possibly
/// shared) [`PlanCache`].
///
/// [`Planner::plan`] is a drop-in, bit-identical replacement for
/// `Optimizer::optimize` — same inputs, same outcome, same errors — that
/// pays the closed-form solve once per distinct [`ProfileKey`].
/// [`Planner::plan_batch`] additionally deduplicates a whole slice of
/// requests up front and fans the distinct solves across a scoped worker
/// pool.
///
/// # Examples
///
/// ```
/// use chronos_plan::prelude::*;
/// use chronos_core::prelude::*;
///
/// # fn main() -> Result<(), ChronosError> {
/// let planner = Planner::new(UtilityModel::new(1e-4, 0.0)?);
/// let job = JobProfile::builder().deadline(100.0).build()?;
/// let params = StrategyParams::resume(40.0, 80.0, 0.3)?;
///
/// let first = planner.plan(&job, &params)?;
/// let again = planner.plan(&job, &params)?; // served from the cache
/// assert_eq!(first, again);
/// assert_eq!(planner.stats().misses, 1);
/// assert_eq!(planner.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    optimizer: Optimizer,
    cache: Arc<PlanCache>,
}

impl Planner {
    /// A planner over the default optimizer configuration with a fresh
    /// private cache.
    #[must_use]
    pub fn new(objective: UtilityModel) -> Self {
        Planner::from_optimizer(Optimizer::new(objective))
    }

    /// A planner with an explicit optimizer configuration and a fresh
    /// private cache.
    ///
    /// # Errors
    ///
    /// Propagates `OptimizerConfig` validation failures.
    pub fn with_config(
        objective: UtilityModel,
        config: OptimizerConfig,
    ) -> Result<Self, ChronosError> {
        Ok(Planner::from_optimizer(Optimizer::with_config(
            objective, config,
        )?))
    }

    /// Wraps an existing optimizer with a fresh private cache.
    #[must_use]
    pub fn from_optimizer(optimizer: Optimizer) -> Self {
        Planner::with_cache(optimizer, PlanCache::shared())
    }

    /// Wraps an existing optimizer around a shared cache. Sharing is always
    /// sound: the [`ProfileKey`] covers the objective and optimizer
    /// configuration, so planners with different settings can share one
    /// cache without ever reading each other's entries.
    #[must_use]
    pub fn with_cache(optimizer: Optimizer, cache: Arc<PlanCache>) -> Self {
        Planner { optimizer, cache }
    }

    /// The underlying optimizer.
    #[must_use]
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The cache this planner memoizes into.
    #[must_use]
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The canonical cache key of a request under this planner's objective
    /// and configuration.
    #[must_use]
    pub fn key_of(&self, request: &PlanRequest) -> ProfileKey {
        ProfileKey::new(
            &request.job,
            &request.params,
            self.optimizer.objective(),
            self.optimizer.config(),
        )
    }

    /// Solves a request without touching the cache — neither reading nor
    /// writing it. The plan's outcome (and error behaviour) is exactly that
    /// of `Optimizer::optimize`; the baseline fields are evaluated from the
    /// same bound models at `r = 0`. This is the single definition of what
    /// a [`Plan`] *is*: the memoized paths cache its results, and the
    /// uncached reference paths (e.g. `chronos-strategies`'
    /// `PolicyPlanner::uncached`) call it directly, so the two can never
    /// drift apart.
    ///
    /// # Errors
    ///
    /// Exactly the errors of `Optimizer::optimize` for the same inputs.
    pub fn solve_uncached(&self, request: &PlanRequest) -> PlanResult {
        self.solve(request)
    }

    fn solve(&self, request: &PlanRequest) -> PlanResult {
        let net = self
            .optimizer
            .objective()
            .for_job(&request.job, &request.params)?;
        let outcome = self.optimizer.optimize_net(&net)?;
        Ok(Plan {
            outcome,
            baseline_pocd: net.pocd(0)?,
            baseline_machine_time: net.machine_time(0)?,
            baseline_dollar_cost: net.dollar_cost(0)?,
        })
    }

    /// Plans one job/strategy pair, memoized.
    ///
    /// # Errors
    ///
    /// Exactly the errors of `Optimizer::optimize` for the same inputs
    /// (memoized like successes).
    pub fn plan(&self, job: &JobProfile, params: &StrategyParams) -> PlanResult {
        self.plan_request(&PlanRequest::new(*job, *params))
    }

    /// Plans one request, memoized.
    ///
    /// # Errors
    ///
    /// Same as [`Planner::plan`].
    pub fn plan_request(&self, request: &PlanRequest) -> PlanResult {
        self.cache
            .get_or_compute(self.key_of(request), || self.solve(request))
    }

    /// Plans a whole slice of requests: deduplicates them by
    /// [`ProfileKey`], solves each distinct profile once (fanning distinct
    /// keys across a `std::thread::scope` pool of at most `workers`
    /// threads, which pull work from a shared queue exactly like the
    /// sharded simulation runner's workers), and scatters the results back
    /// in input order.
    ///
    /// The returned vector is element-for-element **bit-identical** to
    /// calling [`Planner::plan`] (or an uncached `Optimizer::optimize`) on
    /// each request sequentially: deduplication and threading change only
    /// the wall-clock, never a result. `workers` is clamped to
    /// `1..=distinct_profiles`; `1` keeps everything on the calling thread.
    #[must_use]
    pub fn plan_batch(&self, requests: &[PlanRequest], workers: u32) -> Vec<PlanResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let keys: Vec<ProfileKey> = requests.iter().map(|r| self.key_of(r)).collect();

        // Dedup pass: `distinct[d]` is the input index of the d-th distinct
        // key (first occurrence); `slot_of[i]` maps input i to its d.
        let mut distinct: Vec<usize> = Vec::new();
        let mut index_of: HashMap<ProfileKey, usize> = HashMap::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        for (input, key) in keys.iter().enumerate() {
            let next = distinct.len();
            let slot = *index_of.entry(*key).or_insert_with(|| {
                distinct.push(input);
                next
            });
            slot_of.push(slot);
        }

        // Solve pass: each distinct profile exactly once, results parked in
        // per-slot once-cells so the scatter below cannot be disturbed by a
        // concurrent eviction from a capacity-bounded shared cache.
        let results: Vec<OnceLock<PlanResult>> =
            (0..distinct.len()).map(|_| OnceLock::new()).collect();
        let solve_into = |slot: usize| {
            let input = distinct[slot];
            let value = self
                .cache
                .get_or_compute(keys[input], || self.solve(&requests[input]));
            let _ = results[slot].set(value);
        };
        let workers = (workers.max(1) as usize).min(distinct.len());
        if workers <= 1 {
            (0..distinct.len()).for_each(solve_into);
        } else {
            let queue = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let slot = queue.fetch_add(1, Ordering::Relaxed);
                        if slot >= distinct.len() {
                            break;
                        }
                        solve_into(slot);
                    });
                }
            });
        }

        // Requests absorbed by the dedup pass never reached the map; they
        // are hits from the caller's perspective (served without a solve).
        self.cache
            .note_deduplicated_hits((requests.len() - distinct.len()) as u64);

        // Scatter pass: input order restored.
        slot_of
            .iter()
            .map(|&slot| {
                results[slot]
                    .get()
                    .expect("every distinct slot was solved")
                    .clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::StrategyKind;

    fn job(deadline: f64) -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(deadline)
            .price(1.0)
            .build()
            .unwrap()
    }

    fn planner() -> Planner {
        Planner::new(UtilityModel::new(1e-4, 0.0).unwrap())
    }

    #[test]
    fn plan_matches_uncached_optimizer_bit_for_bit() {
        let planner = planner();
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        for params in [
            StrategyParams::clone_strategy(80.0),
            StrategyParams::restart(40.0, 80.0).unwrap(),
            StrategyParams::resume(40.0, 80.0, 0.4).unwrap(),
        ] {
            let plan = planner.plan(&job(100.0), &params).unwrap();
            let direct = optimizer.optimize(&job(100.0), &params).unwrap();
            assert_eq!(plan.outcome.r, direct.r);
            assert_eq!(plan.outcome.utility.to_bits(), direct.utility.to_bits());
            assert_eq!(plan.outcome.pocd.to_bits(), direct.pocd.to_bits());
            assert_eq!(
                plan.outcome.machine_time.to_bits(),
                direct.machine_time.to_bits()
            );
            assert_eq!(
                plan.outcome.dollar_cost.to_bits(),
                direct.dollar_cost.to_bits()
            );
        }
    }

    #[test]
    fn baseline_fields_come_from_r_zero() {
        let planner = planner();
        let params = StrategyParams::clone_strategy(80.0);
        let plan = planner.plan(&job(100.0), &params).unwrap();
        let net = UtilityModel::new(1e-4, 0.0)
            .unwrap()
            .for_job(&job(100.0), &params)
            .unwrap();
        assert_eq!(plan.baseline_pocd.to_bits(), net.pocd(0).unwrap().to_bits());
        assert_eq!(
            plan.baseline_machine_time.to_bits(),
            net.machine_time(0).unwrap().to_bits()
        );
        assert!(plan.pocd_gain() > 0.0);
        assert!(plan.machine_time_overhead() > 0.0);
    }

    #[test]
    fn repeated_requests_solve_once() {
        let planner = planner();
        let params = StrategyParams::resume(40.0, 80.0, 0.4).unwrap();
        for _ in 0..5 {
            planner.plan(&job(100.0), &params).unwrap();
        }
        let stats = planner.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        // tau_est beyond the deadline: inconsistent for a reactive strategy.
        let planner = planner();
        let params = StrategyParams::restart(95.0, 99.0).unwrap();
        for _ in 0..3 {
            assert!(planner.plan(&job(100.0), &params).is_err());
        }
        let stats = planner.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn batch_dedupes_and_scatters_in_input_order() {
        let planner = planner();
        let clone = StrategyParams::clone_strategy(80.0);
        let resume = StrategyParams::resume(40.0, 80.0, 0.4).unwrap();
        let requests = vec![
            PlanRequest::new(job(100.0), clone),
            PlanRequest::new(job(120.0), resume),
            PlanRequest::new(job(100.0), clone),
            PlanRequest::new(job(100.0), resume),
            PlanRequest::new(job(120.0), resume),
        ];
        let results = planner.plan_batch(&requests, 4);
        assert_eq!(results.len(), 5);
        // 3 distinct profiles solved once each; the 2 duplicates are hits.
        assert_eq!(planner.stats().misses, 3);
        assert_eq!(planner.stats().hits, 2);
        assert_eq!(planner.stats().lookups(), 5);
        // Scatter restored input order: duplicates are equal, and each
        // result matches its own request's strategy kind.
        assert_eq!(results[0], results[2]);
        assert_eq!(results[1], results[4]);
        assert_eq!(
            results[0].as_ref().unwrap().outcome.strategy,
            StrategyKind::Clone
        );
        assert_eq!(
            results[3].as_ref().unwrap().outcome.strategy,
            StrategyKind::SpeculativeResume
        );
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_uncached_calls() {
        let planner = planner();
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        let requests: Vec<PlanRequest> = (0..20)
            .map(|i| {
                let deadline = [90.0, 100.0, 110.0][i % 3];
                let params = match i % 2 {
                    0 => StrategyParams::clone_strategy(80.0),
                    _ => StrategyParams::resume(40.0, 80.0, 0.4).unwrap(),
                };
                PlanRequest::new(job(deadline), params)
            })
            .collect();
        for workers in [1u32, 2, 8] {
            let results = planner.plan_batch(&requests, workers);
            for (request, result) in requests.iter().zip(&results) {
                let direct = optimizer.optimize(&request.job, &request.params).unwrap();
                let plan = result.as_ref().unwrap();
                assert_eq!(plan.outcome.r, direct.r);
                assert_eq!(plan.outcome.utility.to_bits(), direct.utility.to_bits());
            }
        }
    }

    #[test]
    fn batch_propagates_per_request_errors_positionally() {
        let planner = planner();
        let requests = vec![
            PlanRequest::new(job(100.0), StrategyParams::clone_strategy(80.0)),
            PlanRequest::new(job(100.0), StrategyParams::restart(95.0, 99.0).unwrap()),
            PlanRequest::new(job(100.0), StrategyParams::clone_strategy(80.0)),
        ];
        let results = planner.plan_batch(&requests, 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let planner = planner();
        assert!(planner.plan_batch(&[], 4).is_empty());
        assert_eq!(planner.stats().lookups(), 0);
    }

    #[test]
    fn shared_cache_spans_planners() {
        let cache = PlanCache::shared();
        let a = Planner::with_cache(
            Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap()),
            Arc::clone(&cache),
        );
        let b = Planner::with_cache(
            Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap()),
            Arc::clone(&cache),
        );
        let params = StrategyParams::clone_strategy(80.0);
        a.plan(&job(100.0), &params).unwrap();
        b.plan(&job(100.0), &params).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);

        // A planner with a different objective shares storage but never
        // entries: the key covers θ.
        let other = Planner::with_cache(
            Optimizer::new(UtilityModel::new(1e-3, 0.0).unwrap()),
            Arc::clone(&cache),
        );
        other.plan(&job(100.0), &params).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }
}
