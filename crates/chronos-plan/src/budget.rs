//! Cluster-wide speculation-budget allocation: deterministic greedy
//! water-filling of a shared speculative-copy budget across a batch of
//! competing jobs.
//!
//! The per-job optimizer (Algorithm 1) solves each job in isolation; real
//! clusters allocate a *shared* pool of speculative slots across thousands
//! of competing deadlines (Xu & Lau, arXiv:1406.0609). This module closes
//! that gap at the batch level: given N jobs and a budget `B` of
//! speculative copies, it distributes copies to maximize the summed
//! deadline-met utility over the existing closed forms.
//!
//! # The water-filling recurrence
//!
//! For job `j` let `U_j(r)` be the net utility at `r` speculative copies
//! (from [`chronos_core::UtilityModel`]'s closed forms) and `r*_j` the
//! unconstrained optimum the per-job optimizer picks. The marginal utility
//! of the `k`-th copy is
//!
//! ```text
//! g_j(k) = U_j(k) − U_j(k−1),      1 ≤ k ≤ r*_j .
//! ```
//!
//! `U_j` is concave on its integer tail (Theorem 8) but may have a
//! non-concave head, so raw marginals are not monotone. Each job's curve is
//! therefore first decomposed into its **concave-envelope blocks**: from
//! the current level `c`, the next block ends at the `t ∈ (c, r*_j]` that
//! maximizes the average gain `(U_j(t) − U_j(c)) / (t − c)` (smallest such
//! `t` on ties). Block averages are non-increasing per job, and every block
//! average is ≥ 0 because `r*_j` is the argmax of `U_j`.
//!
//! The allocation `A(B)` then satisfies the greedy recurrence
//!
//! ```text
//! A(0)     = 0 copies everywhere,
//! A(B)     = A(B − s) + the affordable block (size s) of highest
//!            average gain, ties broken by ascending job id.
//! ```
//!
//! Blocks are granted atomically — a partially granted block could land
//! inside a non-concave head, *below* the utility of its own start point —
//! so a job whose next block exceeds the remaining budget is frozen and the
//! water level keeps descending through the other jobs. Consequences used
//! by the tests and the engine:
//!
//! * `B = 0` grants nothing anywhere;
//! * `B ≥ Σ r*_j` grants exactly `r*_j` to every job — bit-identical to
//!   the unbudgeted per-job optima;
//! * the allocation is a pure function of the batch and the budget:
//!   independent of worker counts, scheduling, and iteration order
//!   (ties always resolve by ascending job id).
//!
//! A *copy* here is one unit of the closed forms' `r`: one extra attempt of
//! every task of the job (Clone) or of every detected straggler
//! (Speculative-Restart/-Resume). Budgeting planned copy *waves* rather
//! than raw slots keeps the allocator exactly on the per-job utility
//! curves the rest of the system optimizes.

use crate::key::ProfileKey;
use crate::planner::{PlanRequest, Planner};
use chronos_core::ChronosError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A global speculative-copy budget: either unlimited (the classic
/// per-job-optimal Chronos behaviour) or a hard cap on the summed copies a
/// planning round may grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpeculationBudget {
    /// No cluster-wide cap: every job gets its unconstrained optimum.
    #[default]
    Unlimited,
    /// At most this many speculative copies per planning round.
    Limited(u64),
}

impl SpeculationBudget {
    /// The cap, if any.
    #[must_use]
    pub fn limit(&self) -> Option<u64> {
        match self {
            SpeculationBudget::Unlimited => None,
            SpeculationBudget::Limited(limit) => Some(*limit),
        }
    }

    /// Whether this budget never constrains an allocation.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        matches!(self, SpeculationBudget::Unlimited)
    }
}

impl std::fmt::Display for SpeculationBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeculationBudget::Unlimited => write!(f, "unlimited"),
            SpeculationBudget::Limited(limit) => write!(f, "{limit}"),
        }
    }
}

/// The typed error of parsing a [`SpeculationBudget`], naming the bad
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBudgetError {
    /// The input that did not parse.
    pub input: String,
}

impl std::fmt::Display for ParseBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "`{}` is not a speculation budget (expected a copy count or `unlimited`)",
            self.input
        )
    }
}

impl std::error::Error for ParseBudgetError {}

impl std::str::FromStr for SpeculationBudget {
    type Err = ParseBudgetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "unlimited" {
            return Ok(SpeculationBudget::Unlimited);
        }
        s.parse::<u64>()
            .map(SpeculationBudget::Limited)
            .map_err(|_| ParseBudgetError {
                input: s.to_string(),
            })
    }
}

/// One job's entry in a budget-allocation problem: the planning request
/// plus the raw job id that breaks ties and keys the allocation digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetJob {
    /// Raw job id (unique within a batch).
    pub job: u64,
    /// The job's planning problem (profile + strategy timing).
    pub request: PlanRequest,
}

impl BudgetJob {
    /// Builds an entry.
    #[must_use]
    pub fn new(job: u64, request: PlanRequest) -> Self {
        BudgetJob { job, request }
    }
}

/// One job's share of an [`Allocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// Raw job id.
    pub job: u64,
    /// Copies granted under the budget.
    pub copies: u32,
    /// The unconstrained per-job optimum `r*` (what an unlimited budget
    /// would grant); `0` when the job's plan is infeasible.
    pub unconstrained: u32,
}

/// The result of one water-filling round: per-job grants in input order
/// plus the allocator diagnostics the batch-planning API surfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-job grants, aligned with the input batch order.
    pub grants: Vec<Grant>,
    /// The budget this round allocated under.
    pub budget: SpeculationBudget,
    /// Sum of the unconstrained optima `Σ r*_j` (what unlimited would
    /// spend).
    pub requested: u64,
    /// Copies actually granted (`Σ copies ≤ min(budget, requested)`).
    pub spent: u64,
    /// Jobs whose per-job plan failed (granted 0, excluded from
    /// `requested`).
    pub infeasible: u32,
}

impl Allocation {
    /// FNV-1a 64 digest over the integer-only `(job id, copies)` pairs in
    /// ascending job-id order, as a hex string. Floats never enter the
    /// digest, so it is safe to hard-check across hosts (like the serve
    /// decisions digest, unlike the float-carrying report digests).
    #[must_use]
    pub fn digest(&self) -> String {
        let mut ordered: Vec<(u64, u32)> = self
            .grants
            .iter()
            .map(|grant| (grant.job, grant.copies))
            .collect();
        ordered.sort_unstable();
        grants_digest(ordered.into_iter())
    }
}

/// FNV-1a 64 over `(job id, copies)` pairs in the order given (callers
/// pass ascending job-id order). Shared by [`Allocation::digest`] and
/// [`AllocationLedger::digest`] so a single-batch digest and a one-batch
/// ledger digest agree.
fn grants_digest(pairs: impl Iterator<Item = (u64, u32)>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for byte in bytes {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (job, copies) in pairs {
        eat(&job.to_le_bytes());
        eat(&copies.to_le_bytes());
    }
    format!("{hash:016x}")
}

/// Distributes `budget` speculative copies across `jobs` by the greedy
/// water-filling of the module docs, planning each job's unconstrained
/// optimum through `planner` (so repeated profiles cost one solve via the
/// planner's cache).
///
/// The result is deterministic: a pure function of the batch, the budget
/// and the planner's objective/configuration. Infeasible jobs (per-job
/// plan errors) are granted 0 copies and counted in
/// [`Allocation::infeasible`] — the allocator never fails on them, exactly
/// as the unbudgeted policies fall back rather than abort.
///
/// # Errors
///
/// Propagates closed-form evaluation errors from the utility model — these
/// indicate an inconsistent objective, not an infeasible job, and cannot
/// occur for a request whose per-job plan succeeded.
pub fn allocate(
    planner: &Planner,
    jobs: &[BudgetJob],
    budget: SpeculationBudget,
) -> Result<Allocation, ChronosError> {
    let requests: Vec<PlanRequest> = jobs.iter().map(|job| job.request).collect();
    // workers = 1: allocation runs inside a (possibly sharded) policy; the
    // sharded runner is the concurrency layer, not the allocator.
    let plans = planner.plan_batch(&requests, 1);

    let mut infeasible = 0u32;
    let unconstrained: Vec<u32> = plans
        .iter()
        .map(|plan| match plan {
            Ok(plan) => plan.outcome.r,
            Err(_) => {
                infeasible += 1;
                0
            }
        })
        .collect();
    let requested: u64 = unconstrained.iter().map(|&r| u64::from(r)).sum();

    let granted = match budget.limit() {
        None => unconstrained.clone(),
        Some(limit) if limit >= requested => unconstrained.clone(),
        Some(limit) => water_fill(planner, jobs, &plans, &unconstrained, limit)?,
    };

    let spent = granted.iter().map(|&r| u64::from(r)).sum();
    let grants = jobs
        .iter()
        .zip(granted.iter().zip(&unconstrained))
        .map(|(job, (&copies, &unconstrained))| Grant {
            job: job.job,
            copies,
            unconstrained,
        })
        .collect();
    Ok(Allocation {
        grants,
        budget,
        requested,
        spent,
        infeasible,
    })
}

/// One concave-envelope block of a job's utility curve: granting `size`
/// copies (ending at `end`) yields `avg` utility per copy.
#[derive(Debug, Clone, Copy)]
struct Block {
    end: u32,
    avg: f64,
}

/// The constrained path of [`allocate`]: `limit < Σ r*_j` is already
/// established, so at least one job will be cut short.
fn water_fill(
    planner: &Planner,
    jobs: &[BudgetJob],
    plans: &[crate::planner::PlanResult],
    unconstrained: &[u32],
    limit: u64,
) -> Result<Vec<u32>, ChronosError> {
    // Per-job concave-envelope blocks, cheapest representation: the block
    // list plus a cursor. Only feasible jobs with r* > 0 participate.
    // Identical requests have identical curves, so the envelope is memoized
    // per profile key — the closed forms behind `utility` involve numerical
    // quadrature (Theorem 4), far too costly to re-evaluate for each of
    // thousands of same-profile jobs in a round.
    let mut memo: HashMap<ProfileKey, Vec<Block>> = HashMap::new();
    let mut blocks: Vec<Vec<Block>> = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        let r_star = unconstrained[index];
        if r_star == 0 || plans[index].is_err() {
            blocks.push(Vec::new());
            continue;
        }
        let key = planner.key_of(&job.request);
        let job_blocks = match memo.get(&key) {
            Some(job_blocks) => job_blocks.clone(),
            None => {
                let net = planner
                    .optimizer()
                    .objective()
                    .for_job(&job.request.job, &job.request.params)?;
                let mut utilities = Vec::with_capacity(r_star as usize + 1);
                for r in 0..=r_star {
                    utilities.push(net.utility(r)?);
                }
                let job_blocks = envelope_blocks(&utilities);
                memo.insert(key, job_blocks.clone());
                job_blocks
            }
        };
        blocks.push(job_blocks);
    }

    let mut granted = vec![0u32; jobs.len()];
    let mut cursor = vec![0usize; jobs.len()];
    let mut remaining = limit;
    loop {
        // The affordable block with the highest average gain; ties resolve
        // to the lowest job id so the scan order is immaterial.
        let mut best: Option<(usize, f64)> = None;
        for (index, job_blocks) in blocks.iter().enumerate() {
            let Some(block) = job_blocks.get(cursor[index]) else {
                continue;
            };
            let size = u64::from(block.end - granted[index]);
            if size > remaining {
                // Blocks are atomic and later blocks of this job are no
                // better: the job is frozen for the rest of the round.
                continue;
            }
            let better = match best {
                None => true,
                Some((best_index, best_avg)) => {
                    block.avg > best_avg
                        || (block.avg == best_avg && jobs[index].job < jobs[best_index].job)
                }
            };
            if better {
                best = Some((index, block.avg));
            }
        }
        let Some((index, _)) = best else {
            break;
        };
        let block = blocks[index][cursor[index]];
        remaining -= u64::from(block.end - granted[index]);
        granted[index] = block.end;
        cursor[index] += 1;
        if remaining == 0 {
            break;
        }
    }
    Ok(granted)
}

/// Decomposes a utility curve `utilities[0..=r*]` into its concave-envelope
/// blocks (module docs): block averages are non-increasing, and granting
/// block by block never visits a point below the running maximum the
/// unconstrained optimizer would accept.
fn envelope_blocks(utilities: &[f64]) -> Vec<Block> {
    let r_star = utilities.len() - 1;
    let mut blocks = Vec::new();
    let mut current = 0usize;
    while current < r_star {
        let mut best_end = current + 1;
        let mut best_avg = block_average(utilities, current, current + 1);
        for end in current + 2..=r_star {
            let avg = block_average(utilities, current, end);
            if avg > best_avg {
                best_avg = avg;
                best_end = end;
            }
        }
        blocks.push(Block {
            end: best_end as u32,
            avg: best_avg,
        });
        current = best_end;
    }
    blocks
}

/// Average utility gain per copy across `(start, end]`, with the
/// `-∞`-floor cases made explicit: climbing out of the PoCD floor is
/// infinitely valuable, staying inside it is worthless.
fn block_average(utilities: &[f64], start: usize, end: usize) -> f64 {
    let (from, to) = (utilities[start], utilities[end]);
    if from == f64::NEG_INFINITY {
        if to == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        return f64::INFINITY;
    }
    (to - from) / (end - start) as f64
}

/// A snapshot of an [`AllocationLedger`]'s totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Jobs recorded across all batches.
    pub jobs: u64,
    /// Summed unconstrained optima.
    pub requested: u64,
    /// Summed granted copies.
    pub spent: u64,
    /// Jobs whose per-job plan was infeasible.
    pub infeasible: u64,
    /// Planning rounds recorded.
    pub batches: u64,
}

impl LedgerSummary {
    /// Exports the totals into a
    /// [`MetricsRegistry`](chronos_obs::MetricsRegistry) under the
    /// `chronos_plan_budget_*` namespace. The ledger keys grants by job
    /// id, so the totals — like its digest — are already worker-count-
    /// invariant.
    pub fn export_metrics(&self, registry: &mut chronos_obs::MetricsRegistry) {
        registry.counter_add(
            "chronos_plan_budget_jobs_total",
            "Jobs recorded across all budgeted planning rounds",
            self.jobs,
        );
        registry.counter_add(
            "chronos_plan_budget_requested_total",
            "Speculative copies the unconstrained optima asked for",
            self.requested,
        );
        registry.counter_add(
            "chronos_plan_budget_granted_total",
            "Speculative copies actually granted under the budget",
            self.spent,
        );
        registry.counter_add(
            "chronos_plan_budget_infeasible_total",
            "Jobs whose per-job plan was infeasible",
            self.infeasible,
        );
        registry.counter_add(
            "chronos_plan_budget_batches_total",
            "Budgeted planning rounds recorded",
            self.batches,
        );
    }
}

/// Accumulates the [`Allocation`]s of many planning rounds (e.g. one per
/// shard chunk of a sharded replay) into one worker-count-invariant view:
/// grants are keyed by job id, so the combined [`AllocationLedger::digest`]
/// is independent of the order batches complete in.
///
/// Share one ledger across shards the same way a [`crate::PlanCache`] is
/// shared: `Arc`-cloned into every policy the builder creates.
#[derive(Debug, Default)]
pub struct AllocationLedger {
    state: Mutex<LedgerState>,
}

#[derive(Debug, Default)]
struct LedgerState {
    grants: BTreeMap<u64, u32>,
    summary: LedgerSummary,
}

impl AllocationLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        AllocationLedger::default()
    }

    /// An empty ledger behind an `Arc`, ready to share across shards.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(AllocationLedger::new())
    }

    /// Folds one planning round into the ledger.
    pub fn record(&self, allocation: &Allocation) {
        let mut state = self.state.lock().expect("ledger lock poisoned");
        for grant in &allocation.grants {
            state.grants.insert(grant.job, grant.copies);
        }
        state.summary.jobs += allocation.grants.len() as u64;
        state.summary.requested += allocation.requested;
        state.summary.spent += allocation.spent;
        state.summary.infeasible += u64::from(allocation.infeasible);
        state.summary.batches += 1;
    }

    /// The combined allocation digest: FNV-1a 64 over every recorded
    /// `(job id, copies)` pair in ascending job-id order. Identical across
    /// worker counts whenever the underlying batches are (the chunk
    /// structure, not the thread schedule, determines the batches).
    #[must_use]
    pub fn digest(&self) -> String {
        let state = self.state.lock().expect("ledger lock poisoned");
        grants_digest(state.grants.iter().map(|(&job, &copies)| (job, copies)))
    }

    /// Totals across every recorded round.
    #[must_use]
    pub fn summary(&self) -> LedgerSummary {
        self.state.lock().expect("ledger lock poisoned").summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::{JobProfile, StrategyParams, UtilityModel};

    fn planner() -> Planner {
        Planner::new(UtilityModel::new(1e-4, 0.0).unwrap())
    }

    fn batch_job(id: u64, deadline: f64) -> BudgetJob {
        let job = JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(deadline)
            .price(1.0)
            .build()
            .unwrap();
        BudgetJob::new(
            id,
            PlanRequest::new(job, StrategyParams::clone_strategy(80.0)),
        )
    }

    #[test]
    fn budget_parses_and_displays() {
        assert_eq!(
            "unlimited".parse::<SpeculationBudget>().unwrap(),
            SpeculationBudget::Unlimited
        );
        assert_eq!(
            "12".parse::<SpeculationBudget>().unwrap(),
            SpeculationBudget::Limited(12)
        );
        let err = "twelve".parse::<SpeculationBudget>().unwrap_err();
        assert!(err.to_string().contains("`twelve`"));
        assert_eq!(SpeculationBudget::Unlimited.to_string(), "unlimited");
        assert_eq!(SpeculationBudget::Limited(3).to_string(), "3");
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let planner = planner();
        let jobs = vec![batch_job(0, 100.0), batch_job(1, 120.0)];
        let allocation = allocate(&planner, &jobs, SpeculationBudget::Limited(0)).unwrap();
        assert!(allocation.grants.iter().all(|grant| grant.copies == 0));
        assert_eq!(allocation.spent, 0);
        assert!(allocation.requested > 0);
    }

    #[test]
    fn ample_budget_reproduces_the_unconstrained_optima() {
        let planner = planner();
        let jobs = vec![batch_job(0, 100.0), batch_job(1, 120.0), batch_job(2, 90.0)];
        let unlimited = allocate(&planner, &jobs, SpeculationBudget::Unlimited).unwrap();
        let ample = allocate(
            &planner,
            &jobs,
            SpeculationBudget::Limited(unlimited.requested),
        )
        .unwrap();
        for (a, b) in unlimited.grants.iter().zip(&ample.grants) {
            assert_eq!(a.copies, b.copies);
            assert_eq!(a.copies, a.unconstrained);
        }
        assert_eq!(ample.spent, ample.requested);
    }

    #[test]
    fn single_job_batch_is_clamped_to_the_budget() {
        let planner = planner();
        let jobs = vec![batch_job(7, 100.0)];
        let unlimited = allocate(&planner, &jobs, SpeculationBudget::Unlimited).unwrap();
        assert!(unlimited.grants[0].copies >= 1);
        let capped = allocate(&planner, &jobs, SpeculationBudget::Limited(1)).unwrap();
        assert!(capped.grants[0].copies <= 1);
        assert!(capped.spent <= 1);
    }

    #[test]
    fn tied_marginals_resolve_by_ascending_job_id() {
        let planner = planner();
        // Identical profiles → identical utility curves → every marginal
        // ties. One copy must go to the lowest job id.
        let jobs = vec![
            batch_job(9, 100.0),
            batch_job(3, 100.0),
            batch_job(5, 100.0),
        ];
        let allocation = allocate(&planner, &jobs, SpeculationBudget::Limited(1)).unwrap();
        let by_id: BTreeMap<u64, u32> = allocation
            .grants
            .iter()
            .map(|grant| (grant.job, grant.copies))
            .collect();
        assert_eq!(by_id[&3], 1);
        assert_eq!(by_id[&5], 0);
        assert_eq!(by_id[&9], 0);
    }

    #[test]
    fn infeasible_jobs_are_granted_zero_and_counted() {
        let planner = planner();
        // Deadline at t_min: the profile itself cannot be built feasibly
        // for the clone timing (tau_kill beyond the deadline is fine, but a
        // deadline equal to t_min is hopeless), so drive infeasibility via
        // a reactive timing beyond the deadline instead.
        let job = JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .price(1.0)
            .build()
            .unwrap();
        let broken = BudgetJob::new(
            1,
            PlanRequest::new(job, StrategyParams::restart(95.0, 99.0).unwrap()),
        );
        let jobs = vec![batch_job(0, 100.0), broken];
        let allocation = allocate(&planner, &jobs, SpeculationBudget::Limited(8)).unwrap();
        assert_eq!(allocation.infeasible, 1);
        assert_eq!(allocation.grants[1].copies, 0);
        assert_eq!(allocation.grants[1].unconstrained, 0);
        assert!(allocation.grants[0].copies >= 1);
    }

    #[test]
    fn digest_is_order_invariant_and_grant_sensitive() {
        let planner = planner();
        let forward = vec![batch_job(0, 100.0), batch_job(1, 120.0)];
        let reversed = vec![batch_job(1, 120.0), batch_job(0, 100.0)];
        let budget = SpeculationBudget::Limited(2);
        let a = allocate(&planner, &forward, budget).unwrap();
        let b = allocate(&planner, &reversed, budget).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = allocate(&planner, &forward, SpeculationBudget::Limited(0)).unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn ledger_combines_batches_worker_invariantly() {
        let planner = planner();
        let jobs = [batch_job(0, 100.0), batch_job(1, 120.0), batch_job(2, 90.0)];
        let budget = SpeculationBudget::Limited(2);
        // One big batch vs the same jobs split across two "chunks" in the
        // opposite recording order: per-chunk allocation differs from the
        // single batch in general, so compare the split orders to each
        // other.
        let first = allocate(&planner, &jobs[..1], budget).unwrap();
        let rest = allocate(&planner, &jobs[1..], budget).unwrap();
        let forward = AllocationLedger::new();
        forward.record(&first);
        forward.record(&rest);
        let backward = AllocationLedger::new();
        backward.record(&rest);
        backward.record(&first);
        assert_eq!(forward.digest(), backward.digest());
        let summary = forward.summary();
        assert_eq!(summary.batches, 2);
        assert_eq!(summary.jobs, 3);
        assert_eq!(summary.spent, first.spent + rest.spent);
    }

    #[test]
    fn envelope_blocks_handle_a_non_concave_head() {
        // U = [0, -2, 5, 6]: the first marginal is negative but the curve
        // peaks later, so the first block must span straight to the peak of
        // the average gain (r = 2, avg 2.5), then a size-1 block to r = 3.
        let blocks = envelope_blocks(&[0.0, -2.0, 5.0, 6.0]);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].end, 2);
        assert!((blocks[0].avg - 2.5).abs() < 1e-12);
        assert_eq!(blocks[1].end, 3);
        assert!((blocks[1].avg - 1.0).abs() < 1e-12);
        // Averages non-increasing.
        assert!(blocks[0].avg >= blocks[1].avg);
    }

    #[test]
    fn atomic_blocks_are_skipped_when_unaffordable() {
        // With budget 1 the 2-copy escape block cannot be granted
        // partially: a partial grant would land on the -2 point.
        let blocks = envelope_blocks(&[0.0, -2.0, 5.0]);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].end, 2);
    }

    #[test]
    fn floor_escape_is_infinitely_valuable() {
        assert_eq!(
            block_average(&[f64::NEG_INFINITY, 1.0], 0, 1),
            f64::INFINITY
        );
        assert_eq!(
            block_average(&[f64::NEG_INFINITY, f64::NEG_INFINITY, 1.0], 0, 1),
            f64::NEG_INFINITY
        );
    }
}
