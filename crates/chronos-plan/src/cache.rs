//! The concurrent plan cache: lock-striped, memoizing, counter-instrumented.
//!
//! A [`PlanCache`] maps [`ProfileKey`]s to solved plans. It is designed for
//! the sharded replay path, where many worker threads look up mostly-equal
//! keys concurrently:
//!
//! * **Lock striping.** Keys are distributed over independently locked
//!   stripes (by a deterministic hash), so lookups of different profiles
//!   rarely contend. Each stripe's lock is held only for the map operation,
//!   never while a plan is being solved.
//! * **Single-flight solves.** Each entry is a [`OnceLock`] slot: the first
//!   thread to request a key inserts the slot and solves into it; any other
//!   thread requesting the same key — even while the solve is still running
//!   — receives the same slot and blocks only on that one entry. A distinct
//!   profile is therefore solved **exactly once** per cache lifetime, which
//!   also makes the hit/miss counters deterministic: misses equal the
//!   number of distinct keys requested, independent of thread scheduling.
//! * **Counters.** Hits, misses and evictions accumulate in relaxed atomics
//!   and are exposed as a [`CacheStats`] snapshot; `CacheStats::since`
//!   computes the delta over a measured region (one replay, one batch).
//!
//! The cache stores failed solves too: an infeasible profile is negative —
//! cached, so a trace full of hopeless jobs pays the infeasibility proof
//! once per class instead of once per job.

use crate::key::ProfileKey;
use crate::planner::PlanResult;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A single-flight entry: solved at most once, shared by all requesters.
type Slot = Arc<OnceLock<PlanResult>>;

/// A resident entry plus its second-chance reference bit.
#[derive(Debug)]
struct Resident {
    slot: Slot,
    /// Set on every hit, cleared (once) by the eviction scan: an entry hit
    /// since the scan last passed it survives one more round.
    referenced: bool,
}

impl Resident {
    /// The entry's memory footprint in bytes: the fixed slot overhead plus
    /// whatever the resolved result keeps on the heap. `Plan` is `Copy`
    /// (all-inline), so successful solves weigh the floor; a negative-cached
    /// error additionally owns its message bytes. An in-flight entry reads
    /// as the floor too — its final size is unknown and evicting a solve
    /// that threads are blocked on would waste the work in progress.
    fn footprint(&self) -> usize {
        let floor = std::mem::size_of::<Resident>() + std::mem::size_of::<PlanResult>();
        match self.slot.get() {
            Some(Err(err)) => floor + err.to_string().len(),
            Some(Ok(_)) | None => floor,
        }
    }
}

/// One lock stripe: the entry map plus the FIFO scan order the
/// second-chance eviction walks. `order` contains exactly the resident
/// keys, oldest insertion first.
#[derive(Debug, Default)]
struct Stripe {
    map: HashMap<ProfileKey, Resident>,
    order: VecDeque<ProfileKey>,
}

impl Stripe {
    /// Evicts one entry by the size-aware clock/second-chance rule: scan
    /// one lap of the FIFO order, give each referenced entry its second
    /// chance (clear the bit), and among the unreferenced entries victimize
    /// the one with the **largest [`Resident::footprint`]** — under
    /// capacity pressure, evicting the heaviest cold entry frees the most
    /// memory per eviction. Equal footprints (the common case: every
    /// successful solve weighs the same) tie-break toward the **smallest
    /// key**, which is deterministic across runs and hosts — never the
    /// map's per-process iteration order. A lap that finds every entry
    /// referenced clears all the bits, so the second lap always yields a
    /// victim.
    fn evict_one(&mut self) {
        for _lap in 0..2 {
            let mut victim: Option<(usize, ProfileKey, usize)> = None;
            for (position, key) in self.order.iter().enumerate() {
                let resident = self
                    .map
                    .get_mut(key)
                    .expect("order contains exactly the resident keys");
                if resident.referenced {
                    resident.referenced = false;
                    continue;
                }
                let weight = resident.footprint();
                let heavier = match &victim {
                    None => true,
                    Some((best_weight, best_key, _)) => {
                        weight > *best_weight || (weight == *best_weight && *key < *best_key)
                    }
                };
                if heavier {
                    victim = Some((weight, *key, position));
                }
            }
            if let Some((_, key, position)) = victim {
                self.map.remove(&key);
                self.order.remove(position);
                return;
            }
        }
        unreachable!("a bit-cleared lap over a non-empty stripe yields a victim");
    }
}

/// Snapshot of a [`PlanCache`]'s counters.
///
/// Obtained from [`PlanCache::stats`]; two snapshots around a measured
/// region subtract via [`CacheStats::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an existing entry (including entries whose solve
    /// was still in flight on another thread).
    pub hits: u64,
    /// Lookups that inserted a new entry. With an unbounded cache this
    /// equals the number of distinct profiles requested.
    pub misses: u64,
    /// Entries removed to respect a configured capacity.
    pub evictions: u64,
    /// Entries resident at snapshot time.
    pub entries: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (`0.0` when there were no
    /// lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Exports the snapshot into a
    /// [`MetricsRegistry`](chronos_obs::MetricsRegistry) under the
    /// `chronos_plan_cache_*` namespace. Totals are worker-count-invariant
    /// for the single-flight cache: each distinct key misses exactly once
    /// no matter which worker took the miss, so the exported registry of a
    /// sharded run needs no further normalization.
    pub fn export_metrics(&self, registry: &mut chronos_obs::MetricsRegistry) {
        registry.counter_add(
            "chronos_plan_cache_hits_total",
            "Plan-cache lookups served from the cache",
            self.hits,
        );
        registry.counter_add(
            "chronos_plan_cache_misses_total",
            "Plan-cache lookups that computed a fresh plan",
            self.misses,
        );
        registry.counter_add(
            "chronos_plan_cache_evictions_total",
            "Plan-cache entries evicted under capacity pressure",
            self.evictions,
        );
        registry.gauge_add(
            "chronos_plan_cache_entries",
            "Plan-cache entries resident at snapshot time",
            i64::try_from(self.entries).unwrap_or(i64::MAX),
        );
    }

    /// The counter deltas accumulated since `earlier` was snapshotted.
    /// `entries` is not a counter and keeps this snapshot's value.
    ///
    /// # Contract
    ///
    /// `earlier` must be an **earlier snapshot of the same cache**. The
    /// monotone counters (`hits`, `misses`, `evictions`) never decrease
    /// over a cache's lifetime — [`PlanCache::clear`] deliberately
    /// preserves them exactly so that a snapshot taken before a `clear`
    /// stays a valid `earlier` afterwards — so a componentwise-greater
    /// `earlier` can only mean the arguments were swapped or the snapshots
    /// come from two different caches. Debug builds reject that with a
    /// panic; release builds saturate each delta to zero rather than
    /// underflow.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        debug_assert!(
            earlier.hits <= self.hits
                && earlier.misses <= self.misses
                && earlier.evictions <= self.evictions,
            "CacheStats::since: `earlier` ({earlier:?}) is not componentwise <= `self` \
             ({self:?}); snapshots must come from the same cache, oldest passed as `earlier`"
        );
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.2}% hit rate), {} entries, {} evictions",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries,
            self.evictions
        )
    }
}

/// The sharded, lock-striped concurrent plan cache. See the [module
/// docs](self) for the concurrency and determinism contract.
///
/// # Examples
///
/// ```
/// use chronos_plan::prelude::*;
///
/// let cache = PlanCache::new();
/// assert!(cache.is_empty());
/// assert_eq!(cache.stats().lookups(), 0);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    stripes: Vec<Mutex<Stripe>>,
    /// Maximum entries per stripe (`None` = unbounded, the default).
    stripe_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Stripe count of [`PlanCache::new`]: enough that a worker pool of
    /// typical width rarely contends on one stripe lock.
    pub const DEFAULT_STRIPES: usize = 16;

    /// An unbounded cache with [`PlanCache::DEFAULT_STRIPES`] stripes.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::with_stripes(Self::DEFAULT_STRIPES)
    }

    /// An unbounded cache with an explicit stripe count (clamped to ≥ 1).
    #[must_use]
    pub fn with_stripes(stripes: usize) -> Self {
        let stripes = stripes.max(1);
        PlanCache {
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            stripe_capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Bounds the cache to roughly `capacity` entries (split evenly across
    /// stripes, at least one per stripe). When a stripe is full, an entry
    /// is evicted by a **size-aware clock/second-chance** policy: eviction
    /// scans the stripe's insertion-order FIFO, spares (once) every entry
    /// hit since the scan last passed it, and among the rest removes the
    /// one with the largest footprint — negative-cached errors carry their
    /// message bytes, so they go before same-aged fixed-size plans. Equal
    /// footprints tie-break toward the smallest key. Hot profiles therefore
    /// stay resident under skewed request streams — unlike the earlier
    /// smallest-key victim choice, which evicted an arbitrary resident and
    /// could thrash on precisely the profiles a skewed stream re-requests.
    /// The choice is still deterministic (it depends only on the stripe's
    /// hit/insert sequence and the entries' contents, never on the map's
    /// per-process hash seed), so single-threaded workloads replay their
    /// eviction sequence exactly; the `evictions` counter records each
    /// removal. Note that under eviction the hit/miss counts of a
    /// *concurrent* workload are no longer scheduling-independent —
    /// production replays should size the capacity above the distinct
    /// profile count (or leave it unbounded, the default).
    #[must_use]
    pub fn with_capacity_limit(mut self, capacity: usize) -> Self {
        let per_stripe = capacity.div_ceil(self.stripes.len()).max(1);
        self.stripe_capacity = Some(per_stripe);
        self
    }

    /// Wraps the cache for sharing across planners and worker threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(PlanCache::new())
    }

    fn stripe_of(&self, key: &ProfileKey) -> &Mutex<Stripe> {
        // DefaultHasher with default keys is deterministic, so the stripe
        // layout does not change from run to run. (The stripe *maps* still
        // use HashMap's per-process random state, which is why eviction
        // scans the explicit insertion-order FIFO, never iteration order.)
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() % self.stripes.len() as u64) as usize;
        &self.stripes[index]
    }

    /// Records `count` requests that were served by a batch's in-flight
    /// deduplication without reaching the map: from the caller's point of
    /// view those are cache hits (no solve was paid), and counting them
    /// keeps `stats().lookups()` equal to the number of requests planned.
    pub(crate) fn note_deduplicated_hits(&self, count: u64) {
        self.hits.fetch_add(count, Ordering::Relaxed);
    }

    /// Returns the memoized result for `key`, solving it with `compute` on
    /// the first request. Concurrent requests for the same key block on the
    /// in-flight solve instead of re-solving (see the module docs).
    pub fn get_or_compute<F>(&self, key: ProfileKey, compute: F) -> PlanResult
    where
        F: FnOnce() -> PlanResult,
    {
        let slot = {
            let mut stripe = self
                .stripe_of(&key)
                .lock()
                .expect("plan cache stripe poisoned");
            if let Some(resident) = stripe.map.get_mut(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Second-chance bookkeeping: a hit marks the entry so the
                // next eviction scan spares it once.
                resident.referenced = true;
                Arc::clone(&resident.slot)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(capacity) = self.stripe_capacity {
                    while stripe.map.len() >= capacity {
                        stripe.evict_one();
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let slot: Slot = Arc::new(OnceLock::new());
                stripe.map.insert(
                    key,
                    Resident {
                        slot: Arc::clone(&slot),
                        referenced: false,
                    },
                );
                stripe.order.push_back(key);
                slot
            }
        };
        slot.get_or_init(compute).clone()
    }

    /// The already-memoized result for `key`, if any (never solves; an
    /// in-flight entry reads as absent). Does not touch the hit/miss
    /// counters **or the entry's eviction recency** — this is an
    /// inspection API, not a lookup.
    #[must_use]
    pub fn peek(&self, key: &ProfileKey) -> Option<PlanResult> {
        let stripe = self
            .stripe_of(key)
            .lock()
            .expect("plan cache stripe poisoned");
        stripe
            .map
            .get(key)
            .and_then(|resident| resident.slot.get().cloned())
    }

    /// Number of resident entries (including in-flight ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|stripe| stripe.lock().expect("plan cache stripe poisoned").map.len())
            .sum()
    }

    /// True when no entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry. Counters are preserved — they are lifetime
    /// totals, which keeps every previously taken [`CacheStats`] snapshot
    /// a valid `earlier` argument to [`CacheStats::since`] even across a
    /// clear (resetting them here would make such deltas silently
    /// saturate to zero).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut stripe = stripe.lock().expect("plan cache stripe poisoned");
            stripe.map.clear();
            stripe.order.clear();
        }
    }

    /// Snapshot of the counters and the resident entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Plan;
    use chronos_core::{JobProfile, OptimizerConfig, StrategyParams, UtilityModel};
    use chronos_core::{OptimizationOutcome, StrategyKind};

    fn key(deadline: f64) -> ProfileKey {
        let job = JobProfile::builder().deadline(deadline).build().unwrap();
        ProfileKey::new(
            &job,
            &StrategyParams::clone_strategy(40.0),
            &UtilityModel::default(),
            &OptimizerConfig::default(),
        )
    }

    fn plan(r: u32) -> PlanResult {
        Ok(Plan {
            outcome: OptimizationOutcome {
                strategy: StrategyKind::Clone,
                r,
                utility: -0.1,
                pocd: 0.9,
                machine_time: 100.0,
                dollar_cost: 100.0,
            },
            baseline_pocd: 0.5,
            baseline_machine_time: 80.0,
            baseline_dollar_cost: 80.0,
        })
    }

    #[test]
    fn memoizes_and_counts() {
        let cache = PlanCache::new();
        let mut solves = 0;
        for _ in 0..3 {
            let result = cache.get_or_compute(key(100.0), || {
                solves += 1;
                plan(2)
            });
            assert_eq!(result.unwrap().outcome.r, 2);
        }
        assert_eq!(solves, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_share_entries() {
        let cache = PlanCache::new();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(120.0), || plan(7)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.peek(&key(120.0)).unwrap().unwrap().outcome.r, 7);
        assert_eq!(cache.peek(&key(100.0)).unwrap().unwrap().outcome.r, 1);
        assert!(cache.peek(&key(140.0)).is_none());
    }

    #[test]
    fn errors_are_negative_cached() {
        let cache = PlanCache::new();
        let mut solves = 0;
        for _ in 0..2 {
            let result = cache.get_or_compute(key(100.0), || {
                solves += 1;
                Err(chronos_core::ChronosError::infeasible("hopeless"))
            });
            assert!(result.is_err());
        }
        assert_eq!(solves, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn capacity_limit_evicts_fifo_when_nothing_is_rehit() {
        // One stripe so the capacity applies to a single map. With no
        // re-hits and equal footprints (all successful solves), the
        // smallest-key tie-break is the whole policy; these keys ascend
        // with insertion, so eviction runs oldest-first —
        // deterministically, never an artifact of the map's per-process
        // iteration order.
        let cache = PlanCache::with_stripes(1).with_capacity_limit(2);
        for (index, deadline) in [100.0, 110.0, 120.0, 130.0].iter().enumerate() {
            cache
                .get_or_compute(key(*deadline), || plan(index as u32))
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
        // The two oldest insertions were evicted; the two newest survive.
        assert!(cache.peek(&key(100.0)).is_none());
        assert!(cache.peek(&key(110.0)).is_none());
        assert!(cache.peek(&key(120.0)).is_some());
        assert!(cache.peek(&key(130.0)).is_some());
    }

    #[test]
    fn eviction_spares_recently_hit_entries() {
        // Regression: the old policy evicted the smallest resident *key* —
        // an arbitrary victim that thrashed on skewed streams, evicting the
        // hot profile (smallest key 100) here. Second chance must spare the
        // entry that was hit and evict the cold one instead.
        let cache = PlanCache::with_stripes(1).with_capacity_limit(2);
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(110.0), || plan(2)).unwrap();
        // Re-hit the oldest (and smallest-keyed) entry: it is now hot.
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        // The insert that forces an eviction must victimize the cold 110.
        cache.get_or_compute(key(120.0), || plan(3)).unwrap();
        assert!(cache.peek(&key(100.0)).is_some(), "hot entry was evicted");
        assert!(cache.peek(&key(110.0)).is_none());
        assert!(cache.peek(&key(120.0)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn eviction_grants_each_entry_one_second_chance_per_scan() {
        // Every resident is hot: the scan clears each reference bit once,
        // laps, and then evicts in FIFO order — it must terminate and pick
        // the oldest insertion.
        let cache = PlanCache::with_stripes(1).with_capacity_limit(2);
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(110.0), || plan(2)).unwrap();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(110.0), || plan(2)).unwrap();
        cache.get_or_compute(key(120.0), || plan(3)).unwrap();
        assert!(cache.peek(&key(100.0)).is_none(), "oldest should go first");
        assert!(cache.peek(&key(110.0)).is_some());
        assert!(cache.peek(&key(120.0)).is_some());
        assert_eq!(cache.stats().evictions, 1);

        // The lap consumed 110's second chance; an untouched follow-up
        // insert evicts it without another grace round.
        cache.get_or_compute(key(130.0), || plan(4)).unwrap();
        assert!(cache.peek(&key(110.0)).is_none());
        assert!(cache.peek(&key(120.0)).is_some());
        assert!(cache.peek(&key(130.0)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn peek_does_not_refresh_eviction_recency() {
        // peek is an inspection API: it must not mark an entry referenced,
        // or observability would perturb the eviction sequence.
        let cache = PlanCache::with_stripes(1).with_capacity_limit(2);
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(110.0), || plan(2)).unwrap();
        assert!(cache.peek(&key(100.0)).is_some());
        cache.get_or_compute(key(120.0), || plan(3)).unwrap();
        // Despite the peek, 100 (oldest, never re-hit) was the victim.
        assert!(cache.peek(&key(100.0)).is_none());
        assert!(cache.peek(&key(110.0)).is_some());
    }

    #[test]
    fn eviction_weighs_entry_footprint_under_pressure() {
        // Regression against the unweighted clock policy: the scan reaches
        // the unreferenced small `Ok` entry first (oldest insertion) and
        // would evict it. The size-aware policy must instead victimize the
        // negative-cached error, whose message bytes make it the heaviest
        // cold entry — even though it is newer.
        let cache = PlanCache::with_stripes(1).with_capacity_limit(2);
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        let heavy = cache.get_or_compute(key(110.0), || {
            Err(chronos_core::ChronosError::infeasible(
                "a deliberately long infeasibility explanation whose message bytes \
                 dominate the fixed per-entry footprint of a successful plan",
            ))
        });
        assert!(heavy.is_err());
        cache.get_or_compute(key(120.0), || plan(3)).unwrap();
        assert!(
            cache.peek(&key(100.0)).is_some(),
            "the small old entry must survive under size-aware eviction"
        );
        assert!(
            cache.peek(&key(110.0)).is_none(),
            "the heavy negative-cached error must be the victim"
        );
        assert!(cache.peek(&key(120.0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let cache = PlanCache::new();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        // A re-request is a fresh miss.
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_delta_and_display() {
        let cache = PlanCache::new();
        let before = cache.stats();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (1, 1, 1));
        let text = delta.to_string();
        assert!(text.contains("1 hits"), "{text}");
        assert!(text.contains("50.00% hit rate"), "{text}");
    }

    #[test]
    fn snapshots_taken_before_clear_stay_valid_for_since() {
        let cache = PlanCache::new();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        let before = cache.stats();
        assert_eq!((before.hits, before.misses, before.entries), (1, 1, 1));

        // clear() drops the entries but preserves the counters, so the
        // pre-clear snapshot still subtracts correctly afterwards.
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_compute(key(100.0), || plan(2)).unwrap(); // re-solved: miss
        cache.get_or_compute(key(120.0), || plan(3)).unwrap(); // new key: miss
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (0, 2, 2));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "componentwise")]
    fn since_rejects_a_backwards_snapshot_in_debug() {
        let cache = PlanCache::new();
        cache.get_or_compute(key(100.0), || plan(1)).unwrap();
        let later = cache.stats();
        // Swapped arguments: `earlier` has more misses than `self`.
        let _ = CacheStats::default().since(&later);
    }

    #[test]
    fn concurrent_same_key_solves_once() {
        let cache = Arc::new(PlanCache::new());
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let result = cache.get_or_compute(key(100.0), || {
                        solves.fetch_add(1, Ordering::Relaxed);
                        plan(3)
                    });
                    assert_eq!(result.unwrap().outcome.r, 3);
                });
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
