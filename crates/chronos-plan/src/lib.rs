//! # chronos-plan
//!
//! The strategy-planning subsystem of the Chronos reproduction: memoized,
//! batched execution of the per-job PoCD/cost optimization (Algorithm 1 of
//! the paper) across workloads that share job classes.
//!
//! Real traces — and the synthetic Google-style workloads the evaluation
//! replays — contain thousands of jobs drawn from a handful of
//! `(tasks, t_min, β, deadline, price)` profiles. The closed forms of
//! Sections III–V depend only on those inputs, so solving them once per
//! *class* and reusing the result per *job* is free throughput: the
//! multi-job formulations of Xu & Lau (arXiv:1406.0609) and the task-cloning
//! bounds of arXiv:1501.02330 exploit exactly this structure. This crate
//! makes that reuse safe and observable:
//!
//! * [`ProfileKey`] / [`JobProfileKey`] — canonical, hashable identities of
//!   an optimization problem, bit-exact in every `f64` field
//!   ([`canonical_f64_bits`]), so equal inputs always collide and inputs one
//!   ULP apart never do;
//! * [`PlanCache`] — a lock-striped concurrent cache with single-flight
//!   solves and hit/miss/eviction counters ([`CacheStats`]);
//! * [`Planner`] — `plan` (memoized, bit-identical to an uncached
//!   `Optimizer::optimize`) and [`Planner::plan_batch`] (deduplicate a
//!   request slice, solve each distinct profile once across a scoped worker
//!   pool, scatter results back in input order);
//! * [`budget`] — cluster-wide speculation budgets: [`allocate`] distributes
//!   a shared copy budget across a batch by deterministic greedy
//!   water-filling over the per-job closed-form utilities, and an
//!   [`AllocationLedger`] folds per-batch grants into a
//!   worker-count-invariant digest.
//!
//! The crate sits between `chronos-core` (whose optimizer it wraps) and the
//! simulation/benchmark layers (whose policies and replay paths consume it);
//! it depends only on `chronos-core`.
//!
//! # Worked example
//!
//! A 10,000-job workload drawn from three job classes plans with exactly
//! three optimizer solves, and every result is bit-identical to the
//! uncached path:
//!
//! ```
//! use chronos_plan::prelude::*;
//! use chronos_core::prelude::*;
//!
//! # fn main() -> Result<(), ChronosError> {
//! let planner = Planner::new(UtilityModel::new(1e-4, 0.0)?);
//!
//! // Three job classes, cycled over 10,000 "submissions".
//! let classes = [
//!     JobProfile::builder().tasks(10).deadline(100.0).build()?,
//!     JobProfile::builder().tasks(50).deadline(120.0).build()?,
//!     JobProfile::builder().tasks(200).deadline(150.0).build()?,
//! ];
//! let params = StrategyParams::resume(40.0, 80.0, 0.3)?;
//! let requests: Vec<PlanRequest> = (0..10_000)
//!     .map(|i| PlanRequest::new(classes[i % 3], params))
//!     .collect();
//!
//! let plans = planner.plan_batch(&requests, 4);
//!
//! // One solve per class, 9,997 cache hits …
//! let stats = planner.stats();
//! assert_eq!(stats.misses, 3);
//! assert_eq!(stats.hits + stats.misses, 10_000);
//! assert!(stats.hit_rate() > 0.999);
//!
//! // … and the memoized plans are the uncached optimizer's answers.
//! let direct = Optimizer::new(UtilityModel::new(1e-4, 0.0)?)
//!     .optimize(&classes[1], &params)?;
//! assert_eq!(plans[1].as_ref().unwrap().outcome, direct);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod key;
pub mod planner;

pub mod prelude;

pub use budget::{
    allocate, Allocation, AllocationLedger, BudgetJob, Grant, LedgerSummary, ParseBudgetError,
    SpeculationBudget,
};
pub use cache::{CacheStats, PlanCache};
pub use key::{canonical_f64_bits, JobProfileKey, ProfileKey};
pub use planner::{Plan, PlanRequest, PlanResult, Planner};
