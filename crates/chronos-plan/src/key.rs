//! Canonical, hashable keys for optimization inputs.
//!
//! The planner memoizes optimizer work per *job class*: two jobs whose
//! analytical inputs are equal must map to the same key, and two jobs whose
//! inputs differ — even by a single ULP of one `f64` field — must map to
//! different keys, because the closed forms are continuous but not constant
//! in every parameter. `f64` itself is neither `Eq` nor `Hash`, so the keys
//! canonicalize each float to its IEEE-754 bit pattern via
//! [`canonical_f64_bits`], which collapses the one case where distinct bit
//! patterns compare equal (`-0.0 == +0.0`). `NaN` never reaches a key: every
//! constructor input is validated by `chronos-core` before a key can be
//! built.

use chronos_core::optimizer::SearchMethod;
use chronos_core::{JobProfile, OptimizerConfig, StrategyKind, StrategyParams, UtilityModel};

/// The IEEE-754 bit pattern of `x`, with both zeros collapsed to `+0.0`.
///
/// This is the equality the cache keys use: bit-exact, except that the two
/// representations of zero (which compare `==` as floats) share one key.
///
/// # Examples
///
/// ```
/// use chronos_plan::canonical_f64_bits;
///
/// assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
/// let ulp_apart = f64::from_bits(100.0f64.to_bits() + 1);
/// assert_ne!(canonical_f64_bits(100.0), canonical_f64_bits(ulp_apart));
/// ```
#[must_use]
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else {
        x.to_bits()
    }
}

/// Canonical key of a [`JobProfile`]: the job-class identity used to count
/// distinct profiles in a trace and as the job half of a [`ProfileKey`].
///
/// Two profiles produce the same key exactly when every analytical input
/// (`N`, `t_min`, `β`, `D`, `C`) is equal as a float.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobProfileKey {
    tasks: u32,
    t_min: u64,
    beta: u64,
    deadline: u64,
    price: u64,
}

impl JobProfileKey {
    /// Builds the canonical key of a job profile.
    #[must_use]
    pub fn of(job: &JobProfile) -> Self {
        JobProfileKey {
            tasks: job.tasks(),
            t_min: canonical_f64_bits(job.t_min()),
            beta: canonical_f64_bits(job.beta()),
            deadline: canonical_f64_bits(job.deadline()),
            price: canonical_f64_bits(job.price()),
        }
    }

    /// The task count `N` carried by the key (the one field that needs no
    /// canonicalization).
    #[must_use]
    pub fn tasks(&self) -> u32 {
        self.tasks
    }
}

/// Stable small discriminant of a [`StrategyKind`] (the enum itself carries
/// no guaranteed discriminant values).
fn kind_tag(kind: StrategyKind) -> u8 {
    match kind {
        StrategyKind::Clone => 0,
        StrategyKind::SpeculativeRestart => 1,
        StrategyKind::SpeculativeResume => 2,
    }
}

/// Stable small discriminant of a [`SearchMethod`].
fn method_tag(method: SearchMethod) -> u8 {
    match method {
        SearchMethod::GoldenSection => 0,
        SearchMethod::GradientAscent => 1,
    }
}

/// Canonical key of one optimization problem: job profile, strategy
/// parameters, objective and optimizer configuration, with every `f64`
/// canonicalized by [`canonical_f64_bits`].
///
/// This is the full input of `Optimizer::optimize`, so memoizing on it is
/// sound even when one [`crate::PlanCache`] is shared by planners with
/// different objectives (θ, `R_min`) or optimizer settings: inputs that
/// could produce different outcomes can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    job: JobProfileKey,
    kind: u8,
    tau_est: u64,
    tau_kill: u64,
    phi_est: u64,
    theta: u64,
    r_min: u64,
    method: u8,
    eta: u64,
    alpha: u64,
    xi: u64,
    r_max: u32,
}

impl ProfileKey {
    /// Builds the canonical key of one optimization problem.
    #[must_use]
    pub fn new(
        job: &JobProfile,
        params: &StrategyParams,
        objective: &UtilityModel,
        config: &OptimizerConfig,
    ) -> Self {
        ProfileKey {
            job: JobProfileKey::of(job),
            kind: kind_tag(params.kind()),
            tau_est: canonical_f64_bits(params.tau_est()),
            tau_kill: canonical_f64_bits(params.tau_kill()),
            phi_est: canonical_f64_bits(params.phi_est()),
            theta: canonical_f64_bits(objective.theta()),
            r_min: canonical_f64_bits(objective.r_min()),
            method: method_tag(config.method),
            eta: canonical_f64_bits(config.eta),
            alpha: canonical_f64_bits(config.alpha),
            xi: canonical_f64_bits(config.xi),
            r_max: config.r_max,
        }
    }

    /// The job half of the key.
    #[must_use]
    pub fn job(&self) -> JobProfileKey {
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(deadline: f64) -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(deadline)
            .price(1.0)
            .build()
            .unwrap()
    }

    fn key(job: &JobProfile, params: &StrategyParams) -> ProfileKey {
        ProfileKey::new(
            job,
            params,
            &UtilityModel::default(),
            &OptimizerConfig::default(),
        )
    }

    #[test]
    fn equal_inputs_collide() {
        let params = StrategyParams::resume(40.0, 80.0, 0.4).unwrap();
        assert_eq!(key(&job(100.0), &params), key(&job(100.0), &params));
        assert_eq!(
            JobProfileKey::of(&job(100.0)),
            JobProfileKey::of(&job(100.0))
        );
    }

    #[test]
    fn one_ulp_of_any_job_field_separates_keys() {
        // A single-ULP nudge of the deadline (and of t_min) must produce a
        // different key: the closed forms are not constant in either.
        let params = StrategyParams::resume(40.0, 80.0, 0.4).unwrap();
        let base = job(100.0);
        let nudged_deadline = job(f64::from_bits(100.0f64.to_bits() + 1));
        assert_ne!(key(&base, &params), key(&nudged_deadline, &params));

        let nudged_t_min = JobProfile::builder()
            .tasks(10)
            .t_min(f64::from_bits(20.0f64.to_bits() + 1))
            .beta(1.5)
            .deadline(100.0)
            .price(1.0)
            .build()
            .unwrap();
        assert_ne!(key(&base, &params), key(&nudged_t_min, &params));
        assert_ne!(JobProfileKey::of(&base), JobProfileKey::of(&nudged_t_min));
    }

    #[test]
    fn one_ulp_of_strategy_and_objective_fields_separates_keys() {
        let base = StrategyParams::resume(40.0, 80.0, 0.4).unwrap();
        let nudged =
            StrategyParams::resume(40.0, 80.0, f64::from_bits(0.4f64.to_bits() + 1)).unwrap();
        assert_ne!(key(&job(100.0), &base), key(&job(100.0), &nudged));

        let theta_nudged = UtilityModel::new(f64::from_bits(1e-4f64.to_bits() + 1), 0.0).unwrap();
        assert_ne!(
            ProfileKey::new(
                &job(100.0),
                &base,
                &UtilityModel::new(1e-4, 0.0).unwrap(),
                &OptimizerConfig::default()
            ),
            ProfileKey::new(
                &job(100.0),
                &base,
                &theta_nudged,
                &OptimizerConfig::default()
            )
        );
    }

    #[test]
    fn strategy_kinds_never_collide() {
        let clone = StrategyParams::clone_strategy(80.0);
        // Same timing numbers, different kind (tau_est 0 in both).
        let restart = StrategyParams::restart(0.0, 80.0).unwrap();
        assert_ne!(key(&job(100.0), &clone), key(&job(100.0), &restart));
    }

    #[test]
    fn negative_zero_collides_with_zero() {
        assert_eq!(canonical_f64_bits(0.0), canonical_f64_bits(-0.0));
        assert_ne!(0.0f64.to_bits(), (-0.0f64).to_bits());
    }
}
