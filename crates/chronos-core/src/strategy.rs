//! Strategy identifiers and timing parameters shared by the analytical
//! models and the simulator-facing policies.
//!
//! Chronos unifies three strategies (Section III):
//!
//! * **Clone** — `r + 1` attempts per task launched at time 0; at `τ_kill`
//!   only the best-progress attempt survives.
//! * **Speculative-Restart** — one attempt per task; at `τ_est` stragglers
//!   (estimated completion beyond `D`) get `r` extra attempts that restart
//!   from byte 0; at `τ_kill` only the fastest attempt survives.
//! * **Speculative-Resume** — straggler detection as in S-Restart, but the
//!   straggler is killed and `r + 1` fresh attempts resume from the last
//!   processed byte offset; at `τ_kill` only the fastest attempt survives.

use crate::error::ChronosError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three Chronos strategies analysed in closed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Proactive cloning: `r + 1` parallel attempts from the start.
    Clone,
    /// Reactive restart: `r` extra attempts from byte 0 for detected stragglers.
    SpeculativeRestart,
    /// Reactive, work-preserving resume: kill the straggler, launch `r + 1`
    /// attempts from the last processed byte offset.
    SpeculativeResume,
}

impl StrategyKind {
    /// All strategy kinds, in the order the paper presents them.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Clone,
        StrategyKind::SpeculativeRestart,
        StrategyKind::SpeculativeResume,
    ];

    /// Short machine-friendly label, e.g. for experiment output rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Clone => "clone",
            StrategyKind::SpeculativeRestart => "s-restart",
            StrategyKind::SpeculativeResume => "s-resume",
        }
    }

    /// Whether the strategy reacts to observed progress (as opposed to
    /// cloning proactively at submission time).
    #[must_use]
    pub fn is_reactive(&self) -> bool {
        !matches!(self, StrategyKind::Clone)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StrategyKind::Clone => "Clone",
            StrategyKind::SpeculativeRestart => "Speculative-Restart",
            StrategyKind::SpeculativeResume => "Speculative-Resume",
        };
        f.write_str(name)
    }
}

/// Timing and progress parameters of a strategy instance.
///
/// * `tau_est` — the straggler-detection instant (`τ_est`); always `0` for
///   Clone, which never estimates.
/// * `tau_kill` — the pruning instant (`τ_kill`) at which all but the best
///   attempt are killed.
/// * `phi_est` — the average fraction of the task's workload processed by the
///   original attempt at `τ_est` (`ϕ_est`), used only by Speculative-Resume.
///
/// # Examples
///
/// ```
/// use chronos_core::strategy::{StrategyKind, StrategyParams};
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// let params = StrategyParams::new(StrategyKind::SpeculativeResume, 40.0, 80.0, 0.4)?;
/// assert_eq!(params.kind(), StrategyKind::SpeculativeResume);
/// assert!((params.remaining_fraction() - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyParams {
    kind: StrategyKind,
    tau_est: f64,
    tau_kill: f64,
    phi_est: f64,
}

impl StrategyParams {
    /// Creates a parameter set, validating the timing relations.
    ///
    /// # Errors
    ///
    /// * [`ChronosError::InvalidParameter`] for negative or non-finite times
    ///   or a `phi_est` outside `[0, 1)`.
    /// * [`ChronosError::InconsistentParameters`] when `tau_kill < tau_est`,
    ///   or when a Clone strategy is given a non-zero `tau_est`.
    pub fn new(
        kind: StrategyKind,
        tau_est: f64,
        tau_kill: f64,
        phi_est: f64,
    ) -> Result<Self, ChronosError> {
        if !(tau_est.is_finite() && tau_est >= 0.0) {
            return Err(ChronosError::invalid(
                "tau_est",
                tau_est,
                "a finite value >= 0",
            ));
        }
        if !(tau_kill.is_finite() && tau_kill >= 0.0) {
            return Err(ChronosError::invalid(
                "tau_kill",
                tau_kill,
                "a finite value >= 0",
            ));
        }
        if tau_kill < tau_est {
            return Err(ChronosError::inconsistent(format!(
                "tau_kill ({tau_kill}) must not precede tau_est ({tau_est})"
            )));
        }
        if !(0.0..1.0).contains(&phi_est) {
            return Err(ChronosError::invalid(
                "phi_est",
                phi_est,
                "a fraction in [0, 1)",
            ));
        }
        if kind == StrategyKind::Clone && tau_est != 0.0 {
            return Err(ChronosError::inconsistent(
                "Clone never estimates: tau_est must be 0",
            ));
        }
        Ok(StrategyParams {
            kind,
            tau_est,
            tau_kill,
            phi_est,
        })
    }

    /// Convenience constructor for the Clone strategy (no estimation point).
    ///
    /// # Panics
    ///
    /// Never panics: `tau_kill` is clamped to be non-negative before the
    /// validated constructor runs, and all other inputs are fixed constants.
    #[must_use]
    pub fn clone_strategy(tau_kill: f64) -> Self {
        StrategyParams::new(StrategyKind::Clone, 0.0, tau_kill.max(0.0), 0.0)
            .expect("clone strategy parameters are always valid after clamping")
    }

    /// Convenience constructor for Speculative-Restart.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`StrategyParams::new`].
    pub fn restart(tau_est: f64, tau_kill: f64) -> Result<Self, ChronosError> {
        StrategyParams::new(StrategyKind::SpeculativeRestart, tau_est, tau_kill, 0.0)
    }

    /// Convenience constructor for Speculative-Resume.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`StrategyParams::new`].
    pub fn resume(tau_est: f64, tau_kill: f64, phi_est: f64) -> Result<Self, ChronosError> {
        StrategyParams::new(StrategyKind::SpeculativeResume, tau_est, tau_kill, phi_est)
    }

    /// Which of the three strategies this parameter set configures.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// The straggler-detection instant `τ_est`.
    #[must_use]
    pub fn tau_est(&self) -> f64 {
        self.tau_est
    }

    /// The pruning instant `τ_kill`.
    #[must_use]
    pub fn tau_kill(&self) -> f64 {
        self.tau_kill
    }

    /// The average original-attempt progress at `τ_est` (`ϕ_est`).
    #[must_use]
    pub fn phi_est(&self) -> f64 {
        self.phi_est
    }

    /// The remaining workload fraction `1 − ϕ_est` processed by resumed
    /// attempts.
    #[must_use]
    pub fn remaining_fraction(&self) -> f64 {
        1.0 - self.phi_est
    }

    /// Returns a copy with a different estimation instant.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`StrategyParams::new`].
    pub fn with_tau_est(&self, tau_est: f64) -> Result<Self, ChronosError> {
        StrategyParams::new(self.kind, tau_est, self.tau_kill, self.phi_est)
    }

    /// Returns a copy with a different kill instant.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`StrategyParams::new`].
    pub fn with_tau_kill(&self, tau_kill: f64) -> Result<Self, ChronosError> {
        StrategyParams::new(self.kind, self.tau_est, tau_kill, self.phi_est)
    }

    /// Checks the parameter set against a specific deadline: reactive
    /// strategies need `D − τ_est > t_min` for any speculative attempt to be
    /// able to finish before the deadline.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] when the timing makes
    /// speculation pointless for the supplied job constants.
    pub fn validate_against(&self, deadline: f64, t_min: f64) -> Result<(), ChronosError> {
        if self.kind.is_reactive() && deadline - self.tau_est <= t_min {
            return Err(ChronosError::inconsistent(format!(
                "D - tau_est = {} does not exceed t_min = {t_min}; extra attempts can never finish in time",
                deadline - self.tau_est
            )));
        }
        if self.kind.is_reactive() && self.tau_est >= deadline {
            return Err(ChronosError::inconsistent(
                "tau_est at or beyond the deadline leaves no time to react",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(StrategyKind::Clone.label(), "clone");
        assert_eq!(StrategyKind::SpeculativeRestart.label(), "s-restart");
        assert_eq!(StrategyKind::SpeculativeResume.label(), "s-resume");
        assert_eq!(StrategyKind::Clone.to_string(), "Clone");
        assert_eq!(
            StrategyKind::SpeculativeResume.to_string(),
            "Speculative-Resume"
        );
    }

    #[test]
    fn reactivity() {
        assert!(!StrategyKind::Clone.is_reactive());
        assert!(StrategyKind::SpeculativeRestart.is_reactive());
        assert!(StrategyKind::SpeculativeResume.is_reactive());
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(StrategyKind::ALL.len(), 3);
    }

    #[test]
    fn clone_requires_zero_tau_est() {
        assert!(StrategyParams::new(StrategyKind::Clone, 10.0, 20.0, 0.0).is_err());
        assert!(StrategyParams::new(StrategyKind::Clone, 0.0, 20.0, 0.0).is_ok());
    }

    #[test]
    fn kill_cannot_precede_estimate() {
        assert!(StrategyParams::new(StrategyKind::SpeculativeRestart, 50.0, 40.0, 0.0).is_err());
    }

    #[test]
    fn phi_domain() {
        assert!(StrategyParams::resume(10.0, 20.0, 1.0).is_err());
        assert!(StrategyParams::resume(10.0, 20.0, -0.1).is_err());
        assert!(StrategyParams::resume(10.0, 20.0, 0.999).is_ok());
    }

    #[test]
    fn negative_times_rejected() {
        assert!(StrategyParams::restart(-1.0, 20.0).is_err());
        assert!(StrategyParams::new(StrategyKind::SpeculativeRestart, 1.0, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn clone_strategy_clamps() {
        let p = StrategyParams::clone_strategy(-5.0);
        assert_eq!(p.tau_kill(), 0.0);
        assert_eq!(p.kind(), StrategyKind::Clone);
    }

    #[test]
    fn remaining_fraction() {
        let p = StrategyParams::resume(40.0, 80.0, 0.35).unwrap();
        assert!((p.remaining_fraction() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn with_setters_revalidate() {
        let p = StrategyParams::restart(40.0, 80.0).unwrap();
        assert!(p.with_tau_est(90.0).is_err());
        assert_eq!(p.with_tau_est(10.0).unwrap().tau_est(), 10.0);
        assert!(p.with_tau_kill(30.0).is_err());
        assert_eq!(p.with_tau_kill(120.0).unwrap().tau_kill(), 120.0);
    }

    #[test]
    fn validate_against_deadline() {
        let p = StrategyParams::restart(40.0, 80.0).unwrap();
        assert!(p.validate_against(100.0, 20.0).is_ok());
        // D - tau_est = 30 <= t_min = 40: reactive attempts can't finish.
        assert!(p.validate_against(70.0, 40.0).is_err());
        // Clone has no estimation constraint.
        let c = StrategyParams::clone_strategy(80.0);
        assert!(c.validate_against(70.0, 40.0).is_ok());
    }
}
