//! Error types shared by the analytical crate.

use std::fmt;

/// Errors produced while constructing models or running the optimizer.
///
/// All public fallible functions in this crate return `Result<_, ChronosError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChronosError {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted domain.
        expected: &'static str,
    },
    /// Two parameters are individually valid but mutually inconsistent
    /// (e.g. a deadline earlier than the minimum task time).
    InconsistentParameters {
        /// Description of the inconsistency.
        detail: String,
    },
    /// A numerical routine failed to converge to the requested tolerance.
    NumericalFailure {
        /// Description of the routine and the failure.
        detail: String,
    },
    /// The optimization problem is infeasible, e.g. no `r` achieves
    /// `R(r) > R_min`.
    Infeasible {
        /// Description of why no feasible point exists.
        detail: String,
    },
}

impl ChronosError {
    /// Convenience constructor for [`ChronosError::InvalidParameter`].
    pub fn invalid(name: &'static str, value: f64, expected: &'static str) -> Self {
        ChronosError::InvalidParameter {
            name,
            value,
            expected,
        }
    }

    /// Convenience constructor for [`ChronosError::InconsistentParameters`].
    pub fn inconsistent(detail: impl Into<String>) -> Self {
        ChronosError::InconsistentParameters {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ChronosError::NumericalFailure`].
    pub fn numerical(detail: impl Into<String>) -> Self {
        ChronosError::NumericalFailure {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ChronosError::Infeasible`].
    pub fn infeasible(detail: impl Into<String>) -> Self {
        ChronosError::Infeasible {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ChronosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChronosError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            ChronosError::InconsistentParameters { detail } => {
                write!(f, "inconsistent parameters: {detail}")
            }
            ChronosError::NumericalFailure { detail } => {
                write!(f, "numerical routine failed: {detail}")
            }
            ChronosError::Infeasible { detail } => write!(f, "infeasible problem: {detail}"),
        }
    }
}

impl std::error::Error for ChronosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let err = ChronosError::invalid("beta", 0.5, "beta > 1");
        let text = err.to_string();
        assert!(text.contains("beta"));
        assert!(text.contains("0.5"));
    }

    #[test]
    fn display_inconsistent() {
        let err = ChronosError::inconsistent("deadline below t_min");
        assert!(err.to_string().contains("deadline below t_min"));
    }

    #[test]
    fn display_numerical() {
        let err = ChronosError::numerical("quadrature did not converge");
        assert!(err.to_string().contains("quadrature"));
    }

    #[test]
    fn display_infeasible() {
        let err = ChronosError::infeasible("R(r) never exceeds R_min");
        assert!(err.to_string().contains("R_min"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChronosError>();
    }
}
