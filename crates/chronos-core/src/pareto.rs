//! The Pareto task execution-time model (Section III of the paper).
//!
//! Task attempt execution times are modelled as i.i.d. Pareto random
//! variables with scale `t_min` (the minimum execution time) and tail index
//! `β`. This module provides the density, distribution, survival and
//! quantile functions, exact moments, the order-statistic expectation of
//! Lemma 1, the conditional forms used in the proofs of Theorems 4 and 6
//! (Lemma 3), and deterministic sampling.

use crate::error::ChronosError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Pareto distribution with scale `t_min > 0` and shape (tail index) `β > 0`.
///
/// The probability density is `f(t) = β·t_min^β / t^(β+1)` for `t ≥ t_min`
/// and zero otherwise (Eq. 2 in the paper).
///
/// # Examples
///
/// ```
/// use chronos_core::pareto::Pareto;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// let p = Pareto::new(20.0, 1.5)?;
/// assert!((p.mean().unwrap() - 60.0).abs() < 1e-9);
/// assert!((p.survival(40.0) - (0.5f64).powf(1.5)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    t_min: f64,
    beta: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with the given scale and tail index.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `t_min <= 0`, `beta <= 0`
    /// or either value is not finite.
    pub fn new(t_min: f64, beta: f64) -> Result<Self, ChronosError> {
        if !(t_min.is_finite() && t_min > 0.0) {
            return Err(ChronosError::invalid("t_min", t_min, "a finite value > 0"));
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(ChronosError::invalid("beta", beta, "a finite value > 0"));
        }
        Ok(Pareto { t_min, beta })
    }

    /// The minimum execution time `t_min` (scale parameter).
    #[must_use]
    pub fn t_min(&self) -> f64 {
        self.t_min
    }

    /// The tail index `β` (shape parameter).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Probability density function `f(t)`.
    #[must_use]
    pub fn pdf(&self, t: f64) -> f64 {
        if t < self.t_min {
            0.0
        } else {
            self.beta * self.t_min.powf(self.beta) / t.powf(self.beta + 1.0)
        }
    }

    /// Cumulative distribution function `P(T ≤ t)`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= self.t_min {
            0.0
        } else {
            1.0 - (self.t_min / t).powf(self.beta)
        }
    }

    /// Survival function `P(T > t)`.
    ///
    /// This is the per-attempt deadline-miss probability used throughout the
    /// PoCD analysis: `P_Clone = (t_min / D)^β` (Eq. 4).
    #[must_use]
    pub fn survival(&self, t: f64) -> f64 {
        if t <= self.t_min {
            1.0
        } else {
            (self.t_min / t).powf(self.beta)
        }
    }

    /// Quantile function: the smallest `t` with `P(T ≤ t) ≥ p`.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `p` is outside `[0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64, ChronosError> {
        if !(0.0..1.0).contains(&p) {
            return Err(ChronosError::invalid("p", p, "a probability in [0, 1)"));
        }
        Ok(self.t_min / (1.0 - p).powf(1.0 / self.beta))
    }

    /// Mean `E[T] = t_min·β / (β − 1)`, or `None` when `β ≤ 1` (infinite mean).
    ///
    /// The paper writes the same quantity as `t_min + t_min/(β − 1)`.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.beta > 1.0 {
            Some(self.t_min * self.beta / (self.beta - 1.0))
        } else {
            None
        }
    }

    /// Variance, or `None` when `β ≤ 2` (infinite variance).
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        if self.beta > 2.0 {
            let b = self.beta;
            Some(self.t_min * self.t_min * b / ((b - 1.0) * (b - 1.0) * (b - 2.0)))
        } else {
            None
        }
    }

    /// Median of the distribution.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.t_min * 2.0_f64.powf(1.0 / self.beta)
    }

    /// Expected value of the minimum of `n` i.i.d. draws (**Lemma 1**):
    /// `E[min(T_1, …, T_n)] = t_min·n·β / (n·β − 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `n == 0`, or
    /// [`ChronosError::InconsistentParameters`] if `n·β ≤ 1` so the
    /// expectation does not exist.
    pub fn expected_min_of(&self, n: u32) -> Result<f64, ChronosError> {
        if n == 0 {
            return Err(ChronosError::invalid("n", 0.0, "a positive count"));
        }
        let nb = f64::from(n) * self.beta;
        if nb <= 1.0 {
            return Err(ChronosError::inconsistent(format!(
                "n*beta = {nb} <= 1, the minimum has infinite mean"
            )));
        }
        Ok(self.t_min * nb / (nb - 1.0))
    }

    /// Distribution of the minimum of `n` i.i.d. draws, which is again Pareto
    /// with the same scale and tail index `n·β`.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `n == 0`.
    pub fn min_of(&self, n: u32) -> Result<Pareto, ChronosError> {
        if n == 0 {
            return Err(ChronosError::invalid("n", 0.0, "a positive count"));
        }
        Pareto::new(self.t_min, self.beta * f64::from(n))
    }

    /// The conditional distribution of `T` given `T > threshold`
    /// (**Lemma 3**): for a Pareto variable this is again Pareto with scale
    /// `max(threshold, t_min)` and the same tail index.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `threshold` is not
    /// finite.
    pub fn conditional_above(&self, threshold: f64) -> Result<Pareto, ChronosError> {
        if !threshold.is_finite() {
            return Err(ChronosError::invalid(
                "threshold",
                threshold,
                "a finite value",
            ));
        }
        Pareto::new(threshold.max(self.t_min), self.beta)
    }

    /// Conditional mean `E[T | T ≤ bound]`, the machine time of an original
    /// attempt that meets its deadline (the `E(T_j | T_{j,1} ≤ D)` term of
    /// Theorems 4 and 6).
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] if `bound ≤ t_min`
    /// (the conditioning event has probability zero).
    pub fn conditional_mean_below(&self, bound: f64) -> Result<f64, ChronosError> {
        if bound <= self.t_min {
            return Err(ChronosError::inconsistent(format!(
                "conditional mean below {bound} undefined: bound must exceed t_min = {}",
                self.t_min
            )));
        }
        let b = self.beta;
        let t = self.t_min;
        if (b - 1.0).abs() < 1e-12 {
            // β = 1: E[T | T ≤ D] = t_min·D·ln(D/t_min) / (D − t_min).
            return Ok(t * bound * (bound / t).ln() / (bound - t));
        }
        // Paper form: t_min·D·β·(t_min^(β−1) − D^(β−1)) / ((1−β)·(D^β − t_min^β)).
        let numerator = t * bound * b * (t.powf(b - 1.0) - bound.powf(b - 1.0));
        let denominator = (1.0 - b) * (bound.powf(b) - t.powf(b));
        Ok(numerator / denominator)
    }

    /// Conditional mean `E[T | T > bound]`.
    ///
    /// For a Pareto distribution this is `bound·β/(β−1)` when `bound ≥ t_min`.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] if `β ≤ 1` (the
    /// conditional mean is infinite).
    pub fn conditional_mean_above(&self, bound: f64) -> Result<f64, ChronosError> {
        if self.beta <= 1.0 {
            return Err(ChronosError::inconsistent(
                "conditional mean above a threshold is infinite for beta <= 1",
            ));
        }
        let effective = bound.max(self.t_min);
        Ok(effective * self.beta / (self.beta - 1.0))
    }

    /// Draws one sample by inverse-CDF transform using the supplied RNG.
    ///
    /// Sampling through the quantile function keeps the simulator
    /// reproducible under a seeded RNG, which matters for the trace-driven
    /// experiments.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.t_min / (1.0 - u).powf(1.0 / self.beta)
    }

    /// Draws `n` samples into a freshly allocated vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl Default for Pareto {
    /// The default model used across the evaluation section: `t_min = 20 s`
    /// and `β = 1.5` (the paper observes `β < 2` on its testbed).
    fn default() -> Self {
        Pareto {
            t_min: 20.0,
            beta: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> Pareto {
        Pareto::new(10.0, 1.5).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pareto::new(0.0, 1.5).is_err());
        assert!(Pareto::new(-3.0, 1.5).is_err());
        assert!(Pareto::new(10.0, 0.0).is_err());
        assert!(Pareto::new(10.0, -1.0).is_err());
        assert!(Pareto::new(f64::NAN, 1.5).is_err());
        assert!(Pareto::new(10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_zero_below_t_min() {
        let p = dist();
        assert_eq!(p.pdf(5.0), 0.0);
        assert!(p.pdf(10.0) > 0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let p = dist();
        let mass =
            crate::numeric::integrate_tail(|t| p.pdf(t), p.t_min(), p.beta() + 1.0, 1e-12).unwrap();
        assert!((mass - 1.0).abs() < 1e-6, "got {mass}");
    }

    #[test]
    fn cdf_survival_complementary() {
        let p = dist();
        for t in [10.0, 12.5, 20.0, 100.0, 1e6] {
            assert!((p.cdf(t) + p.survival(t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_at_and_below_scale() {
        let p = dist();
        assert_eq!(p.cdf(10.0), 0.0);
        assert_eq!(p.cdf(3.0), 0.0);
        assert_eq!(p.survival(3.0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = dist();
        for prob in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let t = p.quantile(prob).unwrap();
            assert!((p.cdf(t) - prob).abs() < 1e-9, "prob {prob}");
        }
        assert!(p.quantile(1.0).is_err());
        assert!(p.quantile(-0.1).is_err());
    }

    #[test]
    fn mean_matches_paper_form() {
        let p = dist();
        // t_min + t_min/(β−1) = 10 + 20 = 30 = t_min·β/(β−1).
        assert!((p.mean().unwrap() - 30.0).abs() < 1e-12);
        let heavy = Pareto::new(10.0, 0.9).unwrap();
        assert!(heavy.mean().is_none());
    }

    #[test]
    fn variance_only_for_beta_above_two() {
        assert!(dist().variance().is_none());
        let light = Pareto::new(10.0, 3.0).unwrap();
        let v = light.variance().unwrap();
        assert!((v - 10.0 * 10.0 * 3.0 / (4.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn median_formula() {
        let p = dist();
        assert!((p.cdf(p.median()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lemma1_expected_minimum() {
        let p = dist();
        // n = 3: E[min] = t_min·3β/(3β−1) = 10·4.5/3.5
        let e = p.expected_min_of(3).unwrap();
        assert!((e - 10.0 * 4.5 / 3.5).abs() < 1e-12);
        // n = 1 recovers the plain mean.
        assert!((p.expected_min_of(1).unwrap() - p.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn lemma1_rejects_undefined_cases() {
        let p = Pareto::new(10.0, 0.5).unwrap();
        assert!(p.expected_min_of(1).is_err());
        assert!(p.expected_min_of(2).is_err());
        assert!(p.expected_min_of(3).is_ok());
        assert!(dist().expected_min_of(0).is_err());
    }

    #[test]
    fn min_of_matches_survival_product() {
        let p = dist();
        let m = p.min_of(4).unwrap();
        for t in [11.0, 20.0, 50.0] {
            assert!((m.survival(t) - p.survival(t).powi(4)).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma3_conditional_above() {
        let p = dist();
        let c = p.conditional_above(25.0).unwrap();
        assert_eq!(c.t_min(), 25.0);
        assert_eq!(c.beta(), p.beta());
        // Conditioning below the scale leaves the distribution unchanged.
        let same = p.conditional_above(5.0).unwrap();
        assert_eq!(same, p);
    }

    #[test]
    fn conditional_mean_below_against_quadrature() {
        let p = dist();
        let bound = 40.0;
        let closed = p.conditional_mean_below(bound).unwrap();
        let numer =
            crate::numeric::integrate_adaptive(|t| t * p.pdf(t), p.t_min(), bound, 1e-12).unwrap();
        let numeric = numer / p.cdf(bound);
        assert!((closed - numeric).abs() < 1e-6, "{closed} vs {numeric}");
    }

    #[test]
    fn conditional_mean_below_beta_one() {
        let p = Pareto::new(10.0, 1.0).unwrap();
        let bound = 50.0;
        let closed = p.conditional_mean_below(bound).unwrap();
        let numer =
            crate::numeric::integrate_adaptive(|t| t * p.pdf(t), p.t_min(), bound, 1e-12).unwrap();
        let numeric = numer / p.cdf(bound);
        assert!((closed - numeric).abs() < 1e-6, "{closed} vs {numeric}");
    }

    #[test]
    fn conditional_mean_below_rejects_small_bound() {
        assert!(dist().conditional_mean_below(10.0).is_err());
        assert!(dist().conditional_mean_below(2.0).is_err());
    }

    #[test]
    fn conditional_mean_above_scaling() {
        let p = dist();
        let m = p.conditional_mean_above(100.0).unwrap();
        assert!((m - 100.0 * 1.5 / 0.5).abs() < 1e-9);
        // Below t_min the condition is vacuous and we recover the mean.
        assert!((p.conditional_mean_above(0.0).unwrap() - p.mean().unwrap()).abs() < 1e-12);
        let heavy = Pareto::new(10.0, 1.0).unwrap();
        assert!(heavy.conditional_mean_above(20.0).is_err());
    }

    #[test]
    fn samples_respect_support_and_mean() {
        let p = dist();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = p.sample_n(&mut rng, 200_000);
        assert!(samples.iter().all(|&s| s >= p.t_min()));
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        // β = 1.5 has a heavy tail, allow a loose tolerance on the sample mean.
        assert!((mean - 30.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn sample_empirical_cdf_matches() {
        let p = dist();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = p.sample_n(&mut rng, 100_000);
        for t in [12.0, 20.0, 40.0] {
            let empirical =
                samples.iter().filter(|&&s| s <= t).count() as f64 / samples.len() as f64;
            assert!(
                (empirical - p.cdf(t)).abs() < 0.01,
                "t = {t}: {empirical} vs {}",
                p.cdf(t)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let p = dist();
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(p.sample_n(&mut a, 32), p.sample_n(&mut b, 32));
    }

    #[test]
    fn default_matches_evaluation_setup() {
        let d = Pareto::default();
        assert_eq!(d.t_min(), 20.0);
        assert_eq!(d.beta(), 1.5);
    }
}
