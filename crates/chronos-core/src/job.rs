//! Job-level model parameters: number of tasks, task-time distribution and
//! the application deadline (Section III, "Background and System Model").

use crate::error::ChronosError;
use crate::pareto::Pareto;
use serde::{Deserialize, Serialize};

/// The analytical profile of a MapReduce job.
///
/// A job consists of `N` parallel tasks whose attempt execution times are
/// i.i.d. `Pareto(t_min, β)`, and it must complete every task before its
/// deadline `D` to meet its SLA. `price` is the per-unit-time cost `C` of a
/// virtual machine running one attempt.
///
/// Use [`JobProfile::builder`] to construct values; the builder validates
/// the mutual constraints (for example `D > t_min`).
///
/// # Examples
///
/// ```
/// use chronos_core::job::JobProfile;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// let job = JobProfile::builder()
///     .tasks(10)
///     .t_min(20.0)
///     .beta(1.5)
///     .deadline(100.0)
///     .price(0.05)
///     .build()?;
/// assert_eq!(job.tasks(), 10);
/// assert!((job.deadline() - 100.0).abs() < f64::EPSILON);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    tasks: u32,
    task_time: Pareto,
    deadline: f64,
    price: f64,
}

impl JobProfile {
    /// Starts building a job profile.
    #[must_use]
    pub fn builder() -> JobProfileBuilder {
        JobProfileBuilder::new()
    }

    /// Number of parallel tasks `N`.
    #[must_use]
    pub fn tasks(&self) -> u32 {
        self.tasks
    }

    /// The per-attempt execution time distribution.
    #[must_use]
    pub fn task_time(&self) -> Pareto {
        self.task_time
    }

    /// Minimum task execution time `t_min`.
    #[must_use]
    pub fn t_min(&self) -> f64 {
        self.task_time.t_min()
    }

    /// Pareto tail index `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.task_time.beta()
    }

    /// The job deadline `D` (relative to job start, seconds).
    #[must_use]
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Per-unit-time VM price `C`.
    #[must_use]
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Returns a copy of this profile with a different deadline.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] if the new deadline
    /// does not exceed `t_min`.
    pub fn with_deadline(&self, deadline: f64) -> Result<Self, ChronosError> {
        JobProfile::builder()
            .tasks(self.tasks)
            .t_min(self.t_min())
            .beta(self.beta())
            .deadline(deadline)
            .price(self.price)
            .build()
    }

    /// Returns a copy of this profile with a different tail index.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `beta` is not a finite
    /// positive value.
    pub fn with_beta(&self, beta: f64) -> Result<Self, ChronosError> {
        JobProfile::builder()
            .tasks(self.tasks)
            .t_min(self.t_min())
            .beta(beta)
            .deadline(self.deadline)
            .price(self.price)
            .build()
    }

    /// Expected execution time of a single attempt, when it exists (`β > 1`).
    #[must_use]
    pub fn mean_task_time(&self) -> Option<f64> {
        self.task_time.mean()
    }

    /// The ratio `D / E[T]` of deadline to mean task time; a convenient
    /// "deadline sensitivity" indicator used across the evaluation.
    #[must_use]
    pub fn deadline_slack(&self) -> Option<f64> {
        self.mean_task_time().map(|m| self.deadline / m)
    }
}

/// Builder for [`JobProfile`].
#[derive(Debug, Clone)]
pub struct JobProfileBuilder {
    tasks: u32,
    t_min: f64,
    beta: f64,
    deadline: f64,
    price: f64,
}

impl Default for JobProfileBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl JobProfileBuilder {
    /// Creates a builder pre-populated with the paper's testbed defaults:
    /// 10 tasks, `t_min = 20 s`, `β = 1.5`, `D = 100 s`, `C = 1`.
    #[must_use]
    pub fn new() -> Self {
        JobProfileBuilder {
            tasks: 10,
            t_min: 20.0,
            beta: 1.5,
            deadline: 100.0,
            price: 1.0,
        }
    }

    /// Sets the number of parallel tasks `N`.
    #[must_use]
    pub fn tasks(mut self, tasks: u32) -> Self {
        self.tasks = tasks;
        self
    }

    /// Sets the minimum task execution time `t_min` (seconds).
    #[must_use]
    pub fn t_min(mut self, t_min: f64) -> Self {
        self.t_min = t_min;
        self
    }

    /// Sets the Pareto tail index `β`.
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the job deadline `D` (seconds from job start).
    #[must_use]
    pub fn deadline(mut self, deadline: f64) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the per-unit-time VM price `C`.
    #[must_use]
    pub fn price(mut self, price: f64) -> Self {
        self.price = price;
        self
    }

    /// Validates the parameters and produces the [`JobProfile`].
    ///
    /// # Errors
    ///
    /// * [`ChronosError::InvalidParameter`] for out-of-domain individual
    ///   values (`tasks == 0`, non-positive `t_min`/`beta`/`price`, …).
    /// * [`ChronosError::InconsistentParameters`] when `deadline ≤ t_min`:
    ///   no attempt can ever meet such a deadline and every PoCD formula
    ///   degenerates.
    pub fn build(self) -> Result<JobProfile, ChronosError> {
        if self.tasks == 0 {
            return Err(ChronosError::invalid("tasks", 0.0, "at least one task"));
        }
        let task_time = Pareto::new(self.t_min, self.beta)?;
        if !(self.deadline.is_finite() && self.deadline > 0.0) {
            return Err(ChronosError::invalid(
                "deadline",
                self.deadline,
                "a finite value > 0",
            ));
        }
        if self.deadline <= self.t_min {
            return Err(ChronosError::inconsistent(format!(
                "deadline {} must exceed the minimum task time {}",
                self.deadline, self.t_min
            )));
        }
        if !(self.price.is_finite() && self.price >= 0.0) {
            return Err(ChronosError::invalid(
                "price",
                self.price,
                "a finite value >= 0",
            ));
        }
        Ok(JobProfile {
            tasks: self.tasks,
            task_time,
            deadline: self.deadline,
            price: self.price,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_testbed() {
        let job = JobProfile::builder().build().unwrap();
        assert_eq!(job.tasks(), 10);
        assert_eq!(job.t_min(), 20.0);
        assert_eq!(job.beta(), 1.5);
        assert_eq!(job.deadline(), 100.0);
        assert_eq!(job.price(), 1.0);
    }

    #[test]
    fn builder_rejects_zero_tasks() {
        assert!(JobProfile::builder().tasks(0).build().is_err());
    }

    #[test]
    fn builder_rejects_deadline_below_t_min() {
        let err = JobProfile::builder()
            .t_min(50.0)
            .deadline(40.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ChronosError::InconsistentParameters { .. }));
    }

    #[test]
    fn builder_rejects_bad_price_and_deadline() {
        assert!(JobProfile::builder().price(-1.0).build().is_err());
        assert!(JobProfile::builder().deadline(f64::NAN).build().is_err());
        assert!(JobProfile::builder().deadline(-5.0).build().is_err());
    }

    #[test]
    fn with_deadline_revalidates() {
        let job = JobProfile::builder().build().unwrap();
        assert!(job.with_deadline(150.0).is_ok());
        assert!(job.with_deadline(10.0).is_err());
    }

    #[test]
    fn with_beta_revalidates() {
        let job = JobProfile::builder().build().unwrap();
        let heavy = job.with_beta(1.1).unwrap();
        assert_eq!(heavy.beta(), 1.1);
        assert!(job.with_beta(-1.0).is_err());
    }

    #[test]
    fn deadline_slack() {
        let job = JobProfile::builder()
            .t_min(20.0)
            .beta(2.0)
            .deadline(80.0)
            .build()
            .unwrap();
        // mean = 40, slack = 2
        assert!((job.deadline_slack().unwrap() - 2.0).abs() < 1e-12);
        let heavy = JobProfile::builder()
            .beta(0.9)
            .deadline(100.0)
            .build()
            .unwrap();
        assert!(heavy.deadline_slack().is_none());
    }

    #[test]
    fn rebuild_from_accessors_round_trips() {
        let job = JobProfile::builder().tasks(25).price(0.07).build().unwrap();
        let rebuilt = JobProfile::builder()
            .tasks(job.tasks())
            .t_min(job.t_min())
            .beta(job.beta())
            .deadline(job.deadline())
            .price(job.price())
            .build()
            .unwrap();
        assert_eq!(job, rebuilt);
    }
}
