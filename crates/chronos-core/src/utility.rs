//! The joint PoCD / cost objective of Section V.
//!
//! For a chosen strategy and `r` extra attempts the net utility is
//!
//! ```text
//! U(r) = f(R(r) − R_min) − θ·C·E[T(r)]
//! ```
//!
//! where `f` is an increasing concave function (the paper, and this crate,
//! use the base-10 logarithm `lg`, which is proportionally fair), `R_min` is
//! the minimum acceptable PoCD, `θ ≥ 0` trades PoCD against cost, `C` is the
//! per-unit-time VM price and `E[T(r)]` the expected machine time of
//! Theorems 2/4/6. Whenever `R(r) ≤ R_min` the utility is `−∞`.

use crate::cost::CostModel;
use crate::error::ChronosError;
use crate::job::JobProfile;
use crate::pocd::PocdModel;
use crate::strategy::StrategyParams;
use serde::{Deserialize, Serialize};

/// Configuration of the net-utility objective: the tradeoff factor `θ` and
/// the PoCD floor `R_min`.
///
/// # Examples
///
/// ```
/// use chronos_core::prelude::*;
///
/// # fn main() -> Result<(), ChronosError> {
/// let job = JobProfile::builder().build()?;
/// let params = StrategyParams::clone_strategy(80.0);
/// let objective = UtilityModel::new(1e-4, 0.0)?;
/// let net = objective.for_job(&job, &params)?;
/// assert!(net.utility(1)? > f64::NEG_INFINITY);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityModel {
    theta: f64,
    r_min: f64,
}

impl UtilityModel {
    /// Creates an objective configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] if `theta` is negative or
    /// not finite, or if `r_min` is not a probability in `[0, 1)`.
    pub fn new(theta: f64, r_min: f64) -> Result<Self, ChronosError> {
        if !(theta.is_finite() && theta >= 0.0) {
            return Err(ChronosError::invalid("theta", theta, "a finite value >= 0"));
        }
        if !(0.0..1.0).contains(&r_min) {
            return Err(ChronosError::invalid(
                "r_min",
                r_min,
                "a probability in [0, 1)",
            ));
        }
        Ok(UtilityModel { theta, r_min })
    }

    /// The PoCD-vs-cost tradeoff factor `θ`.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The PoCD floor `R_min` below which utility is `−∞`.
    #[must_use]
    pub fn r_min(&self) -> f64 {
        self.r_min
    }

    /// Returns a copy with a different tradeoff factor.
    ///
    /// # Errors
    ///
    /// Same domain checks as [`UtilityModel::new`].
    pub fn with_theta(&self, theta: f64) -> Result<Self, ChronosError> {
        UtilityModel::new(theta, self.r_min)
    }

    /// Returns a copy with a different PoCD floor.
    ///
    /// # Errors
    ///
    /// Same domain checks as [`UtilityModel::new`].
    pub fn with_r_min(&self, r_min: f64) -> Result<Self, ChronosError> {
        UtilityModel::new(self.theta, r_min)
    }

    /// Binds the objective to a concrete job and strategy, producing an
    /// evaluable [`NetUtility`].
    ///
    /// # Errors
    ///
    /// Propagates the strategy/job compatibility checks of
    /// [`PocdModel::new`] and [`CostModel::new`].
    pub fn for_job(
        &self,
        job: &JobProfile,
        params: &StrategyParams,
    ) -> Result<NetUtility, ChronosError> {
        let pocd = PocdModel::new(*job, *params)?;
        let cost = CostModel::new(*job, *params)?;
        Ok(NetUtility {
            pocd,
            cost,
            objective: *self,
        })
    }
}

impl Default for UtilityModel {
    /// The paper's testbed configuration: `θ = 1e-4` and `R_min = 0`
    /// (callers typically replace `R_min` with the Hadoop-NS PoCD).
    fn default() -> Self {
        UtilityModel {
            theta: 1e-4,
            r_min: 0.0,
        }
    }
}

/// The net-utility objective bound to one job and one strategy, ready to be
/// evaluated or optimized over `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetUtility {
    pocd: PocdModel,
    cost: CostModel,
    objective: UtilityModel,
}

impl NetUtility {
    /// The PoCD closed-form model.
    #[must_use]
    pub fn pocd_model(&self) -> &PocdModel {
        &self.pocd
    }

    /// The machine-time closed-form model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The objective configuration (θ, R_min).
    #[must_use]
    pub fn objective(&self) -> &UtilityModel {
        &self.objective
    }

    /// Net utility at an integer `r`.
    ///
    /// Returns `f64::NEG_INFINITY` (not an error) when `R(r) ≤ R_min`, which
    /// matches the paper's convention that the utility of a configuration
    /// violating the PoCD floor is unboundedly bad.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures (infinite expectations, quadrature).
    pub fn utility(&self, r: u32) -> Result<f64, ChronosError> {
        self.utility_continuous(f64::from(r))
    }

    /// Net utility on the continuous relaxation of `r`, used by the
    /// line-search phase of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures (infinite expectations, quadrature).
    pub fn utility_continuous(&self, r: f64) -> Result<f64, ChronosError> {
        let pocd = self.pocd.pocd_continuous(r);
        let margin = pocd - self.objective.r_min;
        if margin <= 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        let machine_time = self.cost.expected_job_machine_time(r)?;
        let price = self.pocd.job().price();
        Ok(margin.log10() - self.objective.theta * price * machine_time)
    }

    /// PoCD at an integer `r` (Theorems 1/3/5).
    ///
    /// # Errors
    ///
    /// Never fails for models built through [`UtilityModel::for_job`].
    pub fn pocd(&self, r: u32) -> Result<f64, ChronosError> {
        self.pocd.pocd(r)
    }

    /// Expected job machine time at an integer `r` (Theorems 2/4/6).
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures.
    pub fn machine_time(&self, r: u32) -> Result<f64, ChronosError> {
        self.cost.expected_job_machine_time(f64::from(r))
    }

    /// Expected dollar cost (`C · E[T]`) at an integer `r`.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures.
    pub fn dollar_cost(&self, r: u32) -> Result<f64, ChronosError> {
        self.cost.expected_cost(f64::from(r))
    }

    /// The concavity threshold `Γ_strategy` of Theorem 8 for this objective.
    /// `None` when speculation cannot reduce the failure probability.
    #[must_use]
    pub fn concavity_threshold(&self) -> Option<f64> {
        self.pocd.concavity_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    fn job() -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .price(1.0)
            .build()
            .unwrap()
    }

    fn net(theta: f64, r_min: f64, params: StrategyParams) -> NetUtility {
        UtilityModel::new(theta, r_min)
            .unwrap()
            .for_job(&job(), &params)
            .unwrap()
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(UtilityModel::new(-1.0, 0.0).is_err());
        assert!(UtilityModel::new(f64::NAN, 0.0).is_err());
        assert!(UtilityModel::new(0.1, 1.0).is_err());
        assert!(UtilityModel::new(0.1, -0.2).is_err());
    }

    #[test]
    fn default_matches_paper_theta() {
        let m = UtilityModel::default();
        assert_eq!(m.theta(), 1e-4);
        assert_eq!(m.r_min(), 0.0);
    }

    #[test]
    fn with_setters() {
        let m = UtilityModel::default();
        assert_eq!(m.with_theta(1e-3).unwrap().theta(), 1e-3);
        assert_eq!(m.with_r_min(0.5).unwrap().r_min(), 0.5);
        assert!(m.with_theta(-2.0).is_err());
    }

    #[test]
    fn utility_is_log_margin_minus_weighted_cost() {
        let params = StrategyParams::clone_strategy(80.0);
        let n = net(1e-4, 0.0, params);
        let r = 2;
        let expected = n.pocd(r).unwrap().log10() - 1e-4 * n.machine_time(r).unwrap();
        assert!((n.utility(r).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn utility_negative_infinity_below_floor() {
        let params = StrategyParams::clone_strategy(80.0);
        // Floor above anything achievable at r = 0 but not at larger r.
        let n = net(1e-4, 0.60, params);
        let u0 = n.utility(0).unwrap();
        let base = n.pocd(0).unwrap();
        assert!(base < 0.60, "baseline PoCD {base}");
        assert_eq!(u0, f64::NEG_INFINITY);
        assert!(n.utility(3).unwrap() > f64::NEG_INFINITY);
    }

    #[test]
    fn larger_theta_penalizes_cost_more() {
        let params = StrategyParams::clone_strategy(80.0);
        let cheap = net(1e-5, 0.0, params);
        let costly = net(1e-3, 0.0, params);
        for r in 0..5 {
            assert!(cheap.utility(r).unwrap() > costly.utility(r).unwrap());
        }
    }

    #[test]
    fn continuous_matches_integer_grid() {
        let params = StrategyParams::resume(40.0, 80.0, 0.3).unwrap();
        let n = net(1e-4, 0.0, params);
        for r in 0..5 {
            assert!(
                (n.utility(r).unwrap() - n.utility_continuous(f64::from(r)).unwrap()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn theorem8_concavity_on_the_tail() {
        // On integers above ⌈Γ⌉ the discrete second difference of U must be
        // non-positive for every strategy.
        for params in [
            StrategyParams::clone_strategy(80.0),
            StrategyParams::restart(40.0, 80.0).unwrap(),
            StrategyParams::resume(40.0, 80.0, 0.3).unwrap(),
        ] {
            let n = net(1e-4, 0.0, params);
            let start = n
                .pocd_model()
                .concave_from()
                .expect("finite threshold for these parameters");
            let us: Vec<f64> = (start..start + 8).map(|r| n.utility(r).unwrap()).collect();
            for w in us.windows(3) {
                let second_diff = w[2] - 2.0 * w[1] + w[0];
                assert!(
                    second_diff <= 1e-9,
                    "{:?}: second difference {second_diff} at window {w:?}",
                    params.kind()
                );
            }
        }
    }

    #[test]
    fn utility_eventually_decreases_in_r() {
        // The cost term grows linearly in r while the PoCD term is bounded,
        // so utility must eventually decrease; this bounds the optimizer's
        // search.
        for params in [
            StrategyParams::clone_strategy(80.0),
            StrategyParams::restart(40.0, 80.0).unwrap(),
            StrategyParams::resume(40.0, 80.0, 0.3).unwrap(),
        ] {
            let n = net(1e-4, 0.0, params);
            assert!(n.utility(40).unwrap() < n.utility(2).unwrap());
        }
    }

    #[test]
    fn accessors_expose_models() {
        let params = StrategyParams::restart(40.0, 80.0).unwrap();
        let n = net(1e-4, 0.0, params);
        assert_eq!(
            n.pocd_model().params().kind(),
            StrategyKind::SpeculativeRestart
        );
        assert_eq!(
            n.cost_model().params().kind(),
            StrategyKind::SpeculativeRestart
        );
        assert_eq!(n.objective().theta(), 1e-4);
        assert!(n.dollar_cost(1).unwrap() > 0.0);
        assert!(n.concavity_threshold().is_some());
    }
}
