//! Convenience re-exports of the types most applications need.
//!
//! ```
//! use chronos_core::prelude::*;
//!
//! # fn main() -> Result<(), ChronosError> {
//! let job = JobProfile::builder().deadline(120.0).build()?;
//! let outcome = Optimizer::new(UtilityModel::default())
//!     .optimize(&job, &StrategyParams::clone_strategy(60.0))?;
//! assert!(outcome.pocd > 0.0);
//! # Ok(())
//! # }
//! ```

pub use crate::cost::CostModel;
pub use crate::error::ChronosError;
pub use crate::frontier::{Frontier, FrontierPoint};
pub use crate::job::{JobProfile, JobProfileBuilder};
pub use crate::optimizer::{OptimizationOutcome, Optimizer, OptimizerConfig, SearchMethod};
pub use crate::pareto::Pareto;
pub use crate::pocd::{compare_pocd, Dominance, PocdModel};
pub use crate::strategy::{StrategyKind, StrategyParams};
pub use crate::utility::{NetUtility, UtilityModel};
