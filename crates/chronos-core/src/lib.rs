//! # chronos-core
//!
//! Analytical heart of the Chronos reproduction: the Probability of
//! Completion before Deadline (PoCD) closed forms, expected machine-time
//! (cost) models, the net-utility objective and the hybrid optimizer that
//! selects the number of speculative attempts `r` for each job.
//!
//! The crate mirrors Sections III–V of *"Chronos: A Unifying Optimization
//! Framework for Speculative Execution of Deadline-critical MapReduce Jobs"*
//! (ICDCS 2018):
//!
//! * [`pareto`] — the Pareto task execution-time model, order statistics
//!   (Lemma 1) and conditional forms (Lemma 3),
//! * [`pocd`] — Theorems 1, 3, 5 and the dominance relations of Theorem 7,
//! * [`cost`] — Theorems 2, 4, 6,
//! * [`utility`] — the net-utility objective and the concavity thresholds of
//!   Theorem 8,
//! * [`optimizer`] — Algorithm 1 (hybrid line search + exhaustive head),
//! * [`frontier`] — the PoCD/cost tradeoff frontier used for SLA budgeting.
//!
//! # Quick example
//!
//! ```
//! use chronos_core::prelude::*;
//!
//! # fn main() -> Result<(), ChronosError> {
//! // A job of 10 tasks, minimum task time 20 s, tail index 1.5 and a 100 s
//! // deadline, priced at the default unit cost.
//! let job = JobProfile::builder()
//!     .tasks(10)
//!     .t_min(20.0)
//!     .beta(1.5)
//!     .deadline(100.0)
//!     .build()?;
//!
//! let strategy = StrategyParams::clone_strategy(40.0);
//! let objective = UtilityModel::new(0.0001, 0.0)?;
//! let outcome = Optimizer::new(objective).optimize(&job, &strategy)?;
//!
//! assert!(outcome.pocd > 0.9);
//! assert!(outcome.r <= 16);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod cost;
pub mod error;
pub mod frontier;
pub mod job;
pub mod numeric;
pub mod optimizer;
pub mod pareto;
pub mod pocd;
pub mod strategy;
pub mod utility;

pub mod prelude;

pub use cost::CostModel;
pub use error::ChronosError;
pub use frontier::{Frontier, FrontierPoint};
pub use job::{JobProfile, JobProfileBuilder};
pub use optimizer::{OptimizationOutcome, Optimizer, OptimizerConfig};
pub use pareto::Pareto;
pub use pocd::PocdModel;
pub use strategy::{StrategyKind, StrategyParams};
pub use utility::UtilityModel;
