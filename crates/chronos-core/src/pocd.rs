//! Probability of Completion before Deadline (PoCD) closed forms.
//!
//! Implements Theorems 1, 3 and 5 of the paper — the PoCD of the Clone,
//! Speculative-Restart and Speculative-Resume strategies under i.i.d.
//! Pareto attempt execution times — together with the dominance relations of
//! Theorem 7 and the concavity thresholds `Γ_strategy` that Theorem 8 uses.
//!
//! All three strategies share the same skeleton: a task misses the deadline
//! when every one of its attempts misses, so the per-task failure probability
//! is a product of per-attempt miss probabilities, and the job-level PoCD is
//! `R(r) = (1 − q(r))^N`.

use crate::error::ChronosError;
use crate::job::JobProfile;
use crate::numeric::clamp_probability;
use crate::strategy::{StrategyKind, StrategyParams};
use serde::{Deserialize, Serialize};

/// PoCD model for one job under one strategy parameterization.
///
/// # Examples
///
/// ```
/// use chronos_core::prelude::*;
///
/// # fn main() -> Result<(), ChronosError> {
/// let job = JobProfile::builder()
///     .tasks(10)
///     .t_min(20.0)
///     .beta(1.5)
///     .deadline(100.0)
///     .build()?;
/// let model = PocdModel::new(job, StrategyParams::clone_strategy(80.0))?;
///
/// // Theorem 1: R = [1 − (t_min/D)^(β(r+1))]^N
/// let r1 = model.pocd(1)?;
/// assert!(r1 > model.pocd(0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PocdModel {
    job: JobProfile,
    params: StrategyParams,
}

impl PocdModel {
    /// Builds a PoCD model, validating that the strategy timing is
    /// compatible with the job's deadline.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] when a reactive
    /// strategy's `τ_est` leaves less than `t_min` before the deadline, so
    /// speculative attempts could never finish in time.
    pub fn new(job: JobProfile, params: StrategyParams) -> Result<Self, ChronosError> {
        params.validate_against(job.deadline(), job.t_min())?;
        Ok(PocdModel { job, params })
    }

    /// The job profile this model describes.
    #[must_use]
    pub fn job(&self) -> &JobProfile {
        &self.job
    }

    /// The strategy parameters this model describes.
    #[must_use]
    pub fn params(&self) -> &StrategyParams {
        &self.params
    }

    /// Probability that a *single original attempt* misses the deadline,
    /// `P(T > D) = (t_min / D)^β` (Eq. 4 / Eq. 33 / Eq. 46).
    #[must_use]
    pub fn original_miss_probability(&self) -> f64 {
        self.job.task_time().survival(self.job.deadline())
    }

    /// Probability that a *single extra attempt* misses the deadline, given
    /// it was launched at `τ_est` (Eq. 34 / Eq. 47). For Clone the extra
    /// attempts start at time 0, so this equals
    /// [`original_miss_probability`](Self::original_miss_probability).
    #[must_use]
    pub fn extra_miss_probability(&self) -> f64 {
        let t_min = self.job.t_min();
        let beta = self.job.beta();
        let deadline = self.job.deadline();
        match self.params.kind() {
            StrategyKind::Clone => self.original_miss_probability(),
            StrategyKind::SpeculativeRestart => {
                let window = deadline - self.params.tau_est();
                clamp_probability((t_min / window).powf(beta))
            }
            StrategyKind::SpeculativeResume => {
                let window = deadline - self.params.tau_est();
                let remaining = self.params.remaining_fraction() * t_min;
                clamp_probability((remaining / window).powf(beta))
            }
        }
    }

    /// Per-task deadline-miss probability `q(r)` with `r` extra attempts,
    /// evaluated on the continuous relaxation of `r`.
    ///
    /// * Clone: `q = p^(r+1)` where `p = (t_min/D)^β` (Theorem 1),
    /// * S-Restart: `q = p · s^r` where `s = (t_min/(D−τ_est))^β` (Theorem 3),
    /// * S-Resume: `q = p · u^(r+1)` where
    ///   `u = ((1−ϕ_est)·t_min/(D−τ_est))^β` (Theorem 5).
    #[must_use]
    pub fn task_failure_probability_continuous(&self, r: f64) -> f64 {
        let r = r.max(0.0);
        let p = self.original_miss_probability();
        let value = match self.params.kind() {
            StrategyKind::Clone => p.powf(r + 1.0),
            StrategyKind::SpeculativeRestart => p * self.extra_miss_probability().powf(r),
            StrategyKind::SpeculativeResume => p * self.extra_miss_probability().powf(r + 1.0),
        };
        clamp_probability(value)
    }

    /// Per-task deadline-miss probability for an integer number of extra
    /// attempts.
    #[must_use]
    pub fn task_failure_probability(&self, r: u32) -> f64 {
        self.task_failure_probability_continuous(f64::from(r))
    }

    /// Job-level PoCD `R(r) = (1 − q(r))^N` on the continuous relaxation.
    #[must_use]
    pub fn pocd_continuous(&self, r: f64) -> f64 {
        let q = self.task_failure_probability_continuous(r);
        clamp_probability((1.0 - q).powf(f64::from(self.job.tasks())))
    }

    /// Job-level PoCD for an integer `r` (Theorems 1, 3 and 5).
    ///
    /// # Errors
    ///
    /// This function never fails for models constructed through
    /// [`PocdModel::new`]; the `Result` mirrors the other closed-form
    /// accessors so call sites can use `?` uniformly.
    pub fn pocd(&self, r: u32) -> Result<f64, ChronosError> {
        Ok(self.pocd_continuous(f64::from(r)))
    }

    /// PoCD of the no-speculation baseline (Hadoop-NS): a single attempt per
    /// task, i.e. `R = [1 − (t_min/D)^β]^N`.
    #[must_use]
    pub fn baseline_pocd(&self) -> f64 {
        let p = self.original_miss_probability();
        clamp_probability((1.0 - p).powf(f64::from(self.job.tasks())))
    }

    /// The concavity threshold `Γ_strategy` of Theorem 8 (Eqs. 27–29): the
    /// PoCD (and hence the log-utility term) is concave in `r` for
    /// `r > Γ_strategy`, which is exactly where the per-task failure
    /// probability drops below `1/N`.
    ///
    /// Returns `None` when extra attempts cannot reduce the per-task failure
    /// probability at all (the per-extra-attempt miss probability is ≥ 1,
    /// which only happens when the speculation window is shorter than the
    /// minimum remaining work).
    #[must_use]
    pub fn concavity_threshold(&self) -> Option<f64> {
        let n = f64::from(self.job.tasks());
        let p = self.original_miss_probability();
        if p <= 0.0 {
            // Deadline so loose that an original attempt never misses:
            // PoCD is identically 1 and trivially concave.
            return Some(0.0);
        }
        match self.params.kind() {
            StrategyKind::Clone => {
                // q = p^(r+1) < 1/N  ⟺  r > ln N / (−ln p) − 1
                Some(n.ln() / (-p.ln()) - 1.0)
            }
            StrategyKind::SpeculativeRestart => {
                let s = self.extra_miss_probability();
                if s >= 1.0 {
                    return None;
                }
                // q = p·s^r < 1/N  ⟺  r > (ln N + ln p) / (−ln s)
                Some((n.ln() + p.ln()) / (-s.ln()))
            }
            StrategyKind::SpeculativeResume => {
                let u = self.extra_miss_probability();
                if u >= 1.0 {
                    return None;
                }
                // q = p·u^(r+1) < 1/N  ⟺  r + 1 > (ln N + ln p) / (−ln u)
                Some((n.ln() + p.ln()) / (-u.ln()) - 1.0)
            }
        }
    }

    /// The smallest integer `r` at which the objective is guaranteed concave
    /// (`⌈Γ⌉`, floored at zero). `None` has the same meaning as in
    /// [`concavity_threshold`](Self::concavity_threshold).
    #[must_use]
    pub fn concave_from(&self) -> Option<u32> {
        self.concavity_threshold().map(|gamma| {
            if gamma <= 0.0 {
                0
            } else {
                // ⌈Γ⌉ as an integer, saturating for absurdly large thresholds.
                let ceil = gamma.ceil();
                if ceil >= f64::from(u32::MAX) {
                    u32::MAX
                } else {
                    ceil as u32
                }
            }
        })
    }

    /// Smallest `r` achieving at least the target PoCD, or `None` when no
    /// finite `r` can reach it (e.g. the extra-attempt miss probability is 1).
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] when `target` is not a
    /// probability.
    pub fn min_r_for_target(&self, target: f64) -> Result<Option<u32>, ChronosError> {
        if !(0.0..=1.0).contains(&target) {
            return Err(ChronosError::invalid(
                "target",
                target,
                "a probability in [0, 1]",
            ));
        }
        if self.pocd(0)? >= target {
            return Ok(Some(0));
        }
        // The required per-task success is target^(1/N); invert q(r) ≤ 1 − that.
        let n = f64::from(self.job.tasks());
        let q_needed = 1.0 - target.powf(1.0 / n);
        if q_needed <= 0.0 {
            // target = 1 exactly: only reachable if q can hit 0, which a
            // finite r never does for p > 0.
            return Ok(if self.original_miss_probability() == 0.0 {
                Some(0)
            } else {
                None
            });
        }
        let p = self.original_miss_probability();
        let decay = self.extra_miss_probability();
        let r_needed = match self.params.kind() {
            StrategyKind::Clone => {
                if p >= 1.0 {
                    return Ok(None);
                }
                q_needed.ln() / p.ln() - 1.0
            }
            StrategyKind::SpeculativeRestart => {
                if decay >= 1.0 {
                    return Ok(None);
                }
                (q_needed.ln() - p.ln()) / decay.ln()
            }
            StrategyKind::SpeculativeResume => {
                if decay >= 1.0 {
                    return Ok(None);
                }
                (q_needed.ln() - p.ln()) / decay.ln() - 1.0
            }
        };
        let r = r_needed.max(0.0).ceil();
        if r >= f64::from(u32::MAX) {
            return Ok(None);
        }
        // Guard against floating point edge effects by nudging upward if
        // the closed form rounds to a value that still falls short.
        let mut r = r as u32;
        while self.pocd(r)? < target && r < u32::MAX - 1 {
            r += 1;
            if r > 10_000 {
                return Ok(None);
            }
        }
        Ok(Some(r))
    }
}

/// Outcome of comparing two strategies' PoCD at the same `r` (Theorem 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dominance {
    /// The first strategy achieves strictly higher PoCD.
    FirstWins,
    /// The second strategy achieves strictly higher PoCD.
    SecondWins,
    /// Both achieve the same PoCD (up to floating-point equality).
    Tie,
}

/// Compares the PoCD of two models at the same number of extra attempts.
///
/// Theorem 7 states, for equal `r` and common timing parameters:
///
/// 1. Clone beats Speculative-Restart,
/// 2. Speculative-Resume beats Speculative-Restart,
/// 3. Clone beats Speculative-Resume iff `r` exceeds a threshold that depends
///    on `ϕ_est`, `t_min`, `D` and `τ_est` (see
///    [`clone_beats_resume_threshold`]).
///
/// # Errors
///
/// Propagates failures from the underlying PoCD evaluation (none for models
/// built through [`PocdModel::new`]).
pub fn compare_pocd(a: &PocdModel, b: &PocdModel, r: u32) -> Result<Dominance, ChronosError> {
    let ra = a.pocd(r)?;
    let rb = b.pocd(r)?;
    let diff = ra - rb;
    if diff.abs() <= 1e-15 {
        Ok(Dominance::Tie)
    } else if diff > 0.0 {
        Ok(Dominance::FirstWins)
    } else {
        Ok(Dominance::SecondWins)
    }
}

/// The Theorem 7(3) threshold: Clone's PoCD exceeds Speculative-Resume's
/// exactly when `r` is larger than the returned value.
///
/// Derived from Eq. (59): with `D̄ = D − τ_est` and `ϕ̄ = 1 − ϕ_est`,
/// Clone wins iff `D̄^(β(r+1)) < ϕ̄^(β(r+1)) · D^(βr) · t_min^β`, i.e.
/// `r > (ln(ϕ̄·t_min) − ln D̄) / (ln D̄ − ln(ϕ̄·D))` whenever the original
/// attempt misses the deadline (which implies `D̄ < ϕ̄·D`).
///
/// The paper's Theorem 7 statement carries an extra factor `β`; the version
/// here follows the appendix derivation (Eq. 59–60), which cancels `β`. The
/// function is exercised against direct PoCD comparison in the test suite.
///
/// # Errors
///
/// Returns [`ChronosError::InconsistentParameters`] when `D̄ ≥ ϕ̄·D`, i.e.
/// the premise "the original attempt misses the deadline at τ_est" cannot
/// hold and the threshold is undefined.
pub fn clone_beats_resume_threshold(
    job: &JobProfile,
    resume_params: &StrategyParams,
) -> Result<f64, ChronosError> {
    let d = job.deadline();
    let d_bar = d - resume_params.tau_est();
    let phi_bar = resume_params.remaining_fraction();
    if d_bar >= phi_bar * d {
        return Err(ChronosError::inconsistent(format!(
            "threshold undefined: D - tau_est = {d_bar} is not smaller than (1 - phi_est)*D = {}",
            phi_bar * d
        )));
    }
    let numerator = (phi_bar * job.t_min()).ln() - d_bar.ln();
    let denominator = d_bar.ln() - (phi_bar * d).ln();
    Ok(numerator / denominator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;

    fn job() -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .build()
            .unwrap()
    }

    fn clone_model() -> PocdModel {
        PocdModel::new(job(), StrategyParams::clone_strategy(80.0)).unwrap()
    }

    fn restart_model() -> PocdModel {
        PocdModel::new(job(), StrategyParams::restart(40.0, 80.0).unwrap()).unwrap()
    }

    fn resume_model(phi: f64) -> PocdModel {
        PocdModel::new(job(), StrategyParams::resume(40.0, 80.0, phi).unwrap()).unwrap()
    }

    #[test]
    fn theorem1_clone_closed_form() {
        let m = clone_model();
        let p = (20.0_f64 / 100.0).powf(1.5);
        for r in 0..5 {
            let expected = (1.0 - p.powi(r as i32 + 1)).powi(10);
            assert!(
                approx_eq(m.pocd(r).unwrap(), expected, 1e-12, 1e-12),
                "r = {r}"
            );
        }
    }

    #[test]
    fn theorem3_restart_closed_form() {
        let m = restart_model();
        let t_min = 20.0_f64;
        let beta = 1.5;
        let d = 100.0_f64;
        let tau_est = 40.0;
        for r in 0..5 {
            let rf = f64::from(r);
            let q = t_min.powf(beta * (rf + 1.0)) / (d.powf(beta) * (d - tau_est).powf(beta * rf));
            let expected = (1.0 - q).powi(10);
            assert!(
                approx_eq(m.pocd(r).unwrap(), expected, 1e-12, 1e-12),
                "r = {r}"
            );
        }
    }

    #[test]
    fn theorem5_resume_closed_form() {
        let phi = 0.4;
        let m = resume_model(phi);
        let t_min = 20.0_f64;
        let beta = 1.5;
        let d = 100.0_f64;
        let tau_est = 40.0;
        for r in 0..5 {
            let rf = f64::from(r);
            let q = (1.0 - phi).powf(beta * (rf + 1.0)) * t_min.powf(beta * (rf + 2.0))
                / (d.powf(beta) * (d - tau_est).powf(beta * (rf + 1.0)));
            let expected = (1.0 - q).powi(10);
            assert!(
                approx_eq(m.pocd(r).unwrap(), expected, 1e-12, 1e-12),
                "r = {r}"
            );
        }
    }

    #[test]
    fn pocd_monotone_in_r() {
        for m in [clone_model(), restart_model(), resume_model(0.3)] {
            let mut prev = m.pocd(0).unwrap();
            for r in 1..8 {
                let cur = m.pocd(r).unwrap();
                assert!(cur >= prev, "strategy {:?} r {r}", m.params().kind());
                prev = cur;
            }
        }
    }

    #[test]
    fn pocd_increases_with_deadline() {
        let tight = PocdModel::new(
            job().with_deadline(60.0).unwrap(),
            StrategyParams::clone_strategy(40.0),
        )
        .unwrap();
        let loose = PocdModel::new(
            job().with_deadline(200.0).unwrap(),
            StrategyParams::clone_strategy(40.0),
        )
        .unwrap();
        for r in 0..4 {
            assert!(loose.pocd(r).unwrap() > tight.pocd(r).unwrap());
        }
    }

    #[test]
    fn baseline_matches_r_zero_clone() {
        let m = clone_model();
        assert!(approx_eq(
            m.baseline_pocd(),
            m.pocd(0).unwrap(),
            1e-15,
            1e-15
        ));
    }

    #[test]
    fn restart_r_zero_equals_baseline() {
        // With no extra attempts S-Restart degenerates to no speculation.
        let m = restart_model();
        assert!(approx_eq(
            m.pocd(0).unwrap(),
            m.baseline_pocd(),
            1e-15,
            1e-15
        ));
    }

    #[test]
    fn theorem7_clone_beats_restart() {
        let c = clone_model();
        let s = restart_model();
        for r in 1..6 {
            assert_eq!(compare_pocd(&c, &s, r).unwrap(), Dominance::FirstWins);
        }
        // r = 0: both degenerate to the baseline.
        assert_eq!(compare_pocd(&c, &s, 0).unwrap(), Dominance::Tie);
    }

    #[test]
    fn theorem7_resume_beats_restart() {
        let re = resume_model(0.3);
        let s = restart_model();
        for r in 0..6 {
            assert_eq!(compare_pocd(&re, &s, r).unwrap(), Dominance::FirstWins);
        }
    }

    #[test]
    fn theorem7_clone_vs_resume_threshold() {
        // Pick parameters where the threshold premise D̄ < ϕ̄·D holds:
        // τ_est = 40, D = 100, ϕ = 0.3 ⇒ D̄ = 60 < 70 = ϕ̄·D.
        let phi = 0.3;
        let c = clone_model();
        let re = resume_model(phi);
        let threshold = clone_beats_resume_threshold(&job(), re.params()).expect("premise holds");
        for r in 0..12 {
            let cmp = compare_pocd(&c, &re, r).unwrap();
            if f64::from(r) > threshold {
                assert_eq!(cmp, Dominance::FirstWins, "r = {r}, threshold {threshold}");
            } else {
                assert_ne!(cmp, Dominance::FirstWins, "r = {r}, threshold {threshold}");
            }
        }
    }

    #[test]
    fn clone_vs_resume_threshold_requires_premise() {
        // ϕ = 0.9 ⇒ ϕ̄·D = 10 < D̄ = 60: premise fails.
        let re = resume_model(0.9);
        assert!(clone_beats_resume_threshold(&job(), re.params()).is_err());
    }

    #[test]
    fn concavity_threshold_matches_failure_probability_crossing() {
        for m in [clone_model(), restart_model(), resume_model(0.3)] {
            let gamma = m.concavity_threshold().expect("finite threshold");
            let n = f64::from(m.job().tasks());
            // Just above Γ the failure probability is below 1/N and vice versa.
            let above = m.task_failure_probability_continuous(gamma + 1e-6);
            assert!(above < 1.0 / n + 1e-9, "{:?}", m.params().kind());
            if gamma > 0.0 {
                let below = m.task_failure_probability_continuous(gamma - 1e-6);
                assert!(below > 1.0 / n - 1e-9, "{:?}", m.params().kind());
            }
        }
    }

    #[test]
    fn concavity_threshold_is_small_in_practice() {
        // The paper notes Γ is typically < 4 for realistic parameters.
        for m in [clone_model(), restart_model(), resume_model(0.3)] {
            let gamma = m.concavity_threshold().unwrap();
            assert!(gamma < 4.0, "{:?}: {gamma}", m.params().kind());
        }
    }

    #[test]
    fn concave_from_rounds_up() {
        let m = clone_model();
        let gamma = m.concavity_threshold().unwrap();
        let from = m.concave_from().unwrap();
        assert!(f64::from(from) >= gamma);
        assert!(f64::from(from) < gamma.max(0.0) + 1.0 + 1e-9);
    }

    #[test]
    fn resume_with_no_useful_window_has_no_threshold() {
        // Deadline 45, τ_est 40 leaves a 5 s window; with ϕ = 0 the resumed
        // attempts still need ≥ t_min = 20 s, so speculation cannot help.
        let job = JobProfile::builder()
            .t_min(20.0)
            .deadline(45.0)
            .build()
            .unwrap();
        // Constructing the model fails the validation because the window is
        // useless; build the raw params and confirm the validation error.
        let params = StrategyParams::restart(40.0, 44.0).unwrap();
        assert!(PocdModel::new(job, params).is_err());
    }

    #[test]
    fn min_r_for_target() {
        let m = clone_model();
        let r = m.min_r_for_target(0.99).unwrap().unwrap();
        assert!(m.pocd(r).unwrap() >= 0.99);
        if r > 0 {
            assert!(m.pocd(r - 1).unwrap() < 0.99);
        }
        // A target of zero is met by r = 0.
        assert_eq!(m.min_r_for_target(0.0).unwrap(), Some(0));
        // Exactly 1.0 is unreachable with a finite number of attempts.
        assert_eq!(m.min_r_for_target(1.0).unwrap(), None);
        assert!(m.min_r_for_target(1.5).is_err());
    }

    #[test]
    fn extra_miss_probability_by_strategy() {
        let c = clone_model();
        assert!(approx_eq(
            c.extra_miss_probability(),
            c.original_miss_probability(),
            1e-15,
            1e-15
        ));
        let s = restart_model();
        let expected = (20.0_f64 / 60.0).powf(1.5);
        assert!(approx_eq(
            s.extra_miss_probability(),
            expected,
            1e-12,
            1e-12
        ));
        let re = resume_model(0.4);
        let expected = (0.6 * 20.0_f64 / 60.0).powf(1.5);
        assert!(approx_eq(
            re.extra_miss_probability(),
            expected,
            1e-12,
            1e-12
        ));
    }

    #[test]
    fn continuous_and_integer_views_agree() {
        let m = resume_model(0.25);
        for r in 0..6 {
            assert!(approx_eq(
                m.pocd(r).unwrap(),
                m.pocd_continuous(f64::from(r)),
                1e-15,
                1e-15
            ));
        }
    }
}
