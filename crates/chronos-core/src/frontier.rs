//! PoCD / cost tradeoff frontier (Section V discussion).
//!
//! The paper notes that the optimal tradeoff frontier "can be employed to
//! determine user's budget for desired PoCD performance, and vice versa".
//! This module sweeps `r` for a strategy and exposes the frontier as a list
//! of `(r, PoCD, machine time, cost)` points, plus helpers that answer the
//! two planning questions directly:
//!
//! * [`Frontier::cheapest_for_pocd`] — the minimum budget achieving a PoCD
//!   target (for SLA pricing), and
//! * [`Frontier::best_pocd_within_budget`] — the best PoCD attainable under
//!   a machine-time budget.

use crate::cost::CostModel;
use crate::error::ChronosError;
use crate::job::JobProfile;
use crate::pocd::PocdModel;
use crate::strategy::StrategyParams;
use serde::{Deserialize, Serialize};

/// One point on the PoCD / cost frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Number of extra attempts at this point.
    pub r: u32,
    /// Job-level PoCD (Theorems 1/3/5).
    pub pocd: f64,
    /// Expected job machine time in seconds of VM time (Theorems 2/4/6).
    pub machine_time: f64,
    /// Expected dollar cost (`C · E[T]`).
    pub dollar_cost: f64,
}

/// The tradeoff frontier of a job under a single strategy, for
/// `r = 0 … r_max`.
///
/// # Examples
///
/// ```
/// use chronos_core::prelude::*;
/// use chronos_core::frontier::Frontier;
///
/// # fn main() -> Result<(), ChronosError> {
/// let job = JobProfile::builder().deadline(100.0).build()?;
/// let frontier = Frontier::sweep(&job, &StrategyParams::clone_strategy(80.0), 8)?;
/// let target = frontier.cheapest_for_pocd(0.95);
/// assert!(target.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    params: StrategyParams,
    points: Vec<FrontierPoint>,
}

impl Frontier {
    /// Evaluates PoCD and cost for every `r` in `0..=r_max`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and cost-evaluation failures. Individual
    /// `r` values whose expected cost is infinite (possible for very heavy
    /// tails at small `r`) are skipped rather than failing the whole sweep.
    pub fn sweep(
        job: &JobProfile,
        params: &StrategyParams,
        r_max: u32,
    ) -> Result<Self, ChronosError> {
        let pocd = PocdModel::new(*job, *params)?;
        let cost = CostModel::new(*job, *params)?;
        let mut points = Vec::with_capacity(r_max as usize + 1);
        for r in 0..=r_max {
            let machine_time = match cost.expected_job_machine_time(f64::from(r)) {
                Ok(v) => v,
                Err(ChronosError::InconsistentParameters { .. }) => continue,
                Err(other) => return Err(other),
            };
            points.push(FrontierPoint {
                r,
                pocd: pocd.pocd(r)?,
                machine_time,
                dollar_cost: machine_time * job.price(),
            });
        }
        Ok(Frontier {
            params: *params,
            points,
        })
    }

    /// The strategy this frontier was computed for.
    #[must_use]
    pub fn params(&self) -> &StrategyParams {
        &self.params
    }

    /// The frontier points, in increasing order of `r`.
    #[must_use]
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Iterates over the frontier points.
    pub fn iter(&self) -> impl Iterator<Item = &FrontierPoint> {
        self.points.iter()
    }

    /// The cheapest point (by machine time) whose PoCD reaches `target`, or
    /// `None` if the target is unreachable within the swept range.
    #[must_use]
    pub fn cheapest_for_pocd(&self, target: f64) -> Option<FrontierPoint> {
        self.points
            .iter()
            .filter(|p| p.pocd >= target)
            .min_by(|a, b| {
                a.machine_time
                    .partial_cmp(&b.machine_time)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }

    /// The highest-PoCD point whose machine time does not exceed `budget`,
    /// or `None` if even `r = 0` exceeds the budget.
    #[must_use]
    pub fn best_pocd_within_budget(&self, budget: f64) -> Option<FrontierPoint> {
        self.points
            .iter()
            .filter(|p| p.machine_time <= budget)
            .max_by(|a, b| {
                a.pocd
                    .partial_cmp(&b.pocd)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }

    /// Retains only Pareto-efficient points: those not dominated by another
    /// point with both higher-or-equal PoCD and lower-or-equal cost.
    #[must_use]
    pub fn pareto_efficient(&self) -> Vec<FrontierPoint> {
        let mut efficient = Vec::new();
        for candidate in &self.points {
            let dominated = self.points.iter().any(|other| {
                (other.pocd > candidate.pocd && other.machine_time <= candidate.machine_time)
                    || (other.pocd >= candidate.pocd && other.machine_time < candidate.machine_time)
            });
            if !dominated {
                efficient.push(*candidate);
            }
        }
        efficient
    }
}

impl<'a> IntoIterator for &'a Frontier {
    type Item = &'a FrontierPoint;
    type IntoIter = std::slice::Iter<'a, FrontierPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    fn job() -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_produces_all_points() {
        let f = Frontier::sweep(&job(), &StrategyParams::clone_strategy(80.0), 6).unwrap();
        assert_eq!(f.points().len(), 7);
        assert_eq!(f.points()[0].r, 0);
        assert_eq!(f.points()[6].r, 6);
        assert_eq!(f.params().kind(), StrategyKind::Clone);
    }

    #[test]
    fn pocd_is_monotone_along_sweep() {
        let f =
            Frontier::sweep(&job(), &StrategyParams::resume(40.0, 80.0, 0.3).unwrap(), 8).unwrap();
        for pair in f.points().windows(2) {
            assert!(pair[1].pocd >= pair[0].pocd);
        }
    }

    #[test]
    fn cheapest_for_pocd_meets_target_minimally() {
        let f = Frontier::sweep(&job(), &StrategyParams::clone_strategy(80.0), 8).unwrap();
        let point = f.cheapest_for_pocd(0.95).unwrap();
        assert!(point.pocd >= 0.95);
        // Every cheaper point must fall short of the target.
        for p in f.points() {
            if p.machine_time < point.machine_time {
                assert!(p.pocd < 0.95);
            }
        }
        assert!(f.cheapest_for_pocd(1.0).is_none());
    }

    #[test]
    fn best_pocd_within_budget_respects_budget() {
        let f = Frontier::sweep(&job(), &StrategyParams::clone_strategy(80.0), 8).unwrap();
        let budget = 1_200.0;
        let point = f.best_pocd_within_budget(budget).unwrap();
        assert!(point.machine_time <= budget);
        for p in f.points() {
            if p.machine_time <= budget {
                assert!(p.pocd <= point.pocd + 1e-15);
            }
        }
        assert!(f.best_pocd_within_budget(0.0).is_none());
    }

    #[test]
    fn pareto_filter_removes_dominated_points() {
        // For Clone, PoCD and cost both increase with r, so every point is
        // efficient; for S-Restart the r = 0 point is dominated by r = 1
        // (higher PoCD at lower cost) and must be filtered out.
        let clone = Frontier::sweep(&job(), &StrategyParams::clone_strategy(80.0), 5).unwrap();
        assert_eq!(clone.pareto_efficient().len(), clone.points().len());

        let restart =
            Frontier::sweep(&job(), &StrategyParams::restart(40.0, 80.0).unwrap(), 5).unwrap();
        let efficient = restart.pareto_efficient();
        assert!(efficient.iter().all(|p| p.r != 0));
        assert!(efficient.len() < restart.points().len());
    }

    #[test]
    fn dollar_cost_tracks_price() {
        let pricey = JobProfile::builder().price(2.0).build().unwrap();
        let f = Frontier::sweep(&pricey, &StrategyParams::clone_strategy(80.0), 3).unwrap();
        for p in f.points() {
            assert!((p.dollar_cost - 2.0 * p.machine_time).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_visits_every_point() {
        let f = Frontier::sweep(&job(), &StrategyParams::clone_strategy(80.0), 4).unwrap();
        assert_eq!(f.iter().count(), 5);
        assert_eq!((&f).into_iter().count(), 5);
    }
}
