//! Expected machine running time (execution cost) of each strategy.
//!
//! Implements Theorems 2, 4 and 6: the expected total (virtual) machine time
//! consumed by a job under Clone, Speculative-Restart and Speculative-Resume,
//! as a function of the number of extra attempts `r`. Multiplying by the
//! per-unit-time VM price gives the dollar cost used in the net-utility
//! objective of Section V.

use crate::error::ChronosError;
use crate::job::JobProfile;
use crate::numeric::{integrate_tail, DEFAULT_QUAD_TOL};
use crate::pareto::Pareto;
use crate::strategy::{StrategyKind, StrategyParams};
use serde::{Deserialize, Serialize};

/// Expected machine-time / cost model for one job under one strategy.
///
/// # Examples
///
/// ```
/// use chronos_core::prelude::*;
///
/// # fn main() -> Result<(), ChronosError> {
/// let job = JobProfile::builder()
///     .tasks(10)
///     .t_min(20.0)
///     .beta(1.5)
///     .deadline(100.0)
///     .build()?;
/// let cost = CostModel::new(job, StrategyParams::clone_strategy(80.0))?;
///
/// // Theorem 2 at r = 0 reduces to N times the mean task time.
/// let base = cost.expected_job_machine_time(0.0)?;
/// assert!((base - 10.0 * 60.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    job: JobProfile,
    params: StrategyParams,
}

impl CostModel {
    /// Builds a cost model, validating the strategy timing against the job.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] under the same
    /// conditions as [`crate::pocd::PocdModel::new`].
    pub fn new(job: JobProfile, params: StrategyParams) -> Result<Self, ChronosError> {
        params.validate_against(job.deadline(), job.t_min())?;
        Ok(CostModel { job, params })
    }

    /// The job profile this model describes.
    #[must_use]
    pub fn job(&self) -> &JobProfile {
        &self.job
    }

    /// The strategy parameters this model describes.
    #[must_use]
    pub fn params(&self) -> &StrategyParams {
        &self.params
    }

    /// Expected machine running time of a *single task* with `r` extra
    /// attempts (continuous relaxation of `r`).
    ///
    /// # Errors
    ///
    /// * [`ChronosError::InvalidParameter`] if `r` is negative or not finite.
    /// * [`ChronosError::InconsistentParameters`] if the expectation is
    ///   infinite for the given `β` and `r` (e.g. Clone needs
    ///   `β·(r+1) > 1`).
    /// * [`ChronosError::NumericalFailure`] if the Theorem 4 quadrature fails.
    pub fn expected_task_machine_time(&self, r: f64) -> Result<f64, ChronosError> {
        if !r.is_finite() || r < 0.0 {
            return Err(ChronosError::invalid("r", r, "a finite value >= 0"));
        }
        match self.params.kind() {
            StrategyKind::Clone => self.clone_task_time(r),
            StrategyKind::SpeculativeRestart => self.restart_task_time(r),
            StrategyKind::SpeculativeResume => self.resume_task_time(r),
        }
    }

    /// Expected machine running time of the *job*: `N` times the per-task
    /// expectation (Theorems 2, 4, 6).
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`expected_task_machine_time`](Self::expected_task_machine_time).
    pub fn expected_job_machine_time(&self, r: f64) -> Result<f64, ChronosError> {
        Ok(f64::from(self.job.tasks()) * self.expected_task_machine_time(r)?)
    }

    /// Expected dollar cost of the job: machine time multiplied by the
    /// per-unit-time VM price `C`.
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`expected_job_machine_time`](Self::expected_job_machine_time).
    pub fn expected_cost(&self, r: f64) -> Result<f64, ChronosError> {
        Ok(self.job.price() * self.expected_job_machine_time(r)?)
    }

    /// Expected machine time of the no-speculation baseline (Hadoop-NS):
    /// `N · E[T] = N·t_min·β/(β−1)`.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InconsistentParameters`] when `β ≤ 1` (the
    /// mean task time is infinite).
    pub fn baseline_job_machine_time(&self) -> Result<f64, ChronosError> {
        let mean = self.job.task_time().mean().ok_or_else(|| {
            ChronosError::inconsistent("mean task time is infinite for beta <= 1")
        })?;
        Ok(f64::from(self.job.tasks()) * mean)
    }

    /// Theorem 2: `E[T_j] = r·τ_kill + t_min + t_min/(β(r+1) − 1)`.
    fn clone_task_time(&self, r: f64) -> Result<f64, ChronosError> {
        let beta = self.job.beta();
        let t_min = self.job.t_min();
        let nb = beta * (r + 1.0);
        if nb <= 1.0 {
            return Err(ChronosError::inconsistent(format!(
                "Clone expected time infinite: beta*(r+1) = {nb} <= 1"
            )));
        }
        Ok(r * self.params.tau_kill() + t_min + t_min / (nb - 1.0))
    }

    /// Theorem 4. The `T_{j,1} > D` branch needs the integral
    /// `∫_{D−τ_est}^∞ (D/(ω+τ_est))^β (t_min/ω)^{β r} dω`, evaluated
    /// numerically; the rest is closed form.
    fn restart_task_time(&self, r: f64) -> Result<f64, ChronosError> {
        let beta = self.job.beta();
        let t_min = self.job.t_min();
        let d = self.job.deadline();
        let tau_est = self.params.tau_est();
        let tau_kill = self.params.tau_kill();
        let dist = self.job.task_time();

        let p_miss = dist.survival(d);
        let p_meet = 1.0 - p_miss;
        let on_time = if p_meet > 0.0 {
            dist.conditional_mean_below(d)?
        } else {
            0.0
        };

        // E[Ŵ_all]: expected remaining execution (after τ_est) of the fastest
        // among the conditioned original attempt and the r restarted extras.
        let window = d - tau_est;
        // Segment 1: ω ∈ [t_min, D − τ_est], where the conditioned original
        // attempt surely exceeds ω, so the integrand is (t_min/ω)^(βr).
        let seg1 = integral_power_segment(t_min, window, beta * r)?;
        // Segment 2: ω ∈ [D − τ_est, ∞). Decays like ω^(−β(r+1)).
        let decay = beta * (r + 1.0);
        if decay <= 1.0 {
            return Err(ChronosError::inconsistent(format!(
                "Speculative-Restart expected time infinite: beta*(r+1) = {decay} <= 1"
            )));
        }
        let seg2 = integrate_tail(
            |omega| (d / (omega + tau_est)).powf(beta) * (t_min / omega).powf(beta * r),
            window,
            decay,
            DEFAULT_QUAD_TOL,
        )?;
        let expected_w_all = t_min + seg1 + seg2;
        let late = tau_est + r * (tau_kill - tau_est) + expected_w_all;

        Ok(on_time * p_meet + late * p_miss)
    }

    /// Theorem 6: the resumed attempts process the remaining `1 − ϕ_est`
    /// fraction, so the survivor term is
    /// `t_min·(1−ϕ_est)^(β(r+1)) / (β(r+1) − 1) + t_min`.
    fn resume_task_time(&self, r: f64) -> Result<f64, ChronosError> {
        let beta = self.job.beta();
        let t_min = self.job.t_min();
        let d = self.job.deadline();
        let tau_est = self.params.tau_est();
        let tau_kill = self.params.tau_kill();
        let dist = self.job.task_time();
        let phi_bar = self.params.remaining_fraction();

        let p_miss = dist.survival(d);
        let p_meet = 1.0 - p_miss;
        let on_time = if p_meet > 0.0 {
            dist.conditional_mean_below(d)?
        } else {
            0.0
        };

        let nb = beta * (r + 1.0);
        if nb <= 1.0 {
            return Err(ChronosError::inconsistent(format!(
                "Speculative-Resume expected time infinite: beta*(r+1) = {nb} <= 1"
            )));
        }
        let survivor = t_min * phi_bar.powf(nb) / (nb - 1.0) + t_min;
        let late = tau_est + r * (tau_kill - tau_est) + survivor;

        Ok(on_time * p_meet + late * p_miss)
    }
}

/// `∫_a^b (a/ω)^p dω` for `b ≥ a > 0`, handling the `p = 1` logarithmic case.
fn integral_power_segment(a: f64, b: f64, p: f64) -> Result<f64, ChronosError> {
    if b < a {
        return Err(ChronosError::numerical(format!(
            "power segment requires b >= a, got a = {a}, b = {b}"
        )));
    }
    if (p - 1.0).abs() < 1e-12 {
        return Ok(a * (b / a).ln());
    }
    // ∫_a^b a^p ω^(-p) dω = a^p (b^(1-p) − a^(1-p)) / (1 − p)
    Ok(a.powf(p) * (b.powf(1.0 - p) - a.powf(1.0 - p)) / (1.0 - p))
}

/// Expected machine time of a single task under Clone evaluated by Monte
/// Carlo, following the accounting of Theorem 2 exactly: `r` attempts are
/// charged until `τ_kill` and the fastest attempt runs to completion.
///
/// Exposed primarily so benchmarks and tests can cross-validate the closed
/// forms; the discrete-event simulator in `chronos-sim` measures the real
/// process instead.
pub fn monte_carlo_clone_task_time<R: rand::Rng + ?Sized>(
    dist: &Pareto,
    r: u32,
    tau_kill: f64,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..samples {
        let attempts = dist.sample_n(rng, r as usize + 1);
        let fastest = attempts.iter().copied().fold(f64::INFINITY, f64::min);
        total += f64::from(r) * tau_kill + fastest;
    }
    total / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job() -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .build()
            .unwrap()
    }

    fn clone_cost() -> CostModel {
        CostModel::new(job(), StrategyParams::clone_strategy(80.0)).unwrap()
    }

    fn restart_cost() -> CostModel {
        CostModel::new(job(), StrategyParams::restart(40.0, 80.0).unwrap()).unwrap()
    }

    fn resume_cost(phi: f64) -> CostModel {
        CostModel::new(job(), StrategyParams::resume(40.0, 80.0, phi).unwrap()).unwrap()
    }

    #[test]
    fn theorem2_closed_form() {
        let m = clone_cost();
        for r in 0..5u32 {
            let rf = f64::from(r);
            let expected = 10.0 * (rf * 80.0 + 20.0 + 20.0 / (1.5 * (rf + 1.0) - 1.0));
            let got = m.expected_job_machine_time(rf).unwrap();
            assert!(approx_eq(got, expected, 1e-9, 1e-12), "r={r}: {got}");
        }
    }

    #[test]
    fn theorem2_r_zero_is_mean() {
        let m = clone_cost();
        let got = m.expected_job_machine_time(0.0).unwrap();
        assert!(approx_eq(got, 10.0 * 60.0, 1e-9, 1e-12));
        assert!(approx_eq(
            got,
            m.baseline_job_machine_time().unwrap(),
            1e-9,
            1e-12
        ));
    }

    #[test]
    fn theorem2_against_monte_carlo() {
        let m = clone_cost();
        let mut rng = StdRng::seed_from_u64(42);
        for r in [1u32, 2] {
            let closed = m.expected_task_machine_time(f64::from(r)).unwrap();
            let mc = monte_carlo_clone_task_time(&m.job().task_time(), r, 80.0, 400_000, &mut rng);
            // min of Pareto draws has light tail, so the MC mean converges well.
            assert!(
                (closed - mc).abs() / closed < 0.01,
                "r={r}: closed {closed} vs mc {mc}"
            );
        }
    }

    #[test]
    fn theorem4_r_zero_reduces_to_unconditional_mean() {
        // With no extra attempts, S-Restart never launches anything, so the
        // expected machine time is just E[T] of the original attempt:
        // E[T|T≤D]P(T≤D) + E[T|T>D]P(T>D) = E[T].
        let m = restart_cost();
        let got = m.expected_task_machine_time(0.0).unwrap();
        assert!(approx_eq(got, 60.0, 1e-6, 1e-8), "got {got}");
    }

    #[test]
    fn theorem4_structure_matches_manual_quadrature() {
        let m = restart_cost();
        let r = 2.0;
        let beta = 1.5;
        let t_min = 20.0;
        let d = 100.0f64;
        let tau_est = 40.0;
        let tau_kill = 80.0;
        let dist = Pareto::new(t_min, beta).unwrap();

        let p_miss = (t_min / d).powf(beta);
        let on_time = dist.conditional_mean_below(d).unwrap();
        // Manual evaluation of E[Ŵ_all] via brute-force quadrature over the
        // survival product P(T̂1 − τ_est > ω)·P(T > ω)^r.
        let survival_product = |omega: f64| {
            let orig = if omega < d - tau_est {
                1.0
            } else {
                (d / (omega + tau_est)).powf(beta)
            };
            let extra = if omega < t_min {
                1.0
            } else {
                (t_min / omega).powf(beta * r)
            };
            orig * extra
        };
        let tail = crate::numeric::integrate_tail(survival_product, t_min, beta * (r + 1.0), 1e-12)
            .unwrap();
        let expected_w_all = t_min + tail;
        let late = tau_est + r * (tau_kill - tau_est) + expected_w_all;
        let manual = on_time * (1.0 - p_miss) + late * p_miss;

        let got = m.expected_task_machine_time(r).unwrap();
        assert!(approx_eq(got, manual, 1e-5, 1e-7), "{got} vs {manual}");
    }

    #[test]
    fn theorem6_closed_form() {
        let phi = 0.4;
        let m = resume_cost(phi);
        for r in 0..4u32 {
            let rf = f64::from(r);
            let beta = 1.5;
            let t_min = 20.0f64;
            let d = 100.0f64;
            let p_miss = (t_min / d).powf(beta);
            let dist = Pareto::new(t_min, beta).unwrap();
            let on_time = dist.conditional_mean_below(d).unwrap();
            let nb = beta * (rf + 1.0);
            let late = 40.0 + rf * 40.0 + t_min * (1.0 - phi).powf(nb) / (nb - 1.0) + t_min;
            let expected = 10.0 * (on_time * (1.0 - p_miss) + late * p_miss);
            let got = m.expected_job_machine_time(rf).unwrap();
            assert!(approx_eq(got, expected, 1e-9, 1e-12), "r={r}");
        }
    }

    #[test]
    fn clone_cost_increases_with_r() {
        let m = clone_cost();
        let mut prev = m.expected_job_machine_time(0.0).unwrap();
        for r in 1..8 {
            let cur = m.expected_job_machine_time(f64::from(r)).unwrap();
            assert!(cur > prev, "Clone cost should grow with r");
            prev = cur;
        }
    }

    #[test]
    fn reactive_cost_increases_with_r_once_speculating() {
        // For r ≥ 1 every additional attempt adds (τ_kill − τ_est) of machine
        // time on each straggler, which outweighs the shrinking survivor term.
        for m in [restart_cost(), resume_cost(0.3)] {
            let mut prev = m.expected_job_machine_time(1.0).unwrap();
            for r in 2..8 {
                let cur = m.expected_job_machine_time(f64::from(r)).unwrap();
                assert!(
                    cur > prev,
                    "{:?}: cost should grow with r >= 1",
                    m.params().kind()
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn first_speculative_attempt_can_reduce_restart_cost() {
        // Going from r = 0 to r = 1 *reduces* expected machine time for
        // Speculative-Restart: without speculation a straggler runs to
        // completion (conditional mean D·β/(β−1)), whereas one extra attempt
        // replaces that heavy tail with τ_est + (τ_kill − τ_est) + a light
        // minimum-of-two tail. This is the quantitative version of Mantri's
        // observation that killing stragglers can save resources.
        let m = restart_cost();
        let at_zero = m.expected_job_machine_time(0.0).unwrap();
        let at_one = m.expected_job_machine_time(1.0).unwrap();
        assert!(at_one < at_zero, "expected {at_one} < {at_zero}");
    }

    #[test]
    fn resume_already_prunes_stragglers_at_r_zero() {
        // Speculative-Resume kills the straggler and relaunches even when
        // r = 0, so its r = 0 cost is already far below the no-speculation
        // baseline and grows monotonically from there.
        let m = resume_cost(0.3);
        let baseline = m.baseline_job_machine_time().unwrap();
        let at_zero = m.expected_job_machine_time(0.0).unwrap();
        let at_one = m.expected_job_machine_time(1.0).unwrap();
        assert!(at_zero < baseline);
        assert!(at_one > at_zero);
    }

    #[test]
    fn clone_costs_more_than_speculation_for_same_r() {
        // Clone pays r·τ_kill on every task; the reactive strategies only pay
        // for stragglers, so for equal r they are cheaper.
        let c = clone_cost();
        let s = restart_cost();
        let re = resume_cost(0.3);
        for r in 1..6 {
            let rf = f64::from(r);
            let cc = c.expected_job_machine_time(rf).unwrap();
            let sc = s.expected_job_machine_time(rf).unwrap();
            let rc = re.expected_job_machine_time(rf).unwrap();
            assert!(cc > sc, "r={r}");
            assert!(cc > rc, "r={r}");
        }
    }

    #[test]
    fn resume_cheaper_than_restart() {
        // Work preservation means resumed attempts finish sooner on average.
        let s = restart_cost();
        let re = resume_cost(0.3);
        for r in 1..6 {
            let rf = f64::from(r);
            assert!(
                re.expected_job_machine_time(rf).unwrap()
                    < s.expected_job_machine_time(rf).unwrap(),
                "r={r}"
            );
        }
    }

    #[test]
    fn expected_cost_scales_with_price() {
        let cheap = CostModel::new(
            JobProfile::builder().price(0.01).build().unwrap(),
            StrategyParams::clone_strategy(80.0),
        )
        .unwrap();
        let pricey = CostModel::new(
            JobProfile::builder().price(0.02).build().unwrap(),
            StrategyParams::clone_strategy(80.0),
        )
        .unwrap();
        let a = cheap.expected_cost(2.0).unwrap();
        let b = pricey.expected_cost(2.0).unwrap();
        assert!(approx_eq(b, 2.0 * a, 1e-12, 1e-12));
    }

    #[test]
    fn rejects_negative_r() {
        assert!(clone_cost().expected_task_machine_time(-1.0).is_err());
        assert!(clone_cost().expected_task_machine_time(f64::NAN).is_err());
    }

    #[test]
    fn infinite_mean_cases_error() {
        let heavy = JobProfile::builder()
            .beta(0.8)
            .t_min(20.0)
            .deadline(100.0)
            .build()
            .unwrap();
        let m = CostModel::new(heavy, StrategyParams::clone_strategy(80.0)).unwrap();
        // β(r+1) = 0.8 ≤ 1 at r = 0: infinite expectation.
        assert!(m.expected_task_machine_time(0.0).is_err());
        // r = 1 gives β(r+1) = 1.6 > 1: finite.
        assert!(m.expected_task_machine_time(1.0).is_ok());
        assert!(m.baseline_job_machine_time().is_err());
    }

    #[test]
    fn power_segment_log_case() {
        let v = integral_power_segment(2.0, 8.0, 1.0).unwrap();
        assert!(approx_eq(v, 2.0 * (4.0f64).ln(), 1e-12, 1e-12));
        assert!(integral_power_segment(5.0, 4.0, 1.0).is_err());
    }

    #[test]
    fn power_segment_general_case() {
        // ∫_2^8 (2/ω)^3 dω = 8·[−ω^-2/2]_2^8 = 8·(1/8 − 1/128) = 0.9375
        let v = integral_power_segment(2.0, 8.0, 3.0).unwrap();
        assert!(approx_eq(v, 0.9375, 1e-12, 1e-12));
    }
}
