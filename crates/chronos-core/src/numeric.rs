//! Numerical routines used by the cost models and the optimizer.
//!
//! The Speculative-Restart cost expression (Theorem 4) contains an integral
//! with no elementary antiderivative; [`integrate_adaptive`] and
//! [`integrate_tail`] evaluate it. The optimizer (Algorithm 1) relies on
//! [`central_difference`] for gradients of the net-utility objective and on
//! [`golden_section_max`] as the line-search backend.

use crate::error::ChronosError;

/// Absolute tolerance used by default for quadrature.
pub const DEFAULT_QUAD_TOL: f64 = 1e-10;

/// Maximum recursion depth for adaptive Simpson quadrature.
const MAX_DEPTH: u32 = 48;

/// Adaptive Simpson quadrature of `f` over the finite interval `[a, b]`.
///
/// # Errors
///
/// Returns [`ChronosError::NumericalFailure`] if the bounds are not finite or
/// `a > b`.
///
/// # Examples
///
/// ```
/// use chronos_core::numeric::integrate_adaptive;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// let area = integrate_adaptive(|x| x * x, 0.0, 3.0, 1e-10)?;
/// assert!((area - 9.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn integrate_adaptive<F>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, ChronosError>
where
    F: Fn(f64) -> f64,
{
    if !a.is_finite() || !b.is_finite() {
        return Err(ChronosError::numerical(format!(
            "integration bounds must be finite, got [{a}, {b}]"
        )));
    }
    if a > b {
        return Err(ChronosError::numerical(format!(
            "integration requires a <= b, got [{a}, {b}]"
        )));
    }
    if a == b {
        return Ok(0.0);
    }
    let tol = if tol > 0.0 { tol } else { DEFAULT_QUAD_TOL };
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    Ok(adaptive_step(&f, a, b, fa, fm, fb, whole, tol, MAX_DEPTH))
}

/// Integrates `f` from `a` to infinity assuming `f` eventually decays at
/// least as fast as `x^(-p)` with `p = decay_exponent > 1`.
///
/// Internally substitutes `x = a * exp(u)` which turns power-law decay into
/// exponential decay, then truncates the transformed domain where the
/// integrand magnitude falls below the requested tolerance.
///
/// # Errors
///
/// Returns [`ChronosError::NumericalFailure`] if `a <= 0`, if
/// `decay_exponent <= 1`, or if the underlying quadrature fails.
///
/// # Examples
///
/// ```
/// use chronos_core::numeric::integrate_tail;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// // ∫_1^∞ x^-2 dx = 1
/// let v = integrate_tail(|x| x.powi(-2), 1.0, 2.0, 1e-10)?;
/// assert!((v - 1.0).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn integrate_tail<F>(f: F, a: f64, decay_exponent: f64, tol: f64) -> Result<f64, ChronosError>
where
    F: Fn(f64) -> f64,
{
    if a <= 0.0 || !a.is_finite() {
        return Err(ChronosError::numerical(format!(
            "tail integration requires a finite positive lower bound, got {a}"
        )));
    }
    if decay_exponent <= 1.0 {
        return Err(ChronosError::numerical(format!(
            "tail integration requires decay exponent > 1, got {decay_exponent}"
        )));
    }
    // After x = a e^u the integrand becomes f(a e^u) * a e^u, which decays
    // like e^{-(p-1) u}. Truncate where that factor reaches ~1e-14.
    let u_max = (32.0 / (decay_exponent - 1.0)).min(700.0);
    let transformed = |u: f64| {
        let x = a * u.exp();
        f(x) * x
    };
    integrate_adaptive(transformed, 0.0, u_max, tol)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64
where
    F: Fn(f64) -> f64,
{
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_step(f, a, m, fa, flm, fm, left, tol * 0.5, depth - 1)
            + adaptive_step(f, m, b, fm, frm, fb, right, tol * 0.5, depth - 1)
    }
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

/// Central-difference approximation of `d f / d x` at `x` with step `h`.
///
/// Used by the gradient phase of Algorithm 1 where the net-utility objective
/// is treated as a function of a continuous relaxation of `r`.
///
/// # Examples
///
/// ```
/// use chronos_core::numeric::central_difference;
///
/// let d = central_difference(|x| x * x, 3.0, 1e-5);
/// assert!((d - 6.0).abs() < 1e-4);
/// ```
pub fn central_difference<F>(f: F, x: f64, h: f64) -> f64
where
    F: Fn(f64) -> f64,
{
    let h = if h > 0.0 { h } else { 1e-6 };
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Golden-section search for the maximum of a unimodal function on `[lo, hi]`.
///
/// Returns the abscissa of the maximum. This is the line-search backend used
/// on the concave tail (`r > Γ_strategy`) of the net-utility objective, where
/// Theorem 8 guarantees unimodality.
///
/// # Errors
///
/// Returns [`ChronosError::NumericalFailure`] when the bounds are not finite
/// or `lo > hi`.
///
/// # Examples
///
/// ```
/// use chronos_core::numeric::golden_section_max;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// let x = golden_section_max(|x| -(x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-9)?;
/// assert!((x - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn golden_section_max<F>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64, ChronosError>
where
    F: Fn(f64) -> f64,
{
    if !lo.is_finite() || !hi.is_finite() {
        return Err(ChronosError::numerical(format!(
            "golden-section bounds must be finite, got [{lo}, {hi}]"
        )));
    }
    if lo > hi {
        return Err(ChronosError::numerical(format!(
            "golden-section requires lo <= hi, got [{lo}, {hi}]"
        )));
    }
    let tol = if tol > 0.0 { tol } else { 1e-9 };
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iterations = 0usize;
    while (b - a).abs() > tol && iterations < 400 {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
        iterations += 1;
    }
    Ok(0.5 * (a + b))
}

/// Clamps a floating-point value into a probability in `[0, 1]`.
///
/// Closed-form PoCD expressions can drift marginally outside `[0, 1]` due to
/// floating-point rounding when the per-task failure probability is tiny.
#[must_use]
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        return 0.0;
    }
    p.clamp(0.0, 1.0)
}

/// Returns `true` when two floats agree within an absolute and a relative
/// tolerance; convenience helper used heavily in tests.
#[must_use]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= abs_tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= rel_tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_exact_for_cubics() {
        // Simpson's rule is exact up to cubic polynomials.
        let v = integrate_adaptive(|x| x * x * x, 0.0, 2.0, 1e-12).unwrap();
        assert!((v - 4.0).abs() < 1e-9);
    }

    #[test]
    fn integrates_transcendental() {
        let v = integrate_adaptive(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_width_interval_is_zero() {
        let v = integrate_adaptive(|x| x.exp(), 1.5, 1.5, 1e-10).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn rejects_reversed_bounds() {
        let err = integrate_adaptive(|x| x, 2.0, 1.0, 1e-10).unwrap_err();
        assert!(matches!(err, ChronosError::NumericalFailure { .. }));
    }

    #[test]
    fn rejects_non_finite_bounds() {
        let err = integrate_adaptive(|x| x, 0.0, f64::INFINITY, 1e-10).unwrap_err();
        assert!(matches!(err, ChronosError::NumericalFailure { .. }));
    }

    #[test]
    fn tail_integral_of_power_law() {
        // ∫_2^∞ x^-3 dx = 1/(2*4) = 0.125
        let v = integrate_tail(|x| x.powi(-3), 2.0, 3.0, 1e-12).unwrap();
        assert!((v - 0.125).abs() < 1e-8, "got {v}");
    }

    #[test]
    fn tail_integral_pareto_survival() {
        // ∫_a^∞ (a/x)^β dx = a/(β-1)
        let a = 5.0;
        let beta = 1.5;
        let v = integrate_tail(|x| (a / x).powf(beta), a, beta, 1e-12).unwrap();
        assert!((v - a / (beta - 1.0)).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn tail_rejects_slow_decay() {
        let err = integrate_tail(|x| 1.0 / x, 1.0, 1.0, 1e-10).unwrap_err();
        assert!(matches!(err, ChronosError::NumericalFailure { .. }));
    }

    #[test]
    fn tail_rejects_nonpositive_start() {
        let err = integrate_tail(|x| x.powi(-2), 0.0, 2.0, 1e-10).unwrap_err();
        assert!(matches!(err, ChronosError::NumericalFailure { .. }));
    }

    #[test]
    fn central_difference_of_exponential() {
        let d = central_difference(|x| x.exp(), 1.0, 1e-6);
        assert!((d - 1.0f64.exp()).abs() < 1e-5);
    }

    #[test]
    fn golden_section_finds_parabola_peak() {
        let x = golden_section_max(|x| 4.0 - (x - 3.5).powi(2), 0.0, 20.0, 1e-10).unwrap();
        assert!((x - 3.5).abs() < 1e-6);
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let x = golden_section_max(|x| -x * x, 2.0, 2.0, 1e-10).unwrap();
        assert_eq!(x, 2.0);
    }

    #[test]
    fn golden_section_rejects_reversed() {
        assert!(golden_section_max(|x| x, 3.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn clamp_probability_handles_nan_and_overflow() {
        assert_eq!(clamp_probability(f64::NAN), 0.0);
        assert_eq!(clamp_probability(1.2), 1.0);
        assert_eq!(clamp_probability(-0.3), 0.0);
        assert_eq!(clamp_probability(0.42), 0.42);
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
        assert!(approx_eq(1e9, 1e9 * (1.0 + 1e-10), 1e-9, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
    }
}
