//! Algorithm 1: the hybrid optimizer that selects the number of extra
//! attempts `r` maximizing net utility.
//!
//! Theorem 8 guarantees the objective is concave in `r` above the threshold
//! `Γ_strategy`, so the optimizer runs a continuous line search on the tail
//! `r ≥ ⌈Γ⌉` and an exhaustive scan over the (few) integers below the
//! threshold, then returns the better of the two — which Theorem 9 shows is
//! the global optimum.

use crate::error::ChronosError;
use crate::job::JobProfile;
use crate::numeric::{central_difference, golden_section_max};
use crate::strategy::{StrategyKind, StrategyParams};
use crate::utility::{NetUtility, UtilityModel};
use serde::{Deserialize, Serialize};

/// Which continuous search backend drives the concave-tail phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchMethod {
    /// Golden-section search over the bracketed concave region (robust
    /// default; does not require derivative estimates).
    GoldenSection,
    /// Gradient ascent with backtracking line search, following Algorithm 1
    /// as printed in the paper (η/α/ξ parameters of [`OptimizerConfig`]).
    GradientAscent,
}

/// Tuning knobs of the optimizer.
///
/// `eta`, `alpha` and `xi` correspond to the η, α and ξ constants of
/// Algorithm 1 and only affect the [`SearchMethod::GradientAscent`] backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Continuous search backend for the concave tail.
    pub method: SearchMethod,
    /// Gradient-norm stopping threshold η of Algorithm 1.
    pub eta: f64,
    /// Sufficient-decrease constant α of the backtracking line search.
    pub alpha: f64,
    /// Backtracking shrink factor ξ ∈ (0, 1).
    pub xi: f64,
    /// Hard upper bound on `r` considered by the search.
    pub r_max: u32,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            method: SearchMethod::GoldenSection,
            eta: 1e-6,
            alpha: 0.3,
            xi: 0.5,
            r_max: 64,
        }
    }
}

impl OptimizerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] for non-positive `eta`,
    /// `alpha` outside `(0, 1)`, `xi` outside `(0, 1)` or `r_max == 0`.
    pub fn validate(&self) -> Result<(), ChronosError> {
        if !(self.eta.is_finite() && self.eta > 0.0) {
            return Err(ChronosError::invalid("eta", self.eta, "a finite value > 0"));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ChronosError::invalid(
                "alpha",
                self.alpha,
                "a value in (0, 1)",
            ));
        }
        if !(self.xi > 0.0 && self.xi < 1.0) {
            return Err(ChronosError::invalid("xi", self.xi, "a value in (0, 1)"));
        }
        if self.r_max == 0 {
            return Err(ChronosError::invalid("r_max", 0.0, "at least 1"));
        }
        Ok(())
    }
}

/// Result of one optimization run: the chosen `r` and the metrics at it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationOutcome {
    /// Which strategy was optimized.
    pub strategy: StrategyKind,
    /// The optimal number of extra attempts.
    pub r: u32,
    /// Net utility at the optimum.
    pub utility: f64,
    /// PoCD at the optimum.
    pub pocd: f64,
    /// Expected job machine time at the optimum (seconds of VM time).
    pub machine_time: f64,
    /// Expected dollar cost (`C · E[T]`) at the optimum.
    pub dollar_cost: f64,
}

/// The Chronos optimizer (Algorithm 1).
///
/// # Examples
///
/// ```
/// use chronos_core::prelude::*;
///
/// # fn main() -> Result<(), ChronosError> {
/// let job = JobProfile::builder()
///     .tasks(10)
///     .t_min(20.0)
///     .beta(1.5)
///     .deadline(100.0)
///     .build()?;
/// let objective = UtilityModel::new(1e-4, 0.0)?;
/// let outcome = Optimizer::new(objective)
///     .optimize(&job, &StrategyParams::resume(40.0, 80.0, 0.4)?)?;
/// assert!(outcome.pocd > 0.5);
/// assert!(outcome.utility.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    objective: UtilityModel,
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer with the default configuration.
    #[must_use]
    pub fn new(objective: UtilityModel) -> Self {
        Optimizer {
            objective,
            config: OptimizerConfig::default(),
        }
    }

    /// Creates an optimizer with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizerConfig::validate`] failures.
    pub fn with_config(
        objective: UtilityModel,
        config: OptimizerConfig,
    ) -> Result<Self, ChronosError> {
        config.validate()?;
        Ok(Optimizer { objective, config })
    }

    /// The objective configuration this optimizer maximizes.
    #[must_use]
    pub fn objective(&self) -> &UtilityModel {
        &self.objective
    }

    /// The optimizer configuration.
    #[must_use]
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs Algorithm 1 for a single job / strategy pair.
    ///
    /// # Errors
    ///
    /// * [`ChronosError::Infeasible`] when no `r ≤ r_max` achieves
    ///   `R(r) > R_min`.
    /// * Propagated model-construction and numerical failures.
    pub fn optimize(
        &self,
        job: &JobProfile,
        params: &StrategyParams,
    ) -> Result<OptimizationOutcome, ChronosError> {
        let net = self.objective.for_job(job, params)?;
        self.optimize_net(&net)
    }

    /// Runs Algorithm 1 on an already-bound [`NetUtility`] objective.
    ///
    /// # Errors
    ///
    /// Same as [`optimize`](Self::optimize).
    pub fn optimize_net(&self, net: &NetUtility) -> Result<OptimizationOutcome, ChronosError> {
        let r_max = self.config.r_max;
        let gamma = net.pocd_model().concave_from();

        let mut best: Option<(u32, f64)> = None;
        let consider = |r: u32, utility: f64, best: &mut Option<(u32, f64)>| {
            if utility.is_finite() {
                match best {
                    Some((_, u)) if *u >= utility => {}
                    _ => *best = Some((r, utility)),
                }
            }
        };

        match gamma {
            None => {
                // Speculation cannot reduce the failure probability; the
                // utility is non-increasing in r, so scanning a handful of
                // small values suffices.
                for r in 0..=r_max.min(4) {
                    let u = net.utility(r)?;
                    consider(r, u, &mut best);
                }
            }
            Some(gamma_ceil) => {
                let gamma_ceil = gamma_ceil.min(r_max);
                // Phase 2 of Algorithm 1 (run first here, it is cheap):
                // exhaustively evaluate the non-concave head r < ⌈Γ⌉, plus
                // ⌈Γ⌉ itself.
                for r in 0..=gamma_ceil {
                    let u = net.utility(r)?;
                    consider(r, u, &mut best);
                }
                // Phase 1: continuous search on the concave tail.
                let lo = f64::from(gamma_ceil);
                let hi = f64::from(self.bracket_upper_bound(net, gamma_ceil)?);
                let peak = match self.config.method {
                    SearchMethod::GoldenSection => self.golden_peak(net, lo, hi)?,
                    SearchMethod::GradientAscent => self.gradient_peak(net, lo, hi)?,
                };
                // The integer optimum on a concave function is at ⌊x*⌋ or ⌈x*⌉.
                for candidate in [peak.floor(), peak.ceil()] {
                    if candidate >= 0.0 && candidate <= f64::from(r_max) {
                        let r = candidate as u32;
                        let u = net.utility(r)?;
                        consider(r, u, &mut best);
                    }
                }
            }
        }

        let (r, utility) = best.ok_or_else(|| {
            ChronosError::infeasible(format!(
                "no r in [0, {r_max}] satisfies R(r) > R_min = {}",
                net.objective().r_min()
            ))
        })?;
        Ok(OptimizationOutcome {
            strategy: net.pocd_model().params().kind(),
            r,
            utility,
            pocd: net.pocd(r)?,
            machine_time: net.machine_time(r)?,
            dollar_cost: net.dollar_cost(r)?,
        })
    }

    /// Optimizes every supplied strategy and returns all outcomes sorted by
    /// descending utility (best first). Strategies that are infeasible for
    /// this job are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::Infeasible`] if *every* strategy is
    /// infeasible; other model errors are propagated immediately.
    pub fn rank_strategies(
        &self,
        job: &JobProfile,
        strategies: &[StrategyParams],
    ) -> Result<Vec<OptimizationOutcome>, ChronosError> {
        let mut outcomes = Vec::with_capacity(strategies.len());
        for params in strategies {
            match self.optimize(job, params) {
                Ok(outcome) => outcomes.push(outcome),
                Err(ChronosError::Infeasible { .. })
                | Err(ChronosError::InconsistentParameters { .. }) => continue,
                Err(other) => return Err(other),
            }
        }
        if outcomes.is_empty() {
            return Err(ChronosError::infeasible(
                "every candidate strategy is infeasible for this job",
            ));
        }
        outcomes.sort_by(|a, b| {
            b.utility
                .partial_cmp(&a.utility)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(outcomes)
    }

    /// Reference implementation: exhaustive search over `0..=r_max`.
    ///
    /// Used by tests and benchmarks to confirm Algorithm 1 returns the same
    /// optimum (Theorem 9) at a fraction of the evaluations.
    ///
    /// # Errors
    ///
    /// Same as [`optimize`](Self::optimize).
    pub fn optimize_exhaustive(
        &self,
        job: &JobProfile,
        params: &StrategyParams,
    ) -> Result<OptimizationOutcome, ChronosError> {
        let net = self.objective.for_job(job, params)?;
        let mut best: Option<(u32, f64)> = None;
        for r in 0..=self.config.r_max {
            let u = net.utility(r)?;
            if u.is_finite() {
                match best {
                    Some((_, bu)) if bu >= u => {}
                    _ => best = Some((r, u)),
                }
            }
        }
        let (r, utility) = best
            .ok_or_else(|| ChronosError::infeasible("no feasible r found by exhaustive search"))?;
        Ok(OptimizationOutcome {
            strategy: params.kind(),
            r,
            utility,
            pocd: net.pocd(r)?,
            machine_time: net.machine_time(r)?,
            dollar_cost: net.dollar_cost(r)?,
        })
    }

    /// Finds an upper bracket for the concave-tail search by doubling the
    /// step until the utility drops below its value at the bracket start
    /// (concavity then guarantees the maximum lies inside).
    fn bracket_upper_bound(&self, net: &NetUtility, start: u32) -> Result<u32, ChronosError> {
        let r_max = self.config.r_max;
        let u_start = net.utility(start)?;
        let mut step = 1u32;
        let mut current = start;
        while current < r_max {
            let next = current.saturating_add(step).min(r_max);
            let u_next = net.utility(next)?;
            if u_next < u_start || next == r_max {
                return Ok(next);
            }
            current = next;
            step = step.saturating_mul(2);
        }
        Ok(r_max)
    }

    fn golden_peak(&self, net: &NetUtility, lo: f64, hi: f64) -> Result<f64, ChronosError> {
        if hi <= lo {
            return Ok(lo);
        }
        golden_section_max(
            |r| net.utility_continuous(r).unwrap_or(f64::NEG_INFINITY),
            lo,
            hi,
            1e-4,
        )
    }

    /// Gradient ascent with backtracking, transcribing the loop of
    /// Algorithm 1 onto the continuous relaxation.
    fn gradient_peak(&self, net: &NetUtility, lo: f64, hi: f64) -> Result<f64, ChronosError> {
        let f = |r: f64| net.utility_continuous(r).unwrap_or(f64::NEG_INFINITY);
        let mut r = lo.max(0.0);
        let h = 1e-4;
        for _ in 0..200 {
            let grad = central_difference(f, r.max(h), h);
            if grad.abs() <= self.config.eta {
                break;
            }
            // Ascent direction Δr = ∇U(r); backtrack until the Armijo
            // condition U(r + εΔr) > U(r) + α·ε·∇U(r)·Δr holds.
            let delta = grad;
            let mut eps = 1.0;
            let current = f(r);
            let mut accepted = false;
            for _ in 0..60 {
                let candidate = (r + eps * delta).clamp(lo, hi);
                if f(candidate) > current + self.config.alpha * eps * grad * delta {
                    r = candidate;
                    accepted = true;
                    break;
                }
                eps *= self.config.xi;
            }
            if !accepted {
                break;
            }
        }
        Ok(r.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobProfile {
        JobProfile::builder()
            .tasks(10)
            .t_min(20.0)
            .beta(1.5)
            .deadline(100.0)
            .price(1.0)
            .build()
            .unwrap()
    }

    fn strategies() -> Vec<StrategyParams> {
        vec![
            StrategyParams::clone_strategy(80.0),
            StrategyParams::restart(40.0, 80.0).unwrap(),
            StrategyParams::resume(40.0, 80.0, 0.4).unwrap(),
        ]
    }

    #[test]
    fn config_validation() {
        let mut cfg = OptimizerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.eta = 0.0;
        assert!(cfg.validate().is_err());
        cfg = OptimizerConfig::default();
        cfg.alpha = 1.5;
        assert!(cfg.validate().is_err());
        cfg = OptimizerConfig::default();
        cfg.xi = 0.0;
        assert!(cfg.validate().is_err());
        cfg = OptimizerConfig::default();
        cfg.r_max = 0;
        assert!(cfg.validate().is_err());
        assert!(Optimizer::with_config(UtilityModel::default(), cfg).is_err());
    }

    #[test]
    fn theorem9_hybrid_matches_exhaustive() {
        let objective = UtilityModel::new(1e-4, 0.0).unwrap();
        let optimizer = Optimizer::new(objective);
        for params in strategies() {
            let hybrid = optimizer.optimize(&job(), &params).unwrap();
            let exhaustive = optimizer.optimize_exhaustive(&job(), &params).unwrap();
            assert_eq!(hybrid.r, exhaustive.r, "{:?}", params.kind());
            assert!((hybrid.utility - exhaustive.utility).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_backend_matches_exhaustive() {
        let objective = UtilityModel::new(1e-4, 0.0).unwrap();
        let config = OptimizerConfig {
            method: SearchMethod::GradientAscent,
            ..OptimizerConfig::default()
        };
        let optimizer = Optimizer::with_config(objective, config).unwrap();
        for params in strategies() {
            let hybrid = optimizer.optimize(&job(), &params).unwrap();
            let exhaustive = optimizer.optimize_exhaustive(&job(), &params).unwrap();
            assert_eq!(hybrid.r, exhaustive.r, "{:?}", params.kind());
        }
    }

    #[test]
    fn hybrid_matches_exhaustive_across_thetas_and_deadlines() {
        for theta in [1e-6, 1e-5, 1e-4, 1e-3] {
            for deadline in [60.0, 100.0, 200.0] {
                let job = JobProfile::builder()
                    .tasks(20)
                    .t_min(20.0)
                    .beta(1.4)
                    .deadline(deadline)
                    .build()
                    .unwrap();
                let objective = UtilityModel::new(theta, 0.0).unwrap();
                let optimizer = Optimizer::new(objective);
                for params in [
                    StrategyParams::clone_strategy(0.5 * 20.0),
                    StrategyParams::restart(0.3 * 20.0, 0.8 * 20.0).unwrap(),
                    StrategyParams::resume(0.3 * 20.0, 0.8 * 20.0, 0.3).unwrap(),
                ] {
                    let hybrid = optimizer.optimize(&job, &params).unwrap();
                    let exhaustive = optimizer.optimize_exhaustive(&job, &params).unwrap();
                    assert_eq!(
                        hybrid.r,
                        exhaustive.r,
                        "theta {theta} deadline {deadline} {:?}",
                        params.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn larger_theta_never_increases_optimal_r() {
        // As cost weighs more, the optimizer launches fewer extra attempts
        // (the mechanism behind Figure 5).
        let optimizer_small = Optimizer::new(UtilityModel::new(1e-5, 0.0).unwrap());
        let optimizer_large = Optimizer::new(UtilityModel::new(1e-3, 0.0).unwrap());
        for params in strategies() {
            let small = optimizer_small.optimize(&job(), &params).unwrap();
            let large = optimizer_large.optimize(&job(), &params).unwrap();
            assert!(
                large.r <= small.r,
                "{:?}: r went {} -> {} when theta grew",
                params.kind(),
                small.r,
                large.r
            );
        }
    }

    #[test]
    fn loose_deadline_drives_r_toward_zero() {
        // Non-deadline-sensitive jobs need (almost) no speculation
        // (Section V remark). Clone pays for every task up front, so its
        // optimum collapses to exactly zero; the reactive strategies only pay
        // on the (vanishing) straggler event, so at most one standby attempt
        // survives the optimization.
        let loose = job().with_deadline(5_000.0).unwrap();
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        for params in strategies() {
            let outcome = optimizer.optimize(&loose, &params).unwrap();
            match params.kind() {
                StrategyKind::Clone => assert_eq!(outcome.r, 0),
                _ => assert!(outcome.r <= 1, "{:?}: r = {}", params.kind(), outcome.r),
            }
        }
        // Tight deadlines, by contrast, need speculation.
        let tight = job().with_deadline(60.0).unwrap();
        for params in [
            StrategyParams::clone_strategy(30.0),
            StrategyParams::restart(15.0, 30.0).unwrap(),
        ] {
            let outcome = optimizer.optimize(&tight, &params).unwrap();
            assert!(outcome.r >= 1, "{:?}", params.kind());
        }
    }

    #[test]
    fn infeasible_floor_reported() {
        // R_min practically 1.0 cannot be met with r ≤ 2.
        let objective = UtilityModel::new(1e-4, 0.999_999).unwrap();
        let config = OptimizerConfig {
            r_max: 1,
            ..OptimizerConfig::default()
        };
        let optimizer = Optimizer::with_config(objective, config).unwrap();
        let tight = JobProfile::builder()
            .tasks(50)
            .t_min(20.0)
            .beta(1.1)
            .deadline(25.0)
            .build()
            .unwrap();
        let err = optimizer
            .optimize(&tight, &StrategyParams::clone_strategy(10.0))
            .unwrap_err();
        assert!(matches!(err, ChronosError::Infeasible { .. }));
    }

    #[test]
    fn rank_strategies_sorted_and_skips_infeasible() {
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        let mut candidates = strategies();
        // Add a reactive strategy whose estimation point is hopeless for the
        // deadline; it should be silently skipped.
        candidates.push(StrategyParams::restart(95.0, 99.0).unwrap());
        let ranked = optimizer.rank_strategies(&job(), &candidates).unwrap();
        assert_eq!(ranked.len(), 3);
        for pair in ranked.windows(2) {
            assert!(pair[0].utility >= pair[1].utility);
        }
    }

    #[test]
    fn rank_strategies_all_infeasible_errors() {
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        let hopeless = vec![StrategyParams::restart(95.0, 99.0).unwrap()];
        assert!(optimizer.rank_strategies(&job(), &hopeless).is_err());
    }

    #[test]
    fn outcome_reports_consistent_metrics() {
        let optimizer = Optimizer::new(UtilityModel::new(1e-4, 0.0).unwrap());
        let outcome = optimizer
            .optimize(&job(), &StrategyParams::resume(40.0, 80.0, 0.4).unwrap())
            .unwrap();
        let net = UtilityModel::new(1e-4, 0.0)
            .unwrap()
            .for_job(&job(), &StrategyParams::resume(40.0, 80.0, 0.4).unwrap())
            .unwrap();
        assert!((outcome.pocd - net.pocd(outcome.r).unwrap()).abs() < 1e-12);
        assert!((outcome.machine_time - net.machine_time(outcome.r).unwrap()).abs() < 1e-9);
        assert!((outcome.utility - net.utility(outcome.r).unwrap()).abs() < 1e-9);
        assert!(outcome.dollar_cost > 0.0);
    }
}
