//! Property-based tests (proptest) for the analytical core: the closed forms
//! must respect their structural invariants over the whole parameter domain,
//! not just at the hand-picked values of the unit tests.

use chronos_core::prelude::*;
use proptest::prelude::*;

/// Strategy-space generator: valid job and timing parameters for which every
/// closed form is defined.
fn job_and_timing() -> impl Strategy<Value = (JobProfile, f64, f64, f64)> {
    (
        2u32..200,     // tasks
        5.0f64..60.0,  // t_min
        1.05f64..1.95, // beta
        1.5f64..8.0,   // deadline as multiple of t_min
        0.05f64..0.45, // tau_est as fraction of deadline
        0.1f64..0.9,   // phi_est
    )
        .prop_map(|(tasks, t_min, beta, d_factor, est_frac, phi)| {
            let deadline = d_factor * t_min;
            let job = JobProfile::builder()
                .tasks(tasks)
                .t_min(t_min)
                .beta(beta)
                .deadline(deadline)
                .build()
                .expect("generated job parameters are valid");
            let tau_est = est_frac * deadline;
            let tau_kill = tau_est + 0.4 * t_min;
            (job, tau_est, tau_kill, phi)
        })
        .prop_filter(
            "reactive window must exceed t_min",
            |(job, tau_est, _, _)| job.deadline() - tau_est > job.t_min() + 1e-6,
        )
}

fn all_strategies(tau_est: f64, tau_kill: f64, phi: f64) -> Vec<StrategyParams> {
    vec![
        StrategyParams::clone_strategy(tau_kill),
        StrategyParams::restart(tau_est, tau_kill).expect("valid restart timing"),
        StrategyParams::resume(tau_est, tau_kill, phi).expect("valid resume timing"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pareto CDF and survival are complementary and the quantile inverts
    /// the CDF everywhere.
    #[test]
    fn pareto_cdf_quantile_inverse(
        t_min in 0.5f64..100.0,
        beta in 0.2f64..5.0,
        p in 0.0f64..0.999,
    ) {
        let dist = Pareto::new(t_min, beta).unwrap();
        let q = dist.quantile(p).unwrap();
        prop_assert!((dist.cdf(q) - p).abs() < 1e-9);
        prop_assert!((dist.cdf(q) + dist.survival(q) - 1.0).abs() < 1e-12);
    }

    /// Lemma 1: the closed-form expectation of the minimum equals the mean
    /// of the min-distribution (Pareto with tail n·β).
    #[test]
    fn lemma1_consistent_with_min_distribution(
        t_min in 1.0f64..50.0,
        beta in 0.6f64..3.0,
        n in 1u32..12,
    ) {
        let dist = Pareto::new(t_min, beta).unwrap();
        let nb = f64::from(n) * beta;
        if nb > 1.0 {
            let lemma = dist.expected_min_of(n).unwrap();
            let via_min = dist.min_of(n).unwrap().mean().unwrap();
            prop_assert!((lemma - via_min).abs() < 1e-9 * lemma.max(1.0));
        } else {
            prop_assert!(dist.expected_min_of(n).is_err());
        }
    }

    /// PoCD is a probability, non-decreasing in r, and non-decreasing in the
    /// deadline, for every strategy.
    #[test]
    fn pocd_monotonicity((job, tau_est, tau_kill, phi) in job_and_timing()) {
        for params in all_strategies(tau_est, tau_kill, phi) {
            let model = PocdModel::new(job, params).unwrap();
            let mut previous = 0.0;
            for r in 0..8u32 {
                let value = model.pocd(r).unwrap();
                prop_assert!((0.0..=1.0).contains(&value));
                prop_assert!(value + 1e-12 >= previous, "PoCD decreased in r");
                previous = value;
            }
            let looser = job.with_deadline(job.deadline() * 1.5).unwrap();
            let looser_model = PocdModel::new(looser, params).unwrap();
            prop_assert!(looser_model.pocd(2).unwrap() + 1e-12 >= model.pocd(2).unwrap());
        }
    }

    /// Theorem 7 parts 1 and 2: with identical r and timing, Clone and
    /// S-Resume never do worse than S-Restart.
    #[test]
    fn theorem7_dominance((job, tau_est, tau_kill, phi) in job_and_timing()) {
        let clone = PocdModel::new(job, StrategyParams::clone_strategy(tau_kill)).unwrap();
        let restart =
            PocdModel::new(job, StrategyParams::restart(tau_est, tau_kill).unwrap()).unwrap();
        let resume =
            PocdModel::new(job, StrategyParams::resume(tau_est, tau_kill, phi).unwrap()).unwrap();
        for r in 1..6u32 {
            prop_assert!(clone.pocd(r).unwrap() + 1e-12 >= restart.pocd(r).unwrap());
            prop_assert!(resume.pocd(r).unwrap() + 1e-12 >= restart.pocd(r).unwrap());
        }
    }

    /// The concavity threshold Γ marks exactly where the per-task failure
    /// probability crosses 1/N (the condition behind Theorem 8).
    #[test]
    fn gamma_marks_failure_probability_crossing((job, tau_est, tau_kill, phi) in job_and_timing()) {
        for params in all_strategies(tau_est, tau_kill, phi) {
            let model = PocdModel::new(job, params).unwrap();
            if let Some(gamma) = model.concavity_threshold() {
                let n = f64::from(job.tasks());
                let above = model.task_failure_probability_continuous(gamma.max(0.0) + 1e-6);
                prop_assert!(above <= 1.0 / n + 1e-9);
            }
        }
    }

    /// Expected machine time is finite, positive, and Clone's is always the
    /// largest at the same r ≥ 1 (it pays for clones on every task).
    #[test]
    fn cost_positivity_and_clone_premium((job, tau_est, tau_kill, phi) in job_and_timing()) {
        let clone = CostModel::new(job, StrategyParams::clone_strategy(tau_kill)).unwrap();
        let restart =
            CostModel::new(job, StrategyParams::restart(tau_est, tau_kill).unwrap()).unwrap();
        let resume =
            CostModel::new(job, StrategyParams::resume(tau_est, tau_kill, phi).unwrap()).unwrap();
        for r in 1..5u32 {
            let rf = f64::from(r);
            let c = clone.expected_job_machine_time(rf).unwrap();
            let s = restart.expected_job_machine_time(rf).unwrap();
            let re = resume.expected_job_machine_time(rf).unwrap();
            prop_assert!(c.is_finite() && c > 0.0);
            prop_assert!(s.is_finite() && s > 0.0);
            prop_assert!(re.is_finite() && re > 0.0);
            prop_assert!(c + 1e-9 >= s, "clone {c} should cost at least s-restart {s}");
            prop_assert!(c + 1e-9 >= re, "clone {c} should cost at least s-resume {re}");
        }
    }

    /// Theorem 9: the hybrid optimizer (Algorithm 1) returns the same
    /// optimum as exhaustive search, for every strategy and a range of θ.
    #[test]
    fn algorithm1_is_globally_optimal(
        (job, tau_est, tau_kill, phi) in job_and_timing(),
        theta_exp in -6.0f64..-2.0,
    ) {
        let theta = 10f64.powf(theta_exp);
        let optimizer = Optimizer::new(UtilityModel::new(theta, 0.0).unwrap());
        for params in all_strategies(tau_est, tau_kill, phi) {
            let hybrid = optimizer.optimize(&job, &params).unwrap();
            let exhaustive = optimizer.optimize_exhaustive(&job, &params).unwrap();
            // Ties on utility can legitimately resolve to different r.
            prop_assert!(
                (hybrid.utility - exhaustive.utility).abs() < 1e-9,
                "{:?}: hybrid r={} u={} vs exhaustive r={} u={}",
                params.kind(), hybrid.r, hybrid.utility, exhaustive.r, exhaustive.utility
            );
        }
    }

    /// Frontier sweeps are internally consistent with the underlying models.
    #[test]
    fn frontier_matches_models((job, tau_est, tau_kill, phi) in job_and_timing()) {
        let params = StrategyParams::resume(tau_est, tau_kill, phi).unwrap();
        let frontier = Frontier::sweep(&job, &params, 5).unwrap();
        let pocd = PocdModel::new(job, params).unwrap();
        let cost = CostModel::new(job, params).unwrap();
        for point in frontier.iter() {
            prop_assert!((point.pocd - pocd.pocd(point.r).unwrap()).abs() < 1e-12);
            let expected = cost.expected_job_machine_time(f64::from(point.r)).unwrap();
            prop_assert!((point.machine_time - expected).abs() < 1e-9);
        }
    }

    /// Sampling respects the support and the empirical mean converges to the
    /// analytical mean when it exists.
    #[test]
    fn sampling_matches_support(t_min in 1.0f64..40.0, beta in 1.2f64..3.0, seed in 0u64..1_000) {
        use rand::SeedableRng;
        let dist = Pareto::new(t_min, beta).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples = dist.sample_n(&mut rng, 2_000);
        prop_assert!(samples.iter().all(|s| *s >= t_min));
        let median_sample = {
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[sorted.len() / 2]
        };
        // The sample median is a robust statistic even for heavy tails.
        prop_assert!((median_sample - dist.median()).abs() / dist.median() < 0.2);
    }
}
