//! The planning server: worker pool, request/response types, admission
//! logic, latency accounting and the decisions digest.

use crate::queue::{BoundedQueue, PushError};
use chronos_core::prelude::*;
use chronos_obs::{DecisionTrace, MetricsRegistry, TraceEvent};
use chronos_plan::{CacheStats, PlanCache, PlanResult, Planner, ProfileKey, SpeculationBudget};
use chronos_sim::prelude::{JobId, JobSpec, JobSubmitView, LatencyHistogram};
use chronos_strategies::prelude::{
    ChronosPolicyConfig, PolicyBuilder, PolicyPlanner, StrategyTiming,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How many work items a worker pops per queue round trip: large enough to
/// amortize the queue lock, small enough that one worker cannot starve the
/// others under a bursty arrival stream.
const POP_BATCH: usize = 32;

/// One admission request: a job, as it would be submitted, plus a
/// caller-assigned id that survives into the response (responses complete
/// out of submission order across workers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-assigned correlation id, echoed in the response.
    pub request_id: u64,
    /// The job to decide admission for.
    pub job: JobSpec,
}

/// What the server decided for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// Whether any strategy can be optimized for this job (deadline
    /// feasible). When `false` every other field is zero/`None`.
    pub feasible: bool,
    /// The utility-maximizing strategy (ties break in
    /// [`StrategyKind::ALL`] order, so the choice is deterministic).
    pub strategy: Option<StrategyKind>,
    /// The optimal number of extra speculative copies `r`.
    pub copies: u32,
    /// PoCD at the optimum.
    pub pocd: f64,
    /// Expected dollar cost at the optimum.
    pub dollar_cost: f64,
    /// Net utility at the optimum.
    pub utility: f64,
    /// The cluster-wide speculation budget left *after* this decision's
    /// debit, when the server runs under [`SpeculationBudget::Limited`];
    /// `None` when it runs unbudgeted. Serving-side observability only:
    /// the field is excluded from [`decisions_digest`], because under a
    /// finite budget the grant sequence depends on admission order anyway.
    pub remaining_budget: Option<u64>,
}

impl AdmissionDecision {
    /// The decision for a job no strategy can be optimized for.
    #[must_use]
    pub fn infeasible() -> Self {
        AdmissionDecision {
            feasible: false,
            strategy: None,
            copies: 0,
            pocd: 0.0,
            dollar_cost: 0.0,
            utility: 0.0,
            remaining_budget: None,
        }
    }

    /// Whether the cluster-wide speculation budget, not the deadline
    /// analysis, suppressed this job's speculative copies: the deadline is
    /// feasible, but no strategy (and no copies) was granted. Such jobs
    /// are still admitted — they run unspeculated, like under Hadoop-NS.
    #[must_use]
    pub fn budget_denied(&self) -> bool {
        self.feasible && self.strategy.is_none()
    }
}

/// One admission response, carrying its request's correlation id.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// The correlation id of the request this answers.
    pub request_id: u64,
    /// The job the decision applies to.
    pub job: JobId,
    /// The admission decision.
    pub decision: AdmissionDecision,
}

/// Why the server could not take a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue could not admit the batch: explicit backpressure.
    /// The caller decides whether to retry, shed or degrade.
    Overloaded {
        /// The server's queue capacity.
        capacity: usize,
    },
    /// The server is shutting down; no new work is accepted.
    ShuttingDown,
    /// The configuration was rejected at startup.
    InvalidConfig(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "server overloaded (queue capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidConfig(why) => write!(f, "invalid serve config: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A rejected submission: the error plus the batch, returned to the caller
/// in submission order so no request is lost to backpressure.
#[derive(Debug)]
pub struct Rejected {
    /// Why the batch was rejected.
    pub error: ServeError,
    /// The rejected requests, ownership returned.
    pub requests: Vec<ServeRequest>,
}

/// How the server measures per-request latency.
///
/// Wall-clock latencies are inherently nondeterministic, which would make
/// the "merged per-worker histograms equal a single-threaded replay"
/// property untestable. The synthetic probe replaces the clock with a pure
/// function of the job, so tests can pin histogram merging bit-exactly
/// while production keeps real measurements.
#[derive(Debug, Clone, Copy)]
pub enum LatencyProbe {
    /// Microseconds from enqueue to decision (queueing delay included —
    /// that is the latency a submitter observes).
    WallMicros,
    /// A deterministic per-job pseudo-latency in microseconds.
    SyntheticMicros(fn(&JobSpec) -> f64),
}

/// Planning-server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads (thread-per-core is the intended deployment).
    pub workers: u32,
    /// Bounded-queue capacity: the backpressure knob. Small capacities
    /// bound queueing delay (and therefore tail latency); large ones
    /// absorb burstier arrivals before rejecting.
    pub queue_capacity: usize,
    /// The Chronos policy configuration decisions are optimized under.
    pub policy: ChronosPolicyConfig,
    /// Latency measurement mode.
    pub probe: LatencyProbe,
    /// Capacity of each worker's local plan memo (layered over the shared
    /// cache so hot profiles skip the stripe lock entirely). The memo is
    /// cleared wholesale when full — it is a throughput lever, not a
    /// correctness one.
    pub local_memo_capacity: usize,
    /// The cluster-wide speculation budget: how many extra copies the
    /// server may grant in total across its lifetime. Under
    /// [`SpeculationBudget::Limited`] every feasible decision debits its
    /// optimal copy count atomically, all-or-nothing: a job whose full
    /// grant no longer fits is admitted *without* speculation (see
    /// [`AdmissionDecision::budget_denied`]) rather than partially funded
    /// with copies the closed forms never valued. Unlimited (the default)
    /// reproduces the historical per-job-optimal decisions exactly.
    pub budget: SpeculationBudget,
    /// Per-worker decision-trace ring capacity. `None` (the default)
    /// disables recording entirely — the worker hot loop keeps a single
    /// never-taken branch. `Some(capacity)` records one
    /// [`TraceEvent::ServeAdmitted`] per decision (stamped with the job's
    /// deterministic submit time, never the wall clock) plus submit-side
    /// [`TraceEvent::ServeOverloaded`] events; collect the merged,
    /// request-id-sorted trace with [`PlanServer::shutdown_with_trace`].
    pub decision_trace: Option<usize>,
}

impl ServeConfig {
    /// A configuration with the trace-replay policy defaults (testbed
    /// objective, trace-scaled `τ_est`/`τ_kill`), wall-clock latencies and
    /// a reasonable local memo.
    #[must_use]
    pub fn new(workers: u32, queue_capacity: usize) -> Self {
        ServeConfig {
            workers,
            queue_capacity,
            policy: ChronosPolicyConfig::testbed().with_timing(StrategyTiming::trace_default()),
            probe: LatencyProbe::WallMicros,
            local_memo_capacity: 1_024,
            budget: SpeculationBudget::Unlimited,
            decision_trace: None,
        }
    }

    /// Replaces the latency probe.
    #[must_use]
    pub fn with_probe(mut self, probe: LatencyProbe) -> Self {
        self.probe = probe;
        self
    }

    /// Replaces the policy configuration.
    #[must_use]
    pub fn with_policy(mut self, policy: ChronosPolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the cluster-wide speculation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SpeculationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables per-worker decision tracing with the given ring capacity
    /// (see [`ServeConfig::decision_trace`]; pass `usize::MAX` for an
    /// effectively unbounded ring).
    #[must_use]
    pub fn with_decision_trace(mut self, capacity: usize) -> Self {
        self.decision_trace = Some(capacity);
        self
    }
}

/// Server-wide statistics. Per-worker histograms merge monoidally (in
/// worker-index order, though element-wise integer addition is commutative
/// anyway) into one [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests decided and completed.
    pub served: u64,
    /// Requests rejected with [`ServeError::Overloaded`] or
    /// [`ServeError::ShuttingDown`].
    pub rejected: u64,
    /// Merged per-request latency histogram. **The recorded unit is
    /// microseconds**, not seconds: the histogram's log₂ buckets start at
    /// `[0, 1)`, so recording seconds would collapse every sub-second
    /// decision into bucket 0. Bucket `i` therefore covers
    /// `[2^(i−1), 2^i)` µs here.
    pub latency: LatencyHistogram,
    /// Counter snapshot of the shared plan cache.
    pub cache: CacheStats,
}

impl ServerStats {
    /// Exports the statistics into a
    /// [`MetricsRegistry`](chronos_obs::MetricsRegistry) under the
    /// `chronos_serve_*` namespace (the plan cache exports under its own
    /// `chronos_plan_cache_*` names).
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        registry.counter_add(
            "chronos_serve_served_total",
            "Requests decided and completed",
            self.served,
        );
        registry.counter_add(
            "chronos_serve_rejected_total",
            "Requests rejected (overloaded or shutting down)",
            self.rejected,
        );
        registry.histogram_merge(
            "chronos_serve_latency_micros",
            "Enqueue-to-decision latency distribution (log2 buckets, microseconds)",
            self.latency.to_metric(),
        );
        self.cache.export_metrics(registry);
    }
}

/// The slots a batch's responses land in, plus the countdown to done.
#[derive(Debug)]
struct BatchSlots {
    responses: Vec<Option<ServeResponse>>,
    remaining: usize,
}

/// Completion state shared between a [`Ticket`] and the workers deciding
/// its batch.
#[derive(Debug)]
struct BatchState {
    slots: Mutex<BatchSlots>,
    done: Condvar,
}

impl BatchState {
    fn new(len: usize) -> Self {
        BatchState {
            slots: Mutex::new(BatchSlots {
                responses: (0..len).map(|_| None).collect(),
                remaining: len,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, slot: usize, response: ServeResponse) {
        let mut slots = self.slots.lock().expect("batch lock poisoned");
        if slots.responses[slot].replace(response).is_none() {
            slots.remaining -= 1;
        }
        if slots.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A claim on an accepted batch's responses. [`Ticket::wait`] blocks until
/// every request in the batch is decided and returns the responses in
/// submission order.
#[derive(Debug)]
#[must_use = "an unawaited ticket drops its responses"]
pub struct Ticket {
    batch: Arc<BatchState>,
}

impl Ticket {
    /// Blocks until the whole batch is decided; responses come back in the
    /// order the requests were submitted.
    pub fn wait(self) -> Vec<ServeResponse> {
        let mut slots = self.batch.slots.lock().expect("batch lock poisoned");
        while slots.remaining > 0 {
            slots = self
                .batch
                .done
                .wait(slots)
                .expect("batch lock poisoned while waiting");
        }
        slots
            .responses
            .iter_mut()
            .map(|slot| slot.take().expect("completed batch fills every slot"))
            .collect()
    }
}

/// One unit of queued work.
#[derive(Debug)]
struct WorkItem {
    request: ServeRequest,
    slot: usize,
    batch: Arc<BatchState>,
    enqueued: Instant,
}

/// State shared by the submitter-facing handle and every worker.
#[derive(Debug)]
struct ServerShared {
    queue: BoundedQueue<WorkItem>,
    cache: Arc<PlanCache>,
    served: AtomicU64,
    rejected: AtomicU64,
    histograms: Vec<Mutex<LatencyHistogram>>,
    /// Remaining speculation-budget tokens; `None` when unbudgeted.
    budget_remaining: Option<AtomicU64>,
    /// Decision traces when [`ServeConfig::decision_trace`] is set: one per
    /// worker plus a final submit-side trace (index `workers`) for
    /// overload events, which have no owning worker.
    traces: Option<Vec<Mutex<DecisionTrace>>>,
}

/// The worker-side admission planner: builds the per-strategy plan
/// requests, memoizes results in a small worker-local map layered over the
/// shared single-flight [`PlanCache`], and picks the utility-maximizing
/// strategy deterministically.
struct AdmissionPlanner {
    requests: PolicyPlanner,
    planner: Planner,
    memo: HashMap<ProfileKey, PlanResult>,
    memo_capacity: usize,
}

impl AdmissionPlanner {
    fn new(config: &ServeConfig, cache: Arc<PlanCache>) -> Result<Self, ServeError> {
        // The same construction path the simulator's budgeted policies use
        // (`PolicyBuilder`), so online admission and batch replay are
        // guaranteed to run identical closed forms over the shared cache.
        let (requests, planner) = PolicyBuilder::new(config.policy)
            .cached(cache)
            .admission_parts()
            .map_err(|err| ServeError::InvalidConfig(err.to_string()))?;
        Ok(AdmissionPlanner {
            requests,
            planner,
            memo: HashMap::new(),
            memo_capacity: config.local_memo_capacity.max(1),
        })
    }

    fn plan(&mut self, view: &JobSubmitView, kind: StrategyKind) -> Option<PlanResult> {
        let request = self.requests.request_for(view, kind).ok()?;
        let key = self.planner.key_of(&request);
        if let Some(result) = self.memo.get(&key) {
            return Some(result.clone());
        }
        let result = self.planner.plan_request(&request);
        if self.memo.len() >= self.memo_capacity {
            self.memo.clear();
        }
        self.memo.insert(key, result.clone());
        Some(result)
    }

    /// Decides one job: every strategy in [`StrategyKind::ALL`] is planned
    /// and the highest-utility feasible one wins (strictly-greater
    /// comparison, so ties resolve to the earliest kind — deterministic
    /// regardless of which worker decides).
    fn decide(&mut self, job: &JobSpec) -> AdmissionDecision {
        let view = JobSubmitView {
            job: job.id,
            task_count: job.task_count() as u32,
            deadline_secs: job.deadline_secs,
            price: job.price,
            profile: job.profile,
        };
        let mut best: Option<(StrategyKind, OptimizationOutcome)> = None;
        for kind in StrategyKind::ALL {
            let Some(Ok(plan)) = self.plan(&view, kind) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((_, incumbent)) => plan.outcome.utility > incumbent.utility,
            };
            if better {
                best = Some((kind, plan.outcome));
            }
        }
        match best {
            Some((kind, outcome)) => AdmissionDecision {
                feasible: true,
                strategy: Some(kind),
                copies: outcome.r,
                pocd: outcome.pocd,
                dollar_cost: outcome.dollar_cost,
                utility: outcome.utility,
                remaining_budget: None,
            },
            None => AdmissionDecision::infeasible(),
        }
    }
}

/// The long-running admission-control planning server. See the crate docs
/// for the queue shape, backpressure semantics and shutdown protocol.
#[derive(Debug)]
pub struct PlanServer {
    shared: Arc<ServerShared>,
    config: ServeConfig,
    handles: Vec<JoinHandle<()>>,
}

impl PlanServer {
    /// Starts the worker pool over a fresh shared plan cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `workers` or `queue_capacity` is
    /// zero, or the policy's optimizer configuration fails validation.
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        PlanServer::start_with_cache(config, PlanCache::shared())
    }

    /// Starts the worker pool over an existing shared cache (e.g. one
    /// pre-warmed by a batch replay).
    ///
    /// # Errors
    ///
    /// As for [`PlanServer::start`].
    pub fn start_with_cache(
        config: ServeConfig,
        cache: Arc<PlanCache>,
    ) -> Result<Self, ServeError> {
        let mut server = PlanServer::build(config, cache)?;
        server.launch_workers();
        Ok(server)
    }

    /// Builds the server without launching workers. Used directly by tests
    /// that need a deterministically full queue (no consumer racing the
    /// submitter); everything else goes through [`PlanServer::start`].
    fn build(config: ServeConfig, cache: Arc<PlanCache>) -> Result<Self, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers: must be at least 1".to_string(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity: must be at least 1".to_string(),
            ));
        }
        // Validate the optimizer configuration up front: a broken config
        // should fail startup loudly, not turn every decision infeasible.
        PolicyBuilder::new(config.policy)
            .admission_parts()
            .map_err(|err| ServeError::InvalidConfig(err.to_string()))?;
        let shared = Arc::new(ServerShared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache,
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            histograms: (0..config.workers)
                .map(|_| Mutex::new(LatencyHistogram::new()))
                .collect(),
            budget_remaining: match config.budget {
                SpeculationBudget::Unlimited => None,
                SpeculationBudget::Limited(tokens) => Some(AtomicU64::new(tokens)),
            },
            traces: config.decision_trace.map(|capacity| {
                (0..=config.workers)
                    .map(|_| Mutex::new(DecisionTrace::bounded(capacity.max(1))))
                    .collect()
            }),
        });
        Ok(PlanServer {
            shared,
            config,
            handles: Vec::new(),
        })
    }

    fn launch_workers(&mut self) {
        for index in 0..self.config.workers as usize {
            let shared = Arc::clone(&self.shared);
            let config = self.config;
            self.handles.push(std::thread::spawn(move || {
                worker_loop(&shared, index, &config);
            }));
        }
    }

    /// The server's queue capacity.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// The shared plan cache backing every worker.
    #[must_use]
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.shared.cache
    }

    /// Submits a batch of requests. The whole batch is admitted or
    /// rejected atomically and **the call never blocks**: backpressure
    /// surfaces as [`ServeError::Overloaded`] with the batch returned, and
    /// the caller chooses its overload policy (retry, shed, degrade).
    ///
    /// # Errors
    ///
    /// [`Rejected`] with [`ServeError::Overloaded`] when the queue cannot
    /// take the batch, or [`ServeError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, requests: Vec<ServeRequest>) -> Result<Ticket, Rejected> {
        let enqueued = Instant::now();
        let batch = Arc::new(BatchState::new(requests.len()));
        let items: Vec<WorkItem> = requests
            .into_iter()
            .enumerate()
            .map(|(slot, request)| WorkItem {
                request,
                slot,
                batch: Arc::clone(&batch),
                enqueued,
            })
            .collect();
        match self.shared.queue.try_push_all(items) {
            Ok(()) => Ok(Ticket { batch }),
            Err((push_error, items)) => {
                self.shared
                    .rejected
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                if let Some(traces) = &self.shared.traces {
                    // Submit-side slot (index `workers`): rejections have no
                    // owning worker. Overload is load-dependent by nature, so
                    // these events are honest but not worker-count-invariant
                    // (see the digest-safety notes in docs/observability.md).
                    traces[traces.len() - 1]
                        .lock()
                        .expect("trace lock poisoned")
                        .record(
                            0,
                            TraceEvent::ServeOverloaded {
                                rejected: items.len() as u64,
                            },
                        );
                }
                let error = match push_error {
                    PushError::Full { capacity } => ServeError::Overloaded { capacity },
                    PushError::Closed => ServeError::ShuttingDown,
                };
                Err(Rejected {
                    error,
                    requests: items.into_iter().map(|item| item.request).collect(),
                })
            }
        }
    }

    /// Submits a single request (see [`PlanServer::submit`]).
    ///
    /// # Errors
    ///
    /// As for [`PlanServer::submit`].
    pub fn submit_one(&self, request: ServeRequest) -> Result<Ticket, Rejected> {
        self.submit(vec![request])
    }

    /// A live snapshot of the server statistics (workers keep running).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        collect_stats(&self.shared)
    }

    /// Graceful shutdown: closes the queue (new submissions are rejected
    /// with [`ServeError::ShuttingDown`]), lets the workers drain every
    /// already-accepted request, joins them, and returns the final
    /// statistics. No accepted request is dropped.
    #[must_use]
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        collect_stats(&self.shared)
    }

    /// [`PlanServer::shutdown`] plus the merged decision trace. Per-worker
    /// traces are folded in worker-index order and the admitted events
    /// sorted by request id — the same canonicalization as
    /// [`decisions_digest`] — so for an unbudgeted, never-overloaded
    /// server the trace digest is worker-count-invariant. Returns an empty
    /// trace when [`ServeConfig::decision_trace`] was off.
    #[must_use]
    pub fn shutdown_with_trace(mut self) -> (ServerStats, DecisionTrace) {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let stats = collect_stats(&self.shared);
        let mut merged = DecisionTrace::new();
        if let Some(traces) = &self.shared.traces {
            for trace in traces {
                let taken = std::mem::take(&mut *trace.lock().expect("trace lock poisoned"));
                merged.merge(taken);
            }
            merged.sort_records_by(|record| match record.event {
                TraceEvent::ServeAdmitted { request, .. } => (0u8, request),
                // Submit-side overload events sort after every admission;
                // their count is load-dependent anyway.
                _ => (1u8, u64::MAX),
            });
        }
        (stats, merged)
    }

    /// A live [`MetricsRegistry`] snapshot of the server — the exportable
    /// form of [`PlanServer::stats`] (Prometheus text via
    /// [`MetricsRegistry::render_prometheus`], JSON via
    /// [`MetricsRegistry::render_json`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.stats().export_metrics(&mut registry);
        registry
    }
}

impl Drop for PlanServer {
    /// Dropping the server without [`PlanServer::shutdown`] still drains
    /// and joins — abandoned worker threads would outlive the process's
    /// expectations otherwise.
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn collect_stats(shared: &ServerShared) -> ServerStats {
    let mut latency = LatencyHistogram::new();
    // Worker-index order: merging is commutative, but a fixed order keeps
    // the merge sequence itself reproducible.
    for histogram in &shared.histograms {
        latency.merge(&histogram.lock().expect("histogram lock poisoned"));
    }
    ServerStats {
        served: shared.served.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        latency,
        cache: shared.cache.stats(),
    }
}

fn worker_loop(shared: &ServerShared, index: usize, config: &ServeConfig) {
    let mut planner = AdmissionPlanner::new(config, Arc::clone(&shared.cache))
        .expect("config was validated at startup");
    loop {
        let items = shared.queue.pop_many(POP_BATCH);
        if items.is_empty() {
            // Closed and fully drained: the shutdown protocol's exit signal.
            return;
        }
        for item in items {
            let mut decision = planner.decide(&item.request.job);
            if let Some(remaining) = &shared.budget_remaining {
                decision = debit_budget(remaining, decision);
            }
            let micros = match config.probe {
                LatencyProbe::WallMicros => item.enqueued.elapsed().as_secs_f64() * 1e6,
                LatencyProbe::SyntheticMicros(f) => f(&item.request.job),
            };
            shared.histograms[index]
                .lock()
                .expect("histogram lock poisoned")
                .record_secs(micros);
            let response = ServeResponse {
                request_id: item.request.request_id,
                job: item.request.job.id,
                decision,
            };
            if let Some(traces) = &shared.traces {
                // Stamped with the job's submit time — deterministic — and
                // sorted by request id at collection, mirroring
                // `decisions_digest`'s worker-count-invariance argument.
                traces[index].lock().expect("trace lock poisoned").record(
                    item.request.job.submit_time.as_micros(),
                    TraceEvent::ServeAdmitted {
                        request: response.request_id,
                        job: response.job.raw(),
                        feasible: response.decision.feasible,
                        strategy: strategy_ordinal(response.decision.strategy),
                        copies: response.decision.copies,
                    },
                );
            }
            item.batch.complete(item.slot, response);
            shared.served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Debits a finite speculation budget for one decision, all-or-nothing: a
/// feasible decision either reserves its full optimal copy count (CAS loop
/// — workers debit concurrently) or, when the remaining tokens cannot cover
/// it, is downgraded to admission without speculation. Partial grants are
/// never made: the closed forms valued the *optimal* `r`, not a truncation
/// of it, so buying fewer copies than planned would report utilities the
/// plan no longer earns. Every decision — including infeasible ones, which
/// cost nothing — reports the tokens left after its debit.
fn debit_budget(remaining: &AtomicU64, decision: AdmissionDecision) -> AdmissionDecision {
    let cost = u64::from(decision.copies);
    let mut current = remaining.load(Ordering::Relaxed);
    loop {
        if cost == 0 {
            return AdmissionDecision {
                remaining_budget: Some(current),
                ..decision
            };
        }
        if current < cost {
            return AdmissionDecision {
                strategy: None,
                copies: 0,
                pocd: 0.0,
                dollar_cost: 0.0,
                utility: 0.0,
                remaining_budget: Some(current),
                ..decision
            };
        }
        match remaining.compare_exchange_weak(
            current,
            current - cost,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                return AdmissionDecision {
                    remaining_budget: Some(current - cost),
                    ..decision
                }
            }
            Err(observed) => current = observed,
        }
    }
}

/// FNV-1a 64 digest over the batch's *decision* fields (ids, feasibility,
/// strategy, copy counts), as a hex string. Responses are digested in
/// ascending `request_id` order, so any submission/completion interleaving
/// of the same decisions produces the same digest. Float fields (PoCD,
/// cost, utility) are deliberately excluded: they flow through platform
/// libm, and this digest is hard-checked across hosts by the baseline's
/// `--check` mode and CI's `serve-smoke` job.
/// [`AdmissionDecision::remaining_budget`] is excluded too — it is a
/// serving-side observability field, and under a finite budget the grant
/// sequence (and so the digest-relevant `copies` values) already depends on
/// the order workers admit jobs; only unbudgeted digests are
/// worker-count-invariant.
#[must_use]
pub fn decisions_digest(responses: &[ServeResponse]) -> String {
    let mut ordered: Vec<&ServeResponse> = responses.iter().collect();
    ordered.sort_unstable_by_key(|response| response.request_id);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for byte in bytes {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for response in ordered {
        eat(&response.request_id.to_le_bytes());
        eat(&response.job.raw().to_le_bytes());
        eat(&[u8::from(response.decision.feasible)]);
        eat(&[strategy_ordinal(response.decision.strategy)]);
        eat(&response.decision.copies.to_le_bytes());
    }
    format!("{hash:016x}")
}

/// The stable one-byte encoding of a strategy choice, shared by
/// [`decisions_digest`] and the decision trace's
/// [`TraceEvent::ServeAdmitted`] events (Clone = 0, SpeculativeRestart = 1,
/// SpeculativeResume = 2, no speculation = 255).
#[must_use]
pub fn strategy_ordinal(strategy: Option<StrategyKind>) -> u8 {
    match strategy {
        None => u8::MAX,
        Some(StrategyKind::Clone) => 0,
        Some(StrategyKind::SpeculativeRestart) => 1,
        Some(StrategyKind::SpeculativeResume) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_sim::prelude::SimTime;

    fn job(id: u64, deadline: f64) -> JobSpec {
        JobSpec::new(JobId::new(id), SimTime::ZERO, deadline, 10)
    }

    fn request(id: u64, deadline: f64) -> ServeRequest {
        ServeRequest {
            request_id: id,
            job: job(id, deadline),
        }
    }

    #[test]
    fn start_rejects_zero_workers_and_zero_capacity() {
        let err = PlanServer::start(ServeConfig::new(0, 8)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(ref why) if why.contains("workers")));
        let err = PlanServer::start(ServeConfig::new(1, 0)).unwrap_err();
        assert!(
            matches!(err, ServeError::InvalidConfig(ref why) if why.contains("queue_capacity"))
        );
    }

    #[test]
    fn start_rejects_a_broken_optimizer_config() {
        let mut config = ServeConfig::new(1, 8);
        config.policy.optimizer.eta = 0.0;
        let err = PlanServer::start(config).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(ref why) if why.contains("eta")));
    }

    #[test]
    fn serves_a_batch_and_decides_deterministically() {
        let server = PlanServer::start(ServeConfig::new(2, 16)).unwrap();
        let ticket = server
            .submit((0..8).map(|i| request(i, 100.0)).collect())
            .unwrap();
        let responses = ticket.wait();
        assert_eq!(responses.len(), 8);
        for (index, response) in responses.iter().enumerate() {
            // Submission order, with the correlation ids echoed back.
            assert_eq!(response.request_id, index as u64);
            assert!(response.decision.feasible);
            assert!(response.decision.strategy.is_some());
            assert!(response.decision.copies >= 1);
        }
        // All 8 jobs share one profile: every decision is identical.
        for response in &responses[1..] {
            assert_eq!(response.decision, responses[0].decision);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 8);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.latency.total(), 8);
        // Three strategies planned for one distinct profile: three solves,
        // everything else came from a cache or memo layer.
        assert!(stats.cache.misses <= 3);
    }

    #[test]
    fn infeasible_jobs_get_a_typed_negative_decision() {
        let server = PlanServer::start(ServeConfig::new(1, 4)).unwrap();
        // Deadline at t_min: no strategy (not even Clone) can be built.
        let responses = server.submit_one(request(0, 1.0)).unwrap().wait();
        assert_eq!(responses[0].decision, AdmissionDecision::infeasible());
        let _ = server.shutdown();
    }

    #[test]
    fn overload_is_deterministic_when_no_worker_drains() {
        // Paused start: workers never launch, so the queue state is fully
        // under the test's control — no racing consumer can make room.
        let server = PlanServer::build(ServeConfig::new(1, 2), PlanCache::shared()).unwrap();
        let _accepted = server
            .submit(vec![request(0, 100.0), request(1, 100.0)])
            .unwrap();
        let rejected = server.submit_one(request(2, 100.0)).unwrap_err();
        assert_eq!(rejected.error, ServeError::Overloaded { capacity: 2 });
        assert_eq!(rejected.requests.len(), 1);
        assert_eq!(rejected.requests[0].request_id, 2);
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn batches_larger_than_the_queue_are_rejected_not_blocked() {
        let server = PlanServer::start(ServeConfig::new(1, 2)).unwrap();
        let batch: Vec<ServeRequest> = (0..3).map(|i| request(i, 100.0)).collect();
        let rejected = server.submit(batch).unwrap_err();
        assert_eq!(rejected.error, ServeError::Overloaded { capacity: 2 });
        assert_eq!(rejected.requests.len(), 3);
        // Ownership returned in submission order.
        assert_eq!(rejected.requests[0].request_id, 0);
        assert_eq!(rejected.requests[2].request_id, 2);
        let _ = server.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_began_are_rejected_as_shutting_down() {
        let server = PlanServer::start(ServeConfig::new(1, 4)).unwrap();
        server.shared.queue.close();
        let rejected = server.submit_one(request(0, 100.0)).unwrap_err();
        assert_eq!(rejected.error, ServeError::ShuttingDown);
    }

    #[test]
    fn empty_submission_completes_immediately() {
        let server = PlanServer::start(ServeConfig::new(1, 4)).unwrap();
        let responses = server.submit(Vec::new()).unwrap().wait();
        assert!(responses.is_empty());
        let _ = server.shutdown();
    }

    #[test]
    fn digest_is_submission_order_invariant_and_decision_sensitive() {
        let decision = AdmissionDecision {
            feasible: true,
            strategy: Some(StrategyKind::Clone),
            copies: 2,
            pocd: 0.9,
            dollar_cost: 10.0,
            utility: -0.1,
            remaining_budget: None,
        };
        let a = ServeResponse {
            request_id: 0,
            job: JobId::new(0),
            decision,
        };
        let b = ServeResponse {
            request_id: 1,
            job: JobId::new(1),
            decision,
        };
        assert_eq!(decisions_digest(&[a, b]), decisions_digest(&[b, a]));
        // Floats are excluded: a libm-shifted utility digests identically…
        let mut float_shift = b;
        float_shift.decision.utility += 1e-9;
        assert_eq!(
            decisions_digest(&[a, b]),
            decisions_digest(&[a, float_shift])
        );
        // …but any decision field difference changes the digest.
        let mut different = b;
        different.decision.copies = 3;
        assert_ne!(decisions_digest(&[a, b]), decisions_digest(&[a, different]));
        // `remaining_budget` is observability, not decision: excluded.
        let mut budget_shift = b;
        budget_shift.decision.remaining_budget = Some(3);
        assert_eq!(
            decisions_digest(&[a, b]),
            decisions_digest(&[a, budget_shift])
        );
    }

    #[test]
    fn a_finite_budget_drains_all_or_nothing_in_admission_order() {
        // Learn the per-job optimum from an unbudgeted server first.
        let server = PlanServer::start(ServeConfig::new(1, 16)).unwrap();
        let optimal = server.submit_one(request(0, 100.0)).unwrap().wait()[0].decision;
        let _ = server.shutdown();
        assert!(optimal.feasible);
        assert_eq!(optimal.remaining_budget, None);
        let per_job = u64::from(optimal.copies);
        assert!(per_job >= 1);

        // Two full grants' worth of tokens, four identical jobs, one
        // worker: FIFO pop order makes the grant sequence the submission
        // order, so the test is deterministic.
        let config = ServeConfig::new(1, 16).with_budget(SpeculationBudget::Limited(2 * per_job));
        let server = PlanServer::start(config).unwrap();
        let responses = server
            .submit((0..4).map(|i| request(i, 100.0)).collect())
            .unwrap()
            .wait();
        let _ = server.shutdown();

        for funded in &responses[..2] {
            assert_eq!(funded.decision.strategy, optimal.strategy);
            assert_eq!(funded.decision.copies, optimal.copies);
            assert!(!funded.decision.budget_denied());
        }
        assert_eq!(responses[0].decision.remaining_budget, Some(per_job));
        assert_eq!(responses[1].decision.remaining_budget, Some(0));
        for denied in &responses[2..] {
            assert!(denied.decision.budget_denied());
            assert!(denied.decision.feasible);
            assert_eq!(denied.decision.strategy, None);
            assert_eq!(denied.decision.copies, 0);
            assert_eq!(denied.decision.remaining_budget, Some(0));
        }
    }

    #[test]
    fn infeasible_jobs_never_debit_the_budget() {
        let server = PlanServer::start(ServeConfig::new(1, 16)).unwrap();
        let optimal = server.submit_one(request(0, 100.0)).unwrap().wait()[0].decision;
        let _ = server.shutdown();
        let per_job = u64::from(optimal.copies);

        // Exactly one grant's worth of tokens; the infeasible job decided
        // first must not consume any of it.
        let config = ServeConfig::new(1, 16).with_budget(SpeculationBudget::Limited(per_job));
        let server = PlanServer::start(config).unwrap();
        let responses = server
            .submit(vec![request(0, 1.0), request(1, 100.0)])
            .unwrap()
            .wait();
        let _ = server.shutdown();
        assert!(!responses[0].decision.feasible);
        assert!(!responses[0].decision.budget_denied());
        assert_eq!(responses[0].decision.remaining_budget, Some(per_job));
        assert_eq!(responses[1].decision.copies, optimal.copies);
        assert_eq!(responses[1].decision.remaining_budget, Some(0));
    }

    /// The per-job latency a synthetic probe reports: a pure function of
    /// the job id, so a single-threaded reference recorder can replay the
    /// exact values the racing workers recorded.
    fn synthetic_latency(job: &JobSpec) -> f64 {
        (job.id.raw() * 37 + 5) as f64
    }

    #[test]
    fn stats_merge_is_exact_when_shutdown_races_inflight_workers() {
        let config =
            ServeConfig::new(4, 64).with_probe(LatencyProbe::SyntheticMicros(synthetic_latency));
        let server = PlanServer::start(config).unwrap();
        let mut tickets = Vec::new();
        for batch in 0..3u64 {
            let requests: Vec<ServeRequest> = (batch * 8..batch * 8 + 8)
                .map(|i| request(i, 100.0))
                .collect();
            tickets.push(server.submit(requests).unwrap());
        }
        // Shut down immediately: the four workers are still draining the 24
        // accepted requests, so `collect_stats` merges per-worker histograms
        // that were being filled right up to the join.
        let stats = server.shutdown();
        assert_eq!(stats.served, 24);
        assert_eq!(stats.rejected, 0);
        // The shutdown protocol drains accepted work: every ticket completes.
        for ticket in tickets {
            assert_eq!(ticket.wait().len(), 8);
        }
        // The merged histogram is bit-identical to a single-threaded recorder
        // fed the same probe values — the monoid merge is exact regardless of
        // which worker served which request or when shutdown began.
        let mut expected = LatencyHistogram::new();
        for i in 0..24 {
            expected.record_secs(synthetic_latency(&job(i, 100.0)));
        }
        assert_eq!(stats.latency, expected);
        assert_eq!(stats.latency.count(), 24);
    }

    #[test]
    fn decision_trace_is_worker_count_invariant() {
        fn run(workers: u32) -> DecisionTrace {
            let config = ServeConfig::new(workers, 64).with_decision_trace(1024);
            let server = PlanServer::start(config).unwrap();
            let responses = server
                .submit((0..12).map(|i| request(i, 100.0)).collect())
                .unwrap()
                .wait();
            assert_eq!(responses.len(), 12);
            let (stats, trace) = server.shutdown_with_trace();
            assert_eq!(stats.served, 12);
            trace
        }
        let solo = run(1);
        let fleet = run(4);
        assert_eq!(solo.len(), 12);
        // Post-sort canonicalization makes the whole trace — digest and
        // rendered log, not just the set of events — independent of how the
        // requests were scheduled across workers.
        assert_eq!(solo.digest(), fleet.digest());
        assert_eq!(solo.render_log(), fleet.render_log());
    }

    #[test]
    fn a_zero_budget_admits_everything_without_speculation() {
        let config = ServeConfig::new(2, 16).with_budget(SpeculationBudget::Limited(0));
        let server = PlanServer::start(config).unwrap();
        let responses = server
            .submit((0..4).map(|i| request(i, 100.0)).collect())
            .unwrap()
            .wait();
        let stats = server.shutdown();
        assert_eq!(stats.served, 4);
        for response in &responses {
            assert!(response.decision.budget_denied());
            assert_eq!(response.decision.copies, 0);
            assert_eq!(response.decision.remaining_budget, Some(0));
        }
    }
}
