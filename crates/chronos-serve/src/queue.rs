//! The bounded MPMC work queue under the planning server.
//!
//! Hand-rolled over `Mutex` + `Condvar` because the vendored-deps
//! constraint rules out async runtimes and channel crates. The shape is
//! deliberately simple:
//!
//! * **Producers never block.** [`BoundedQueue::try_push_all`] either
//!   admits a whole batch or rejects it immediately with
//!   [`PushError::Full`] (backpressure) / [`PushError::Closed`]
//!   (shutdown), returning ownership of the batch to the caller. A batch
//!   larger than the capacity can never fit and is always rejected.
//! * **Consumers block on a condvar.** [`BoundedQueue::pop_many`] parks
//!   until items arrive or the queue closes.
//! * **Close means drain, not drop.** After [`BoundedQueue::close`],
//!   consumers keep receiving the items already queued; only once the
//!   queue is closed *and* empty does `pop_many` return an empty batch —
//!   the consumer's signal to exit. No accepted item is ever discarded.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected. The batch itself is handed back alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Admitting the batch would exceed the queue capacity.
    Full {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The queue was closed; the server is shutting down.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO (see the [module
/// docs](self) for the backpressure and shutdown contract).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits the whole `batch` or none of it, never blocking. On
    /// rejection the batch is returned to the caller untouched (in order),
    /// so no request is lost to backpressure.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the batch does not fit within capacity
    /// (a batch larger than the capacity is always rejected);
    /// [`PushError::Closed`] once [`BoundedQueue::close`] was called.
    pub fn try_push_all(&self, batch: Vec<T>) -> Result<(), (PushError, Vec<T>)> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        if state.closed {
            return Err((PushError::Closed, batch));
        }
        if state.items.len() + batch.len() > self.capacity {
            return Err((
                PushError::Full {
                    capacity: self.capacity,
                },
                batch,
            ));
        }
        state.items.extend(batch);
        drop(state);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Pops up to `max` items (at least one), blocking while the queue is
    /// open and empty. Returns an empty vector only when the queue is
    /// closed **and** fully drained — the consumer's exit signal.
    #[must_use]
    pub fn pop_many(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut state = self.inner.lock().expect("queue lock poisoned");
        loop {
            if !state.items.is_empty() {
                let take = max.min(state.items.len());
                let drained: Vec<T> = state.items.drain(..take).collect();
                if !state.items.is_empty() {
                    // More work remains: hand another parked consumer a turn.
                    self.not_empty.notify_one();
                }
                return drained;
            }
            if state.closed {
                return Vec::new();
            }
            state = self
                .not_empty
                .wait(state)
                .expect("queue lock poisoned while waiting");
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// already-queued items keep draining, and parked consumers wake.
    pub fn close(&self) {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_then_pop_is_fifo() {
        let queue = BoundedQueue::new(4);
        queue.try_push_all(vec![1, 2, 3]).unwrap();
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.pop_many(2), vec![1, 2]);
        assert_eq!(queue.pop_many(8), vec![3]);
        assert!(queue.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking_and_returns_the_batch() {
        let queue = BoundedQueue::new(2);
        queue.try_push_all(vec![1]).unwrap();
        // 1 queued + 2 incoming > capacity 2: all-or-nothing rejection.
        let (err, batch) = queue.try_push_all(vec![2, 3]).unwrap_err();
        assert_eq!(err, PushError::Full { capacity: 2 });
        assert_eq!(batch, vec![2, 3]);
        // The queue itself is untouched.
        assert_eq!(queue.len(), 1);
        // A fitting batch still goes through.
        queue.try_push_all(vec![4]).unwrap();
        assert_eq!(queue.pop_many(8), vec![1, 4]);
    }

    #[test]
    fn batch_larger_than_capacity_is_always_rejected() {
        let queue = BoundedQueue::new(2);
        let (err, batch) = queue.try_push_all(vec![1, 2, 3]).unwrap_err();
        assert_eq!(err, PushError::Full { capacity: 2 });
        assert_eq!(batch.len(), 3);
        assert!(queue.is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op_push() {
        let queue = BoundedQueue::<u32>::new(1);
        queue.try_push_all(Vec::new()).unwrap();
        assert!(queue.is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push_all(vec![7]).unwrap();
        assert_eq!(queue.pop_many(1), vec![7]);
    }

    #[test]
    fn close_drains_queued_items_then_signals_exit() {
        let queue = BoundedQueue::new(4);
        queue.try_push_all(vec![1, 2, 3]).unwrap();
        queue.close();
        // Pushing after close fails and returns the batch.
        let (err, batch) = queue.try_push_all(vec![9]).unwrap_err();
        assert_eq!(err, PushError::Closed);
        assert_eq!(batch, vec![9]);
        // Queued items still drain in order...
        assert_eq!(queue.pop_many(2), vec![1, 2]);
        assert_eq!(queue.pop_many(2), vec![3]);
        // ...and only then does the queue report exhaustion.
        assert!(queue.pop_many(2).is_empty());
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let queue = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || queue.pop_many(4))
            })
            .collect();
        // Give the consumers a moment to park, then close: all must return.
        std::thread::sleep(std::time::Duration::from_millis(10));
        queue.close();
        for handle in handles {
            assert!(handle.join().unwrap().is_empty());
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let queue = Arc::new(BoundedQueue::new(8));
        let produced = 4 * 200;
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let items = queue.pop_many(4);
                        if items.is_empty() {
                            return got;
                        }
                        got.extend(items);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|producer| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for item in 0..200u32 {
                        let mut batch = vec![producer * 1_000 + item];
                        // Bounded-queue contract: rejection, not blocking —
                        // the producer decides to retry.
                        while let Err((err, returned)) = queue.try_push_all(batch) {
                            assert_eq!(err, PushError::Full { capacity: 8 });
                            batch = returned;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        queue.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), produced);
        all.dedup();
        assert_eq!(all.len(), produced, "duplicated or lost items");
    }
}
