//! # chronos-serve
//!
//! The online admission-control planning server: the first step from the
//! batch simulator toward the serving stack the paper's deployment story
//! implies. Chronos's pitch (Xu et al., ICDCS 2018) is deciding *at job
//! submission time* which speculation strategy to run, how many extra
//! copies `r` to launch, and whether the deadline is feasible at all — an
//! online, per-arrival problem (cf. Xu & Lau, arXiv:1406.0609), not an
//! offline sweep. This crate answers exactly that question per
//! [`JobSpec`](chronos_sim::prelude::JobSpec), at scale, over one shared
//! [`PlanCache`](chronos_plan::PlanCache).
//!
//! ## Architecture
//!
//! A [`PlanServer`] is a thread-per-core worker pool (plain `std::thread`
//! — the vendored-deps constraint rules out async runtimes, and the CPU-
//! bound closed-form solves would not benefit from one anyway) fed by a
//! single hand-rolled bounded MPMC queue:
//!
//! * **Queue shape.** One [`queue::BoundedQueue`] of work items, FIFO,
//!   guarded by a `Mutex` + `Condvar` pair. Producers never block;
//!   consumers park on the condvar. Workers pop in small batches to
//!   amortize the queue lock without letting one worker starve the rest.
//! * **Backpressure semantics.** The queue is *bounded* and submission is
//!   all-or-nothing: [`PlanServer::submit`] either admits the whole batch
//!   or rejects it immediately with [`ServeError::Overloaded`], returning
//!   ownership of the requests. Nothing ever queues beyond the configured
//!   capacity, so memory stays bounded and queueing delay — the dominant
//!   term of tail latency — stays capped. Overload policy (retry, shed,
//!   degrade) belongs to the caller, not the server.
//! * **Shutdown protocol.** [`PlanServer::shutdown`] closes the queue:
//!   new submissions fail with [`ServeError::ShuttingDown`], while every
//!   already-accepted request keeps draining — workers exit only once the
//!   queue is closed *and* empty, and are then joined. No accepted
//!   request is ever dropped; every outstanding [`Ticket`] completes.
//!   Dropping the server unawaited performs the same close-drain-join.
//! * **Planning.** Each worker runs the policy front-end from
//!   `chronos-strategies` over the shared single-flight `PlanCache`
//!   (every distinct job profile is solved once per server, whichever
//!   worker gets there first), with a small worker-local memo layered on
//!   top so hot profiles skip even the stripe lock. Decisions pick the
//!   utility-maximizing strategy across all three Chronos strategies,
//!   with deterministic tie-breaking — the decision for a job is a pure
//!   function of the job and the policy config, independent of worker
//!   count or scheduling. [`decisions_digest`] hashes that invariant.
//! * **Budgeting.** The server can run under a cluster-wide
//!   [`SpeculationBudget`](chronos_plan::SpeculationBudget)
//!   ([`ServeConfig::with_budget`]): every feasible decision atomically
//!   debits its optimal copy count from a shared token counter,
//!   all-or-nothing, and once the tokens cannot cover a job's full grant
//!   the job is admitted *without* speculation
//!   ([`AdmissionDecision::budget_denied`]) — mirroring the batch
//!   simulator's `BudgetedPolicy` semantics at the serving layer. Each
//!   decision reports the tokens left after its debit
//!   ([`AdmissionDecision::remaining_budget`]); the field is excluded
//!   from [`decisions_digest`], which stays worker-count-invariant only
//!   for unbudgeted servers (finite grants depend on admission order).
//! * **Latency accounting.** Each worker records enqueue-to-decision
//!   latency (in **microseconds**) into its own
//!   [`LatencyHistogram`](chronos_sim::prelude::LatencyHistogram); the
//!   per-worker histograms merge monoidally into the server-wide
//!   [`ServerStats`]. Tests swap the wall clock for a synthetic per-job
//!   probe ([`LatencyProbe::SyntheticMicros`]) to pin the merge
//!   bit-exactly.
//!
//! ## Example
//!
//! ```
//! use chronos_serve::prelude::*;
//! use chronos_sim::prelude::{JobId, JobSpec, SimTime};
//!
//! let server = PlanServer::start(ServeConfig::new(2, 64)).unwrap();
//! let ticket = server
//!     .submit_one(ServeRequest {
//!         request_id: 0,
//!         job: JobSpec::new(JobId::new(0), SimTime::ZERO, 100.0, 10),
//!     })
//!     .unwrap();
//! let responses = ticket.wait();
//! assert!(responses[0].decision.feasible);
//! let stats = server.shutdown();
//! assert_eq!(stats.served, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod queue;
pub mod server;

pub use chronos_plan::SpeculationBudget;
pub use server::{
    decisions_digest, strategy_ordinal, AdmissionDecision, LatencyProbe, PlanServer, Rejected,
    ServeConfig, ServeError, ServeRequest, ServeResponse, ServerStats, Ticket,
};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::queue::{BoundedQueue, PushError};
    pub use crate::server::{
        decisions_digest, strategy_ordinal, AdmissionDecision, LatencyProbe, PlanServer, Rejected,
        ServeConfig, ServeError, ServeRequest, ServeResponse, ServerStats, Ticket,
    };
    pub use chronos_obs::{DecisionTrace, MetricsRegistry, TraceEvent};
    pub use chronos_plan::SpeculationBudget;
}
