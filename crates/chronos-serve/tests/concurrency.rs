//! Concurrency contract of the planning server: shutdown drains without
//! dropping, the bounded queue rejects instead of blocking, and per-worker
//! histogram merging is bit-identical to a single-threaded replay.

use chronos_serve::prelude::*;
use chronos_sim::prelude::{JobId, JobSpec, LatencyHistogram, SimTime};

/// A deterministic per-job pseudo-latency: a pure function of the job id,
/// spread over several histogram buckets.
fn synthetic_micros(job: &JobSpec) -> f64 {
    (job.id.raw() % 1_000) as f64 * 3.0 + 1.0
}

fn request(id: u64) -> ServeRequest {
    // Cycle a few deadlines so the stream carries several distinct
    // profiles (and a mix of feasible/infeasible decisions).
    let deadline = [100.0, 60.0, 25.0, 300.0][(id % 4) as usize];
    ServeRequest {
        request_id: id,
        job: JobSpec::new(JobId::new(id), SimTime::ZERO, deadline, 10),
    }
}

fn submit_with_retry(server: &PlanServer, mut batch: Vec<ServeRequest>) -> Ticket {
    loop {
        match server.submit(batch) {
            Ok(ticket) => return ticket,
            Err(rejected) => {
                assert!(
                    matches!(rejected.error, ServeError::Overloaded { .. }),
                    "unexpected rejection: {}",
                    rejected.error
                );
                batch = rejected.requests;
                std::thread::yield_now();
            }
        }
    }
}

#[test]
fn shutdown_while_loaded_drains_every_accepted_request() {
    let config = ServeConfig::new(2, 8).with_probe(LatencyProbe::SyntheticMicros(synthetic_micros));
    let server = PlanServer::start(config).unwrap();
    const TOTAL: u64 = 100;
    // Small batches against a small queue: submissions overlap in-flight
    // work, so shutdown below genuinely races active workers.
    let tickets: Vec<Ticket> = (0..TOTAL / 4)
        .map(|batch| submit_with_retry(&server, (batch * 4..batch * 4 + 4).map(request).collect()))
        .collect();
    let stats = server.shutdown();
    // Every accepted request was decided — none dropped by shutdown…
    assert_eq!(stats.served, TOTAL);
    assert_eq!(stats.latency.total(), TOTAL);
    // …and every ticket completes with its full batch, in submission order.
    let mut seen = 0;
    for (batch, ticket) in tickets.into_iter().enumerate() {
        let responses = ticket.wait();
        assert_eq!(responses.len(), 4);
        for (offset, response) in responses.iter().enumerate() {
            assert_eq!(response.request_id, (batch * 4 + offset) as u64);
            seen += 1;
        }
    }
    assert_eq!(seen, TOTAL);
}

#[test]
fn full_queue_rejects_instead_of_blocking() {
    // A batch larger than the queue capacity can never fit, so this
    // rejection is deterministic no matter how fast the single worker
    // drains — the "never blocks forever" half of the backpressure
    // contract without a timing-dependent assertion.
    let server = PlanServer::start(ServeConfig::new(1, 1)).unwrap();
    let batch: Vec<ServeRequest> = (0..2).map(request).collect();
    let rejected = server.submit(batch).unwrap_err();
    assert_eq!(rejected.error, ServeError::Overloaded { capacity: 1 });
    // Ownership of the whole batch comes back in submission order.
    let ids: Vec<u64> = rejected.requests.iter().map(|r| r.request_id).collect();
    assert_eq!(ids, vec![0, 1]);
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.served, 0);
}

#[test]
fn merged_worker_histograms_match_single_threaded_replay_bit_identically() {
    const TOTAL: u64 = 400;
    let run = |workers: u32| -> (LatencyHistogram, String) {
        let config = ServeConfig::new(workers, 16)
            .with_probe(LatencyProbe::SyntheticMicros(synthetic_micros));
        let server = PlanServer::start(config).unwrap();
        let mut responses = Vec::new();
        for batch in 0..TOTAL / 8 {
            let ticket =
                submit_with_retry(&server, (batch * 8..batch * 8 + 8).map(request).collect());
            responses.extend(ticket.wait());
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, TOTAL);
        (stats.latency, decisions_digest(&responses))
    };

    let (merged_4, digest_4) = run(4);
    let (single, digest_1) = run(1);

    // The 4-worker merge of per-worker histograms equals the 1-worker
    // histogram bit-identically (LatencyHistogram is Eq over integer
    // counts), and both equal a histogram built by hand from the probe.
    assert_eq!(merged_4, single);
    let mut reference = LatencyHistogram::new();
    for id in 0..TOTAL {
        reference.record_secs(synthetic_micros(&request(id).job));
    }
    assert_eq!(merged_4, reference);

    // Decisions are equally scheduling-independent.
    assert_eq!(digest_4, digest_1);
}
