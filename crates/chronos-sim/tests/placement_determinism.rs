//! Placement determinism: the worker-count-invariance contract of the
//! pluggable placement layer.
//!
//! 1. every [`PlacementPolicy`] produces a bit-identical merged report and
//!    a bit-identical `PlacementDecision` trace (log bytes and digest)
//!    across 1 vs 8 worker threads,
//! 2. the default `MostFree` placement is indistinguishable from a config
//!    that never mentions placement at all — and records no
//!    `PlacementDecision` events, so pre-placement trace digests survive
//!    the refactor untouched,
//! 3. the non-default placements actually decide something on a contended
//!    heterogeneous pool (the trace carries `placement` records).

use chronos_sim::prelude::*;
use proptest::prelude::*;

/// A contended, heterogeneous pool: two fast nodes, a straggler and a
/// middling node, two slots each. Placement only matters when attempts
/// queue and nodes differ, so the invariance tests run where the policies
/// genuinely diverge.
fn placement_config(seed: u64, placement: PlacementPolicy, workers: u32) -> SimConfig {
    let mut cluster = ClusterSpec::homogeneous(4, 2).with_placement(placement);
    cluster.slowdowns = vec![1.0, 3.0, 1.0, 2.0];
    SimConfig {
        cluster,
        jvm: JvmModel::default(),
        estimator: EstimatorKind::HadoopDefault,
        progress_report_interval_secs: 1.0,
        seed,
        max_events: 0,
        sharding: ShardSpec::new(4, workers),
    }
}

/// Staggered arrivals, two tasks per job: enough concurrency that the
/// tight pool queues and every placement policy is exercised.
fn workload(job_count: u64) -> Vec<JobSpec> {
    (0..job_count)
        .map(|i| JobSpec::new(JobId::new(i), SimTime::from_secs(i as f64 * 3.0), 120.0, 2))
        .collect()
}

fn chunks(jobs: &[JobSpec]) -> Vec<Vec<JobSpec>> {
    jobs.chunks(8).map(<[JobSpec]>::to_vec).collect()
}

fn observed_run(
    seed: u64,
    placement: PlacementPolicy,
    workers: u32,
    jobs: &[JobSpec],
) -> (SimulationReport, DecisionTrace) {
    ShardedRunner::new(placement_config(seed, placement, workers))
        .expect("valid config")
        .run_chunked_observed(chunks(jobs), |_| Box::new(NoSpeculation), None)
        .expect("simulation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole's determinism pin: for every placement policy the
    /// merged report, the rendered decision log and the FNV-1a digest are
    /// bit-identical at 1 and 8 workers.
    #[test]
    fn every_placement_is_worker_count_invariant(
        placement_index in 0usize..3,
        seed in 0u64..1_000,
        job_count in 24u64..48,
    ) {
        let placement = PlacementPolicy::ALL[placement_index];
        let jobs = workload(job_count);
        let (report_1, trace_1) = observed_run(seed, placement, 1, &jobs);
        let (report_8, trace_8) = observed_run(seed, placement, 8, &jobs);
        prop_assert_eq!(report_1, report_8);
        prop_assert_eq!(trace_1.render_log(), trace_8.render_log());
        prop_assert_eq!(trace_1.digest(), trace_8.digest());
    }
}

#[test]
fn most_free_matches_a_placement_free_config_and_records_nothing() {
    let jobs = workload(32);
    let (explicit_report, explicit_trace) = observed_run(7, PlacementPolicy::MostFree, 4, &jobs);

    // A config that never mentions placement: same pool, default policy.
    let mut cluster = ClusterSpec::homogeneous(4, 2);
    cluster.slowdowns = vec![1.0, 3.0, 1.0, 2.0];
    let config = SimConfig {
        cluster,
        jvm: JvmModel::default(),
        estimator: EstimatorKind::HadoopDefault,
        progress_report_interval_secs: 1.0,
        seed: 7,
        max_events: 0,
        sharding: ShardSpec::new(4, 4),
    };
    let (default_report, default_trace) = ShardedRunner::new(config)
        .expect("valid config")
        .run_chunked_observed(chunks(&jobs), |_| Box::new(NoSpeculation), None)
        .expect("simulation succeeds");

    assert_eq!(explicit_report, default_report);
    assert_eq!(explicit_trace.digest(), default_trace.digest());
    // The default policy must leave pre-placement digests untouched, so it
    // never records a placement event.
    assert!(
        !explicit_trace.render_log().contains("placement "),
        "MostFree must not record PlacementDecision events"
    );
}

#[test]
fn non_default_placements_record_decisions_and_diverge() {
    let jobs = workload(32);
    let (most_free_report, _) = observed_run(7, PlacementPolicy::MostFree, 4, &jobs);
    let (bin_pack_report, bin_pack_trace) = observed_run(7, PlacementPolicy::BinPack, 4, &jobs);
    let (deadline_report, deadline_trace) =
        observed_run(7, PlacementPolicy::DeadlineAware, 4, &jobs);

    for (label, trace) in [
        ("bin-pack", &bin_pack_trace),
        ("deadline-aware", &deadline_trace),
    ] {
        assert!(
            trace.render_log().contains("placement node="),
            "{label} must record PlacementDecision events on a contended pool"
        );
    }
    // On a heterogeneous contended pool the policies genuinely place
    // differently; identical reports would mean the policy is not wired
    // through to the engine at all.
    assert_ne!(most_free_report, bin_pack_report);
    assert_ne!(most_free_report, deadline_report);
    assert_ne!(bin_pack_trace.digest(), deadline_trace.digest());
}
