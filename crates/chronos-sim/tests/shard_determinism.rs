//! Property tests for the sharded runner's determinism contract (the
//! foreground guarantee of the sharding subsystem):
//!
//! 1. the merged report of a fixed `(workload, seed, shard count)` is
//!    bit-identical for 1, 2 and 8 worker threads,
//! 2. `SimulationReport::merge` is associative and commutative (with the
//!    default report as identity), which is what makes (1) possible,
//! 3. the splitmix64 shard-seed derivation never collides across shard
//!    indices for a fixed base seed.

use chronos_sim::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Workload / report generators
// ---------------------------------------------------------------------------

/// A small but non-trivial workload: staggered arrivals, a couple of tasks
/// per job, deterministic in its parameters.
fn workload(job_count: u64, tasks_per_job: usize, arrival_gap: f64) -> Vec<JobSpec> {
    (0..job_count)
        .map(|i| {
            JobSpec::new(
                JobId::new(i),
                SimTime::from_secs(i as f64 * arrival_gap),
                300.0,
                tasks_per_job,
            )
        })
        .collect()
}

fn sim_config(seed: u64, shards: u32, workers: u32) -> SimConfig {
    SimConfig {
        cluster: ClusterSpec::homogeneous(6, 2),
        jvm: JvmModel::default(),
        estimator: EstimatorKind::ChronosJvmAware,
        progress_report_interval_secs: 1.0,
        seed,
        max_events: 0,
        sharding: ShardSpec::new(shards, workers),
    }
}

/// Deterministically expands compact generated parameters into a report
/// whose job ids start at `id_base` (keeping different reports disjoint, the
/// precondition of a conflict-free merge).
fn synthetic_report(id_base: u64, job_count: u64, policy: &str, salt: u64) -> SimulationReport {
    let mut report = SimulationReport {
        policy: policy.to_string(),
        events_dispatched: salt % 10_000,
        events_stale: salt % 97,
        ended_at: SimTime::from_micros(salt.wrapping_mul(31) % 1_000_000_000),
        ..SimulationReport::default()
    };
    for offset in 0..job_count {
        let id = JobId::new(id_base + offset);
        let mixed = splitmix64(salt.wrapping_add(offset));
        let completed = mixed % 4 != 0; // ~75% completion rate
        let completion_secs = 1.0 + (mixed % 100_000) as f64 / 100.0;
        let submitted_at = SimTime::from_secs((mixed % 977) as f64);
        let completed_at =
            completed.then(|| submitted_at + SimDuration::from_secs(completion_secs));
        let metrics = JobMetrics {
            job: id,
            submitted_at,
            deadline_secs: 120.0,
            completed_at,
            met_deadline: completed && completion_secs <= 120.0,
            machine_time_secs: completion_secs * 2.0,
            cost: completion_secs * 2.5,
            attempts_launched: (mixed % 7) as u32 + 1,
            attempts_killed: (mixed % 3) as u32,
            chosen_r: (mixed % 2 == 0).then_some((mixed % 5) as u32),
        };
        match metrics.completion_secs() {
            Some(secs) => report.latency.record_secs(secs),
            None => report.latency.record_unfinished(),
        }
        report.jobs.insert(id, metrics);
    }
    report
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Worker count is invisible: 1, 2 and 8 workers produce identical
    /// merged reports for the same seed and shard count.
    #[test]
    fn merged_report_is_worker_count_invariant(
        seed in 0u64..1_000_000,
        shards in 1u32..9,
        job_count in 0u64..40,
        tasks in 1usize..4,
    ) {
        let run = |workers: u32| {
            ShardedRunner::new(sim_config(seed, shards, workers))
                .expect("valid config")
                .run(workload(job_count, tasks, 3.0), |_| Box::new(NoSpeculation))
                .expect("simulation succeeds")
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
        prop_assert_eq!(one.job_count() as u64, job_count);
    }

    /// (b) Report merging is commutative and associative, with the default
    /// report as the identity element.
    #[test]
    fn report_merge_is_associative_and_commutative(
        count_a in 0u64..6,
        count_b in 0u64..6,
        count_c in 0u64..6,
        salt_a in 0u64..u64::MAX,
        salt_b in 0u64..u64::MAX,
        salt_c in 0u64..u64::MAX,
    ) {
        // Disjoint id ranges: merge is only defined for disjoint reports.
        let a = synthetic_report(0, count_a, "s-resume", salt_a);
        let b = synthetic_report(1_000, count_b, "clone", salt_b);
        let c = synthetic_report(2_000, count_c, "s-resume", salt_c);

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(b.clone()).expect("disjoint");
        let mut ba = b.clone();
        ba.merge(a.clone()).expect("disjoint");
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab.clone();
        ab_c.merge(c.clone()).expect("disjoint");
        let mut bc = b.clone();
        bc.merge(c.clone()).expect("disjoint");
        let mut a_bc = a.clone();
        a_bc.merge(bc).expect("disjoint");
        prop_assert_eq!(&ab_c, &a_bc);

        // Identity: default ⊕ a == a ⊕ default == a.
        let mut left = SimulationReport::default();
        left.merge(a.clone()).expect("disjoint");
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(SimulationReport::default()).expect("disjoint");
        prop_assert_eq!(&right, &a);
    }

    /// (c) Shard-seed derivation is collision-free over 0..10_000 shard
    /// indices for arbitrary base seeds, and never reproduces the base.
    #[test]
    fn shard_seeds_never_collide(base in 0u64..u64::MAX) {
        let mut seen = HashSet::with_capacity(10_000);
        for shard in 0..10_000u64 {
            let seed = shard_seed(base, shard);
            prop_assert!(seen.insert(seed), "collision at shard {}", shard);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic (non-property) companions
// ---------------------------------------------------------------------------

/// The (a) property again at a fixed, documented seed — a cheap canary that
/// fails with a readable diff if the contract ever regresses.
#[test]
fn fixed_seed_worker_sweep_is_bit_identical() {
    let reports: Vec<SimulationReport> = [1u32, 2, 8]
        .iter()
        .map(|&workers| {
            ShardedRunner::new(sim_config(20_260_729, 8, workers))
                .expect("valid config")
                .run(workload(64, 3, 2.0), |_| Box::new(NoSpeculation))
                .expect("simulation succeeds")
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
    assert_eq!(reports[0].job_count(), 64);
}

/// Exhaustive collision check at the default base seed, covering the exact
/// range the issue names.
#[test]
fn shard_seed_collision_free_for_default_base() {
    let seeds: HashSet<u64> = (0..10_000).map(|shard| shard_seed(1, shard)).collect();
    assert_eq!(seeds.len(), 10_000);
}
