//! The discrete-event queue driving the simulation: a paged timer wheel
//! with a far-future overflow heap.
//!
//! # Ordering contract
//!
//! Events are totally ordered by `(time, sequence number)`: the sequence
//! number is a monotonically increasing tiebreaker so that same-timestamp
//! events pop in insertion order, keeping runs deterministic. The wheel is
//! an implementation detail — [`EventQueue::pop`] yields exactly the
//! sequence a binary heap over `(time, seq)` would, which is what lets the
//! determinism pyramid (goldens, bit-identity proptests, the 1M-job scale
//! test) pin the engine rewrite.
//!
//! # Layout
//!
//! Simulated time (integer microseconds) is split into *pages* of
//! 2^[`PAGE_SHIFT`] µs (≈ 131 ms). The wheel holds one bucket per page for
//! the [`WHEEL_BUCKETS`] pages starting at the cursor page — a horizon of
//! ≈ 9 simulated minutes. Scheduling into the window is an O(1) push into
//! the page's bucket (plus an occupancy-bitmap bit set); events beyond the
//! horizon go to a binary-heap overflow and are admitted into the wheel as
//! the cursor advances past their page. Events at or before the cursor page
//! (zero-delay wakeups, late reschedules) are clamped into the cursor
//! bucket; correctness is unaffected because extraction always scans the
//! cursor bucket for its `(time, seq)` minimum.
//!
//! Popping takes the minimum of the cursor bucket; when that bucket drains,
//! the occupancy bitmap finds the next non-empty bucket (or the queue jumps
//! to the overflow minimum's page), and the overflow is drained into the
//! freshly exposed window *on every cursor advance* — the invariant that
//! overflow entries always lie at or beyond the wheel horizon is what makes
//! the cross-page ordering exact.
//!
//! # Lazy deletion and capacity
//!
//! The queue itself never deletes scheduled events: the engine cancels an
//! [`Event::AttemptCompletion`] by killing the attempt and ignoring the
//! event when it pops (*lazy deletion*; such pops are counted as
//! `events_stale`, not dispatched). A fully drained queue therefore holds
//! no residue by construction — every scheduled entry is eventually popped
//! — and [`EventQueue::capacity`] exposes the allocated slot capacity so
//! tests can pin that reschedule-heavy runs leave nothing behind and bound
//! the high-water allocation.

use crate::ids::{AttemptId, JobId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A job arrives and is submitted to the cluster.
    JobArrival(JobId),
    /// A running attempt reaches its completion time.
    ///
    /// Carries the completion timestamp that was valid when the event was
    /// scheduled; if the attempt was killed or rescheduled in the meantime
    /// the stale event is ignored (lazy deletion).
    AttemptCompletion(AttemptId),
    /// A policy check point (straggler estimation, pruning, periodic
    /// speculation scan) for the given job. `index` counts the job's checks.
    PolicyCheck {
        /// Job being checked.
        job: JobId,
        /// Ordinal of the check for that job (0-based).
        index: u32,
    },
}

/// Number of pages the wheel spans; must be a power of two.
pub const WHEEL_BUCKETS: usize = 1 << 12;
/// log₂ of the page width in microseconds: 2^17 µs ≈ 131 ms per bucket.
pub const PAGE_SHIFT: u32 = 17;

const BUCKET_MASK: u64 = WHEEL_BUCKETS as u64 - 1;
const OCC_WORDS: usize = WHEEL_BUCKETS / 64;
// The one-word occupancy summary requires exactly 64 occupancy words.
const _: () = assert!(OCC_WORDS == 64);

#[inline]
fn page_of(time: SimTime) -> u64 {
    time.as_micros() >> PAGE_SHIFT
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending events (see the [module docs](self) for the
/// timer-wheel layout and the ordering contract).
#[derive(Debug)]
pub struct EventQueue {
    /// One bucket per page in `[cur_page, cur_page + WHEEL_BUCKETS)`,
    /// indexed by `page & BUCKET_MASK`.
    buckets: Vec<Vec<ScheduledEvent>>,
    /// Bit `i` set iff `buckets[i]` is non-empty.
    occupancy: [u64; OCC_WORDS],
    /// Two-level index over `occupancy`: bit `w` set iff `occupancy[w]` is
    /// non-zero, making the next-occupied-bucket scan O(1) instead of a
    /// walk over all [`OCC_WORDS`] words.
    occupancy_summary: u64,
    /// Events at pages ≥ `cur_page + WHEEL_BUCKETS` (beyond the horizon),
    /// admitted into the wheel as the cursor advances.
    overflow: BinaryHeap<ScheduledEvent>,
    /// The page the cursor bucket represents.
    cur_page: u64,
    len: usize,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            buckets: vec![Vec::new(); WHEEL_BUCKETS],
            occupancy: [0; OCC_WORDS],
            occupancy_summary: 0,
            overflow: BinaryHeap::new(),
            cur_page: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = ScheduledEvent { time, seq, event };
        let page = page_of(time);
        if page >= self.cur_page + WHEEL_BUCKETS as u64 {
            self.overflow.push(entry);
        } else {
            // Pages at or before the cursor clamp into the cursor bucket;
            // min-extraction keeps them correctly ordered.
            self.insert_into_wheel(page.max(self.cur_page), entry);
        }
        self.len += 1;
    }

    #[inline]
    fn insert_into_wheel(&mut self, page: u64, entry: ScheduledEvent) {
        let idx = (page & BUCKET_MASK) as usize;
        self.buckets[idx].push(entry);
        self.occupancy[idx / 64] |= 1 << (idx % 64);
        self.occupancy_summary |= 1 << (idx / 64);
    }

    /// Pops the earliest event (by `(time, seq)`), if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cur_page & BUCKET_MASK) as usize;
            if !self.buckets[idx].is_empty() {
                let entry = Self::extract_min(&mut self.buckets[idx]);
                if self.buckets[idx].is_empty() {
                    self.occupancy[idx / 64] &= !(1 << (idx % 64));
                    if self.occupancy[idx / 64] == 0 {
                        self.occupancy_summary &= !(1 << (idx / 64));
                    }
                }
                self.len -= 1;
                return Some((entry.time, entry.event));
            }
            self.advance(idx);
        }
    }

    /// Removes the `(time, seq)`-minimal entry of a non-empty bucket.
    fn extract_min(bucket: &mut Vec<ScheduledEvent>) -> ScheduledEvent {
        let mut best = 0;
        for (i, entry) in bucket.iter().enumerate().skip(1) {
            let current = &bucket[best];
            if (entry.time, entry.seq) < (current.time, current.seq) {
                best = i;
            }
        }
        bucket.swap_remove(best)
    }

    /// Moves the cursor to the next non-empty bucket (or jumps to the
    /// overflow minimum's page when the wheel is empty), then admits every
    /// overflow event that the moved horizon now covers. Admitting on
    /// *every* advance upholds the invariant that overflow entries lie at
    /// or beyond the horizon — the ordering proof depends on it.
    fn advance(&mut self, cursor_idx: usize) {
        debug_assert!(self.len > 0, "advance on an empty queue");
        if let Some(delta) = self.next_occupied_delta(cursor_idx) {
            self.cur_page += delta as u64;
        } else {
            let top = self
                .overflow
                .peek()
                .expect("non-empty queue with an empty wheel has overflow events");
            self.cur_page = page_of(top.time);
        }
        let horizon = self.cur_page + WHEEL_BUCKETS as u64;
        while let Some(top) = self.overflow.peek() {
            if page_of(top.time) >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            self.insert_into_wheel(page_of(entry.time), entry);
        }
    }

    /// Circular distance (in buckets) from `from_idx` to the next occupied
    /// bucket, excluding `from_idx` itself; `None` when the wheel is empty.
    fn next_occupied_delta(&self, from_idx: usize) -> Option<usize> {
        let start = (from_idx + 1) & (WHEEL_BUCKETS - 1);
        let word = start / 64;
        let masked = self.occupancy[word] & (!0u64 << (start % 64));
        if masked != 0 {
            let found = word * 64 + masked.trailing_zeros() as usize;
            return Some((found + WHEEL_BUCKETS - from_idx) & (WHEEL_BUCKETS - 1));
        }
        // Rotate the summary so bit `j` is word `word + 1 + j` (mod 64): the
        // word search becomes one trailing_zeros instead of an OCC_WORDS
        // walk. `from_idx`'s own bit is always clear here (the caller scans
        // from an empty bucket), so the found bucket can never be `from_idx`
        // and the wrap-around delta is always in (0, WHEEL_BUCKETS).
        let rotated = self
            .occupancy_summary
            .rotate_right(((word + 1) % OCC_WORDS) as u32);
        if rotated == 0 {
            return None;
        }
        let step = rotated.trailing_zeros() as usize + 1;
        let w = (word + step) % OCC_WORDS;
        let bits = self.occupancy[w];
        debug_assert!(bits != 0, "summary bit set for an empty occupancy word");
        let found = w * 64 + bits.trailing_zeros() as usize;
        debug_assert_ne!(found, from_idx, "scan restarted from an occupied bucket");
        Some((found + WHEEL_BUCKETS - from_idx) & (WHEEL_BUCKETS - 1))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue (the sequence
    /// counter). Since every scheduled event is eventually popped exactly
    /// once, a drained queue satisfies
    /// `scheduled_total == dispatched + stale`.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total allocated entry capacity (wheel buckets plus overflow heap).
    /// Bounded by the high-water mark of *concurrently* pending events —
    /// not by the total ever scheduled — which is what the capacity
    /// regression test pins.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.overflow.capacity()
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.cur_page & BUCKET_MASK) as usize;
        let bucket_min = |bucket: &Vec<ScheduledEvent>| {
            bucket
                .iter()
                .map(|entry| (entry.time, entry.seq))
                .min()
                .map(|(time, _)| time)
        };
        // The cursor bucket, the next occupied bucket or the overflow top —
        // in that order — holds the global minimum: wheel pages are below
        // the horizon, overflow pages at or beyond it.
        if let Some(time) = bucket_min(&self.buckets[idx]) {
            return Some(time);
        }
        if let Some(delta) = self.next_occupied_delta(idx) {
            let next = ((self.cur_page + delta as u64) & BUCKET_MASK) as usize;
            return bucket_min(&self.buckets[next]);
        }
        self.overflow.peek().map(|entry| entry.time)
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), Event::JobArrival(JobId::new(1)));
        q.schedule(SimTime::from_secs(1.0), Event::JobArrival(JobId::new(2)));
        q.schedule(SimTime::from_secs(3.0), Event::JobArrival(JobId::new(3)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival(j) => j.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2.0);
        for i in 0..10 {
            q.schedule(t, Event::AttemptCompletion(AttemptId::new(i)));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AttemptCompletion(a) => a.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(
            SimTime::from_secs(4.0),
            Event::PolicyCheck {
                job: JobId::new(0),
                index: 0,
            },
        );
        q.schedule(SimTime::from_secs(2.0), Event::JobArrival(JobId::new(0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_route_through_the_overflow_heap() {
        // The wheel horizon is WHEEL_BUCKETS pages; times beyond it must
        // still pop in exact (time, seq) order after overflow admission.
        let mut q = EventQueue::new();
        let horizon_micros = (WHEEL_BUCKETS as u64) << PAGE_SHIFT;
        let times = [
            horizon_micros * 7 + 3,
            5,
            horizon_micros * 2,
            horizon_micros - 1,
            horizon_micros + 1,
            horizon_micros * 7 + 3, // duplicate time: seq breaks the tie
        ];
        for (i, micros) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_micros(*micros),
                Event::AttemptCompletion(AttemptId::new(i as u64)),
            );
        }
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::AttemptCompletion(a) => (t.as_micros(), a.raw()),
                _ => unreachable!(),
            })
            .collect();
        let mut expected: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, micros)| (*micros, i as u64))
            .collect();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn late_schedules_behind_the_cursor_pop_next() {
        // Advance the cursor far into the wheel, then schedule an event at
        // an already-passed page: it clamps into the cursor bucket and must
        // pop before everything later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100.0), Event::JobArrival(JobId::new(0)));
        q.schedule(SimTime::from_secs(200.0), Event::JobArrival(JobId::new(1)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(100.0));
        q.schedule(SimTime::from_secs(1.0), Event::JobArrival(JobId::new(2)));
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1.0));
        assert_eq!(e, Event::JobArrival(JobId::new(2)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(200.0));
        assert!(q.pop().is_none());
    }

    /// The wheel must reproduce a reference `(time, seq)` sort exactly under
    /// interleaved schedule/pop traffic spanning pages, ties, the overflow
    /// horizon and zero-delay clamps.
    #[test]
    fn matches_reference_order_under_random_interleaving() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (micros, seq)
        let mut seq = 0u64;
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for round in 0..2_000 {
            let burst = rng.gen_range(0..4);
            for _ in 0..burst {
                // Mix near-future, same-time and far-future (overflow) times,
                // always at or after the last popped instant.
                let jitter: u64 = match rng.gen_range(0..10) {
                    0 => 0,
                    1..=7 => rng.gen_range(0..5_000_000),
                    _ => rng.gen_range(0..(1u64 << 32)),
                };
                let micros = now + jitter;
                q.schedule(
                    SimTime::from_micros(micros),
                    Event::AttemptCompletion(AttemptId::new(seq)),
                );
                reference.push((micros, seq));
                seq += 1;
            }
            if round % 3 != 0 {
                if let Some((t, e)) = q.pop() {
                    now = t.as_micros();
                    let Event::AttemptCompletion(a) = e else {
                        unreachable!()
                    };
                    popped.push((t.as_micros(), a.raw()));
                }
            }
        }
        while let Some((t, e)) = q.pop() {
            let Event::AttemptCompletion(a) = e else {
                unreachable!()
            };
            popped.push((t.as_micros(), a.raw()));
        }
        // Seq equals insertion order here, so the reference order is the
        // stable sort by (time, seq).
        reference.sort_unstable();
        assert_eq!(popped, reference);
    }

    #[test]
    fn drained_queue_leaves_no_residue_and_bounds_capacity() {
        // Reschedule-heavy traffic: many schedule/pop generations, as an
        // evict + re-speculate run produces. At drain the queue must hold
        // nothing (no stale entries anywhere in the wheel or overflow) and
        // its allocated capacity must reflect the concurrent high-water
        // mark, not the 10_000 events that ever flowed through.
        let mut q = EventQueue::new();
        let mut live = 0usize;
        let mut peak = 0usize;
        for generation in 0..100u64 {
            for i in 0..100u64 {
                q.schedule(
                    SimTime::from_micros(generation * 1_000 + i * 7),
                    Event::AttemptCompletion(AttemptId::new(generation * 100 + i)),
                );
                live += 1;
                peak = peak.max(live);
            }
            for _ in 0..100 {
                q.pop().expect("events pending");
                live -= 1;
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(
            q.buckets.iter().all(Vec::is_empty) && q.overflow.is_empty(),
            "drained queue retained entries"
        );
        assert_eq!(q.occupancy, [0u64; OCC_WORDS]);
        assert_eq!(q.occupancy_summary, 0);
        // Vec growth doubles, so a generous peak-proportional bound still
        // catches capacity scaling with total throughput (10_000 events).
        assert!(
            q.capacity() <= peak * 8 + 64,
            "capacity {} not bounded by the high-water mark {}",
            q.capacity(),
            peak
        );
    }
}
