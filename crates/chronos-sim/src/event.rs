//! The discrete-event queue driving the simulation.
//!
//! Events are ordered by `(time, sequence number)`: the sequence number is a
//! monotonically increasing tiebreaker so that same-timestamp events are
//! processed in insertion order, keeping runs deterministic.

use crate::ids::{AttemptId, JobId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A job arrives and is submitted to the cluster.
    JobArrival(JobId),
    /// A running attempt reaches its completion time.
    ///
    /// Carries the completion timestamp that was valid when the event was
    /// scheduled; if the attempt was killed or rescheduled in the meantime
    /// the stale event is ignored (lazy deletion).
    AttemptCompletion(AttemptId),
    /// A policy check point (straggler estimation, pruning, periodic
    /// speculation scan) for the given job. `index` counts the job's checks.
    PolicyCheck {
        /// Job being checked.
        job: JobId,
        /// Ordinal of the check for that job (0-based).
        index: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), Event::JobArrival(JobId::new(1)));
        q.schedule(SimTime::from_secs(1.0), Event::JobArrival(JobId::new(2)));
        q.schedule(SimTime::from_secs(3.0), Event::JobArrival(JobId::new(3)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::JobArrival(j) => j.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2.0);
        for i in 0..10 {
            q.schedule(t, Event::AttemptCompletion(AttemptId::new(i)));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::AttemptCompletion(a) => a.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(
            SimTime::from_secs(4.0),
            Event::PolicyCheck {
                job: JobId::new(0),
                index: 0,
            },
        );
        q.schedule(SimTime::from_secs(2.0), Event::JobArrival(JobId::new(0)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
