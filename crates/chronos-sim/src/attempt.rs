//! Task attempts: the unit of execution, progress and machine-time billing.
//!
//! Every attempt owns a draw from the task-time distribution (`work_duration`
//! is the time this attempt would need to process the task's *full* split),
//! a JVM launch delay, and a `start_fraction` describing how much of the
//! split was already processed before the attempt began (non-zero only for
//! Speculative-Resume attempts). Progress advances linearly once the JVM is
//! up, exactly as Hadoop's map-phase progress score does.

use crate::ids::{AttemptId, JobId, NodeId, TaskId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Lifecycle state of an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptState {
    /// Created but still waiting for a container.
    Pending,
    /// Running on a container.
    Running,
    /// Finished processing its split successfully.
    Finished,
    /// Killed by the Application Master (pruning, task already done, …).
    Killed,
}

/// A single execution attempt of a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attempt {
    /// Unique attempt id.
    pub id: AttemptId,
    /// The task this attempt executes.
    pub task: TaskId,
    /// The owning job.
    pub job: JobId,
    /// When the attempt was created (requested a container).
    pub created_at: SimTime,
    /// Fraction of the split already processed before this attempt started
    /// (Speculative-Resume hand-off offset); `0` for ordinary attempts.
    pub start_fraction: f64,
    /// Current lifecycle state.
    pub state: AttemptState,
    /// Node the attempt runs on, once started.
    pub node: Option<NodeId>,
    /// When the container was assigned and the JVM began launching.
    pub launched_at: Option<SimTime>,
    /// JVM launch delay in seconds (no useful work happens during it).
    pub jvm_delay_secs: f64,
    /// Time, in seconds, this attempt would need to process the entire split
    /// (already including the node slowdown and the task size factor).
    pub work_duration_secs: f64,
    /// When the attempt stopped running (finished or killed).
    pub ended_at: Option<SimTime>,
    /// Next attempt of the same task in creation order — the intrusive
    /// sibling chain headed by
    /// [`TaskRuntime::first_attempt`](crate::job::TaskRuntime::first_attempt).
    pub next_sibling: Option<AttemptId>,
}

impl Attempt {
    /// Creates a pending attempt.
    #[must_use]
    pub fn pending(
        id: AttemptId,
        task: TaskId,
        job: JobId,
        created_at: SimTime,
        start_fraction: f64,
    ) -> Self {
        Attempt {
            id,
            task,
            job,
            created_at,
            start_fraction: start_fraction.clamp(0.0, 0.999_999),
            state: AttemptState::Pending,
            node: None,
            launched_at: None,
            jvm_delay_secs: 0.0,
            work_duration_secs: 0.0,
            ended_at: None,
            next_sibling: None,
        }
    }

    /// Marks the attempt as started on `node` at `now` with the given JVM
    /// delay and full-split processing time.
    pub fn start(&mut self, node: NodeId, now: SimTime, jvm_delay_secs: f64, work_secs: f64) {
        debug_assert_eq!(self.state, AttemptState::Pending);
        self.state = AttemptState::Running;
        self.node = Some(node);
        self.launched_at = Some(now);
        self.jvm_delay_secs = jvm_delay_secs.max(0.0);
        self.work_duration_secs = work_secs.max(f64::MIN_POSITIVE);
    }

    /// True while the attempt occupies (or waits for) a container.
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self.state, AttemptState::Pending | AttemptState::Running)
    }

    /// True while the attempt is running on a container.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.state == AttemptState::Running
    }

    /// The instant useful work begins (JVM fully launched), if started.
    #[must_use]
    pub fn work_start(&self) -> Option<SimTime> {
        self.launched_at
            .map(|t| t + crate::time::SimDuration::from_secs(self.jvm_delay_secs))
    }

    /// The completion instant this attempt will reach if left alone.
    #[must_use]
    pub fn completion_time(&self) -> Option<SimTime> {
        self.launched_at.map(|launched| {
            let remaining = (1.0 - self.start_fraction) * self.work_duration_secs;
            launched
                + crate::time::SimDuration::from_secs(self.jvm_delay_secs)
                + crate::time::SimDuration::from_secs(remaining)
        })
    }

    /// Progress score (fraction of the split processed) at time `now`,
    /// following Hadoop's map-phase definition: the resumed offset counts as
    /// already-processed data.
    #[must_use]
    pub fn progress_at(&self, now: SimTime) -> f64 {
        let Some(work_start) = self.work_start() else {
            return 0.0;
        };
        if now <= work_start {
            // The JVM is still launching; Hadoop reports zero progress until
            // the first record is processed.
            return if self.start_fraction > 0.0 {
                self.start_fraction
            } else {
                0.0
            };
        }
        let elapsed = (now - work_start).as_secs();
        let fraction = self.start_fraction + elapsed / self.work_duration_secs;
        fraction.min(1.0)
    }

    /// Machine time (seconds of container occupancy) accumulated by `now`,
    /// or in total if the attempt has already ended. Pending attempts cost
    /// nothing.
    #[must_use]
    pub fn machine_time_until(&self, now: SimTime) -> f64 {
        let Some(launched) = self.launched_at else {
            return 0.0;
        };
        let end = match self.ended_at {
            Some(ended) => ended.min(now),
            None => now,
        };
        (end.saturating_since(launched)).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started_attempt(jvm: f64, work: f64, offset: f64) -> Attempt {
        let mut a = Attempt::pending(
            AttemptId::new(1),
            TaskId::new(2),
            JobId::new(3),
            SimTime::from_secs(5.0),
            offset,
        );
        a.start(NodeId::new(0), SimTime::from_secs(10.0), jvm, work);
        a
    }

    #[test]
    fn pending_attempt_defaults() {
        let a = Attempt::pending(
            AttemptId::new(1),
            TaskId::new(2),
            JobId::new(3),
            SimTime::ZERO,
            0.0,
        );
        assert_eq!(a.state, AttemptState::Pending);
        assert!(a.is_active());
        assert!(!a.is_running());
        assert_eq!(a.completion_time(), None);
        assert_eq!(a.progress_at(SimTime::from_secs(100.0)), 0.0);
        assert_eq!(a.machine_time_until(SimTime::from_secs(100.0)), 0.0);
    }

    #[test]
    fn start_fraction_is_clamped() {
        let a = Attempt::pending(
            AttemptId::new(1),
            TaskId::new(2),
            JobId::new(3),
            SimTime::ZERO,
            1.5,
        );
        assert!(a.start_fraction < 1.0);
        let b = Attempt::pending(
            AttemptId::new(1),
            TaskId::new(2),
            JobId::new(3),
            SimTime::ZERO,
            -0.5,
        );
        assert_eq!(b.start_fraction, 0.0);
    }

    #[test]
    fn completion_time_accounts_for_jvm_and_offset() {
        // Launched at 10, JVM 2 s, 40 s of full-split work, starting at 25 %:
        // completes at 10 + 2 + 0.75·40 = 42.
        let a = started_attempt(2.0, 40.0, 0.25);
        assert_eq!(a.completion_time(), Some(SimTime::from_secs(42.0)));
        assert!(a.is_running());
    }

    #[test]
    fn progress_is_linear_after_jvm() {
        let a = started_attempt(2.0, 40.0, 0.0);
        // Before work starts: zero progress.
        assert_eq!(a.progress_at(SimTime::from_secs(11.0)), 0.0);
        // Half the work done at 12 + 20 = 32.
        let p = a.progress_at(SimTime::from_secs(32.0));
        assert!((p - 0.5).abs() < 1e-9);
        // Clamped at 1 after completion.
        assert_eq!(a.progress_at(SimTime::from_secs(500.0)), 1.0);
    }

    #[test]
    fn resumed_attempt_reports_offset_progress_during_jvm() {
        let a = started_attempt(2.0, 40.0, 0.4);
        assert!((a.progress_at(SimTime::from_secs(11.0)) - 0.4).abs() < 1e-12);
        // One second of work adds 1/40 of the split.
        let p = a.progress_at(SimTime::from_secs(13.0));
        assert!((p - (0.4 + 1.0 / 40.0)).abs() < 1e-9);
    }

    #[test]
    fn machine_time_accumulates_and_freezes_at_end() {
        let mut a = started_attempt(2.0, 40.0, 0.0);
        assert!((a.machine_time_until(SimTime::from_secs(20.0)) - 10.0).abs() < 1e-9);
        a.state = AttemptState::Killed;
        a.ended_at = Some(SimTime::from_secs(25.0));
        assert!((a.machine_time_until(SimTime::from_secs(100.0)) - 15.0).abs() < 1e-9);
        // Querying before the end keeps the partial value.
        assert!((a.machine_time_until(SimTime::from_secs(12.0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn work_start_offset_by_jvm_delay() {
        let a = started_attempt(3.5, 10.0, 0.0);
        assert_eq!(a.work_start(), Some(SimTime::from_secs(13.5)));
    }
}
