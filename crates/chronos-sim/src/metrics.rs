//! Measurement: per-job metrics and the aggregate simulation report.
//!
//! The evaluation section measures three quantities per strategy: **PoCD**
//! (fraction of jobs finishing before their deadline), **cost** (average
//! machine running time priced at the per-unit VM rate) and **net utility**
//! `lg(PoCD − R_min) − θ·Cost`. [`SimulationReport`] computes all three from
//! the raw per-job records.
//!
//! Reports form a **commutative monoid** under [`SimulationReport::merge`]
//! with [`SimulationReport::default`] as the identity: the sharded runner
//! relies on this to combine per-shard reports into an aggregate whose
//! metrics are independent of how shards were scheduled across worker
//! threads. Everything a report accumulates is therefore either keyed
//! (per-job metrics in a [`BTreeMap`]), an order-insensitive reduction
//! (sums, maxima, element-wise histogram addition) or a set union (the
//! policy label).

use crate::error::SimError;
use crate::ids::JobId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Metrics of a single job after the simulation finished (or was cut off).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Deadline in seconds relative to submission.
    pub deadline_secs: f64,
    /// Completion instant, if the job finished within the simulation.
    pub completed_at: Option<SimTime>,
    /// Whether the job finished before its deadline.
    pub met_deadline: bool,
    /// Total machine running time of every attempt of the job (seconds).
    pub machine_time_secs: f64,
    /// Machine time multiplied by the job's per-unit-time price.
    pub cost: f64,
    /// Number of attempts ever launched (original + speculative/clone).
    pub attempts_launched: u32,
    /// Number of attempts killed by the Application Master.
    pub attempts_killed: u32,
    /// The number of extra attempts `r` the policy chose for this job, when
    /// the policy reported one (Chronos strategies do; baselines may not).
    pub chosen_r: Option<u32>,
}

impl JobMetrics {
    /// Job turnaround time in seconds, when the job completed.
    #[must_use]
    pub fn completion_secs(&self) -> Option<f64> {
        self.completed_at
            .map(|done| (done.saturating_since(self.submitted_at)).as_secs())
    }
}

/// Number of log₂ buckets in a [`LatencyHistogram`]. Bucket 0 covers
/// `[0 s, 1 s)`, bucket `i` covers `[2^(i−1), 2^i)` seconds, and the last
/// bucket absorbs everything above `2^38` seconds (≈ 8 700 years — far
/// beyond any simulated horizon).
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-shape log₂ histogram of job turnaround times.
///
/// Counts are integers and the bucket layout is a compile-time constant, so
/// merging two histograms (element-wise addition) is associative,
/// commutative and bit-exact — the properties the sharded runner's
/// order-insensitive report merge depends on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket completion counts; index per the [`LATENCY_BUCKETS`] doc.
    buckets: Vec<u64>,
    /// Jobs that never completed within the simulation.
    unfinished: u64,
}

impl LatencyHistogram {
    /// An empty histogram (the merge identity).
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; LATENCY_BUCKETS],
            unfinished: 0,
        }
    }

    /// The bucket a turnaround of `secs` falls into. NaN and sub-second
    /// (including negative) turnarounds land in bucket 0; `+∞` — like any
    /// value at or beyond the last bucket's lower edge — lands in the
    /// overflow bucket.
    #[must_use]
    pub fn bucket_index(secs: f64) -> usize {
        if secs.is_nan() || secs < 1.0 {
            return 0;
        }
        let index = secs.log2().floor();
        if index >= (LATENCY_BUCKETS - 2) as f64 {
            LATENCY_BUCKETS - 1
        } else {
            index as usize + 1
        }
    }

    /// Restores the fixed bucket count. The only way to violate it is
    /// deserializing a hand-edited report; healing here keeps `record_secs`
    /// panic-free and `merge` lossless on such data. Short vectors are
    /// zero-extended; counts beyond the fixed layout fold into the overflow
    /// bucket (they are by definition beyond its lower edge).
    fn ensure_shape(&mut self) {
        if self.buckets.len() < LATENCY_BUCKETS {
            self.buckets.resize(LATENCY_BUCKETS, 0);
        } else if self.buckets.len() > LATENCY_BUCKETS {
            let excess: u64 = self.buckets.drain(LATENCY_BUCKETS..).sum();
            self.buckets[LATENCY_BUCKETS - 1] += excess;
        }
    }

    /// Records one completed job with the given turnaround.
    pub fn record_secs(&mut self, secs: f64) {
        self.ensure_shape();
        self.buckets[Self::bucket_index(secs)] += 1;
    }

    /// Records one job that did not finish before the simulation ended.
    pub fn record_unfinished(&mut self) {
        self.unfinished += 1;
    }

    /// Adds `other`'s counts into `self` (element-wise, order-insensitive).
    /// Malformed bucket vectors on either side (see `ensure_shape`) are
    /// absorbed losslessly: `other`'s out-of-layout counts fold into the
    /// overflow bucket.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.ensure_shape();
        for (index, count) in other.buckets.iter().enumerate() {
            self.buckets[index.min(LATENCY_BUCKETS - 1)] += count;
        }
        self.unfinished += other.unfinished;
    }

    /// Count in bucket `index` (zero for out-of-range indices).
    #[must_use]
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets.get(index).copied().unwrap_or(0)
    }

    /// The `[low, high)` second range bucket `index` covers. The final
    /// bucket's upper bound is `f64::INFINITY`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        if index == 0 {
            (0.0, 1.0)
        } else if index >= LATENCY_BUCKETS - 1 {
            (2f64.powi((LATENCY_BUCKETS - 2) as i32), f64::INFINITY)
        } else {
            (2f64.powi(index as i32 - 1), 2f64.powi(index as i32))
        }
    }

    /// Number of completed jobs recorded.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Number of unfinished jobs recorded.
    #[must_use]
    pub fn unfinished(&self) -> u64 {
        self.unfinished
    }

    /// Total number of jobs recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.completed() + self.unfinished
    }

    /// An upper bound (bucket upper edge) on the `q`-quantile of the
    /// recorded turnarounds, or `None` when nothing completed. `q` is
    /// clamped to `[0, 1]`.
    ///
    /// The returned bound is always **finite**: a quantile landing in the
    /// overflow bucket reports that bucket's lower edge (`2^38`) — the
    /// tightest finite statement the histogram can make — instead of the
    /// bucket's infinite upper edge, which would serialize as `inf` in
    /// reports and defeat any numeric comparison against a latency target.
    /// Use [`LatencyHistogram::saturated`] to detect that the bound was
    /// clamped this way.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<f64> {
        let completed = self.completed();
        if completed == 0 {
            return None;
        }
        let overflow_edge = Self::bucket_bounds(LATENCY_BUCKETS - 1).0;
        let target = (q.clamp(0.0, 1.0) * completed as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                // The overflow bucket (and any out-of-layout index from a
                // deserialized oversized vector) has no finite upper edge;
                // report its lower edge instead.
                return Some(if index >= LATENCY_BUCKETS - 1 {
                    overflow_edge
                } else {
                    Self::bucket_bounds(index).1
                });
            }
        }
        Some(overflow_edge)
    }

    /// Number of completed observations — the Prometheus `_count` of the
    /// histogram. Alias of [`LatencyHistogram::completed`] under the name
    /// metric exporters expect.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.completed()
    }

    /// An upper-bound approximation of the summed turnaround seconds — the
    /// Prometheus `_sum`. The histogram stores only bucket counts (the
    /// serialized report format is golden-pinned, so no exact sum field
    /// can be added), so each observation is charged its bucket's upper
    /// edge; overflow-bucket observations are charged the finite lower
    /// edge `2^38` instead (see [`LatencyHistogram::saturated`]).
    #[must_use]
    pub fn sum(&self) -> f64 {
        let overflow_edge = Self::bucket_bounds(LATENCY_BUCKETS - 1).0;
        self.buckets
            .iter()
            .enumerate()
            .map(|(index, &count)| {
                let edge = if index >= LATENCY_BUCKETS - 1 {
                    overflow_edge
                } else {
                    Self::bucket_bounds(index).1
                };
                count as f64 * edge
            })
            .sum()
    }

    /// Mean turnaround in seconds under the same bucket-upper-edge
    /// approximation as [`LatencyHistogram::sum`], or `None` when nothing
    /// completed.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum() / count as f64)
        }
    }

    /// Iterates every bucket as `((low, high), count)` in index order —
    /// the public bucket-walk the Prometheus renderer (and any external
    /// exporter) needs. The final bucket's `high` is `f64::INFINITY`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = ((f64, f64), u64)> + '_ {
        (0..LATENCY_BUCKETS)
            .map(move |index| (Self::bucket_bounds(index), self.bucket_count(index)))
    }

    /// Snapshots the histogram into the exportable
    /// [`HistogramMetric`](chronos_obs::HistogramMetric) form: finite
    /// bucket upper edges, per-bucket counts with a trailing overflow
    /// bucket, and the derived [`LatencyHistogram::sum`]. Unfinished jobs
    /// are not part of the distribution; export them as their own counter.
    #[must_use]
    pub fn to_metric(&self) -> chronos_obs::HistogramMetric {
        let bounds: Vec<f64> = (0..LATENCY_BUCKETS - 1)
            .map(|index| Self::bucket_bounds(index).1)
            .collect();
        let mut counts: Vec<u64> = (0..LATENCY_BUCKETS).map(|i| self.bucket_count(i)).collect();
        // A deserialized oversized vector keeps out-of-layout counts until
        // healed; fold them into the overflow bucket like `merge` does.
        counts[LATENCY_BUCKETS - 1] += self
            .buckets
            .iter()
            .skip(LATENCY_BUCKETS)
            .copied()
            .sum::<u64>();
        chronos_obs::HistogramMetric::from_parts(bounds, counts, self.sum())
    }

    /// True when any sample landed in the overflow bucket, i.e. some
    /// recorded value was at or beyond the last bucket's lower edge
    /// (`2^38`). When this is set, quantiles that reach the overflow bucket
    /// are clamped to that edge by [`LatencyHistogram::quantile_upper_bound`]
    /// and should be read as "at least this much".
    #[must_use]
    pub fn saturated(&self) -> bool {
        // `skip` rather than indexing: a deserialized oversized vector keeps
        // its out-of-layout counts until the next record/merge heals it, and
        // those counts are overflow counts by definition.
        self.buckets
            .iter()
            .skip(LATENCY_BUCKETS - 1)
            .any(|&count| count > 0)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Aggregate report over all jobs of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The policy that produced this run. After a merge this is the
    /// `+`-joined sorted set of the contributing policy labels.
    pub policy: String,
    /// Per-job metrics keyed by job id.
    pub jobs: BTreeMap<JobId, JobMetrics>,
    /// Number of events that were dispatched to a handler. This is the
    /// engine's unit of work: throughput (events/sec) and the `max_events`
    /// budget are both measured over dispatched events.
    pub events_dispatched: u64,
    /// Number of lazily-deleted events popped and discarded (completions of
    /// attempts that were killed after the event was scheduled). Diagnostic
    /// only — stale pops advance simulated time but do no work and consume
    /// no event budget.
    pub events_stale: u64,
    /// Simulated instant at which the run ended (the latest such instant
    /// across shards after a merge).
    pub ended_at: SimTime,
    /// Log₂ histogram of job turnaround times.
    pub latency: LatencyHistogram,
}

impl SimulationReport {
    /// Number of jobs in the report.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Exports the report's aggregates into a
    /// [`MetricsRegistry`](chronos_obs::MetricsRegistry) under the
    /// `chronos_sim_*` namespace: engine work counters
    /// (`events_dispatched`/`events_stale`), job/deadline/attempt totals
    /// and the turnaround histogram. Only merge-stable integer aggregates
    /// are exported, so exporting a merged sharded report equals merging
    /// the per-shard exports — worker count stays invisible.
    pub fn export_metrics(&self, registry: &mut chronos_obs::MetricsRegistry) {
        registry.counter_add(
            "chronos_sim_events_dispatched_total",
            "Events dispatched to a handler (the engine's unit of work)",
            self.events_dispatched,
        );
        registry.counter_add(
            "chronos_sim_events_stale_total",
            "Lazily-deleted events popped and discarded",
            self.events_stale,
        );
        registry.counter_add(
            "chronos_sim_jobs_total",
            "Jobs simulated",
            self.jobs.len() as u64,
        );
        let met = self.jobs.values().filter(|job| job.met_deadline).count() as u64;
        registry.counter_add(
            "chronos_sim_deadlines_met_total",
            "Jobs that finished before their deadline",
            met,
        );
        registry.counter_add(
            "chronos_sim_deadlines_missed_total",
            "Jobs that missed their deadline (or never finished)",
            self.jobs.len() as u64 - met,
        );
        registry.counter_add(
            "chronos_sim_attempts_total",
            "Attempts ever launched (original + speculative/clone)",
            self.total_attempts(),
        );
        registry.counter_add(
            "chronos_sim_attempts_killed_total",
            "Attempts killed by the Application Master",
            self.total_kills(),
        );
        registry.counter_add(
            "chronos_sim_jobs_unfinished_total",
            "Jobs still running when the simulation ended",
            self.latency.unfinished(),
        );
        registry.histogram_merge(
            "chronos_sim_latency_seconds",
            "Job turnaround time distribution (log2 buckets)",
            self.latency.to_metric(),
        );
    }

    /// Accumulates `other` into `self`.
    ///
    /// The operation is **associative and commutative** (and
    /// [`SimulationReport::default`] is its identity), so any merge order —
    /// and therefore any shard-to-worker schedule — produces bit-identical
    /// aggregates:
    ///
    /// * per-job metrics are unioned into the id-keyed map (job ids must be
    ///   disjoint; this is what makes the union order-insensitive),
    /// * `events_dispatched` and `events_stale` are summed,
    /// * `ended_at` takes the maximum over the exact integer-microsecond
    ///   clock,
    /// * latency histograms add element-wise over integer counts,
    /// * the policy label becomes the `+`-joined sorted set of both sides'
    ///   labels (normally a single label, since shards share a policy).
    ///
    /// Derived metrics (PoCD, mean cost, utility) are computed on demand
    /// from the merged per-job map, so they need no merge rule of their own.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MergeConflict`] when both reports contain the
    /// same job id; `self` is left unchanged in that case.
    pub fn merge(&mut self, other: SimulationReport) -> Result<(), SimError> {
        // Disjoint id *ranges* (the common case: shards own contiguous,
        // ordered job-id blocks) need no per-key duplicate scan.
        let ranges_overlap = match (
            self.jobs.first_key_value(),
            self.jobs.last_key_value(),
            other.jobs.first_key_value(),
            other.jobs.last_key_value(),
        ) {
            (
                Some((self_min, _)),
                Some((self_max, _)),
                Some((other_min, _)),
                Some((other_max, _)),
            ) => other_min <= self_max && self_min <= other_max,
            _ => false,
        };
        if ranges_overlap {
            if let Some(duplicate) = other.jobs.keys().find(|id| self.jobs.contains_key(id)) {
                return Err(SimError::merge_conflict(format!(
                    "both reports contain {duplicate}"
                )));
            }
        }
        self.policy = union_policy_labels(&self.policy, &other.policy);
        // `append` bulk-merges two sorted trees (and degenerates to a plain
        // move while `self` is still empty), where `extend` would pay a
        // full tree descent per job.
        let mut other_jobs = other.jobs;
        self.jobs.append(&mut other_jobs);
        self.events_dispatched += other.events_dispatched;
        self.events_stale += other.events_stale;
        self.ended_at = self.ended_at.max(other.ended_at);
        self.latency.merge(&other.latency);
        Ok(())
    }

    /// Folds any number of reports into one, starting from the identity
    /// (default) report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MergeConflict`] when two reports share a job id.
    pub fn merged<I>(reports: I) -> Result<SimulationReport, SimError>
    where
        I: IntoIterator<Item = SimulationReport>,
    {
        let mut aggregate = SimulationReport::default();
        for report in reports {
            aggregate.merge(report)?;
        }
        Ok(aggregate)
    }

    /// PoCD: the fraction of jobs that completed before their deadline.
    #[must_use]
    pub fn pocd(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let met = self.jobs.values().filter(|j| j.met_deadline).count();
        met as f64 / self.jobs.len() as f64
    }

    /// Mean machine running time per job, in seconds.
    #[must_use]
    pub fn mean_machine_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.values().map(|j| j.machine_time_secs).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean priced cost per job (the paper's "Cost" axis).
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.values().map(|j| j.cost).sum::<f64>() / self.jobs.len() as f64
    }

    /// Total priced cost over all jobs.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.jobs.values().map(|j| j.cost).sum()
    }

    /// Mean job completion (turnaround) time over completed jobs, seconds.
    #[must_use]
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let completed: Vec<f64> = self
            .jobs
            .values()
            .filter_map(JobMetrics::completion_secs)
            .collect();
        if completed.is_empty() {
            None
        } else {
            Some(completed.iter().sum::<f64>() / completed.len() as f64)
        }
    }

    /// Total attempts launched across all jobs.
    #[must_use]
    pub fn total_attempts(&self) -> u64 {
        self.jobs
            .values()
            .map(|j| u64::from(j.attempts_launched))
            .sum()
    }

    /// Total attempts killed across all jobs.
    #[must_use]
    pub fn total_kills(&self) -> u64 {
        self.jobs
            .values()
            .map(|j| u64::from(j.attempts_killed))
            .sum()
    }

    /// Histogram of the `r` values the policy chose (Figure 5). Jobs without
    /// a reported `r` are ignored.
    #[must_use]
    pub fn chosen_r_histogram(&self) -> BTreeMap<u32, usize> {
        let mut histogram = BTreeMap::new();
        for job in self.jobs.values() {
            if let Some(r) = job.chosen_r {
                *histogram.entry(r).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// Net utility `lg(PoCD − r_min) − θ · mean cost`, the paper's "Utility"
    /// axis. Returns `f64::NEG_INFINITY` when the PoCD does not exceed the
    /// floor, matching the analytical convention.
    #[must_use]
    pub fn net_utility(&self, theta: f64, r_min: f64) -> f64 {
        let margin = self.pocd() - r_min;
        if margin <= 0.0 {
            return f64::NEG_INFINITY;
        }
        margin.log10() - theta * self.mean_cost()
    }

    /// Fraction of jobs that did not finish before the simulation ended.
    #[must_use]
    pub fn unfinished_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let unfinished = self
            .jobs
            .values()
            .filter(|j| j.completed_at.is_none())
            .count();
        unfinished as f64 / self.jobs.len() as f64
    }
}

/// The `+`-joined sorted union of two policy-label sets. Treating the label
/// as a set makes the merge commutative and associative even when reports
/// from different policies are combined; the empty label (the identity
/// report's) vanishes.
fn union_policy_labels(a: &str, b: &str) -> String {
    let labels: BTreeSet<&str> = a
        .split('+')
        .chain(b.split('+'))
        .filter(|label| !label.is_empty())
        .collect();
    labels.into_iter().collect::<Vec<_>>().join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(id: u64, met: bool, machine: f64, cost: f64, r: Option<u32>) -> JobMetrics {
        JobMetrics {
            job: JobId::new(id),
            submitted_at: SimTime::from_secs(0.0),
            deadline_secs: 100.0,
            completed_at: Some(SimTime::from_secs(if met { 80.0 } else { 150.0 })),
            met_deadline: met,
            machine_time_secs: machine,
            cost,
            attempts_launched: 3,
            attempts_killed: 1,
            chosen_r: r,
        }
    }

    /// Builds a report whose latency histogram is consistent with its job
    /// map, the way `Simulation::build_report` produces them.
    fn report_of(entries: Vec<JobMetrics>) -> SimulationReport {
        let mut jobs = BTreeMap::new();
        let mut latency = LatencyHistogram::new();
        for entry in entries {
            match entry.completion_secs() {
                Some(secs) => latency.record_secs(secs),
                None => latency.record_unfinished(),
            }
            jobs.insert(entry.job, entry);
        }
        SimulationReport {
            policy: "test".to_string(),
            jobs,
            events_dispatched: 99,
            events_stale: 5,
            ended_at: SimTime::from_secs(500.0),
            latency,
        }
    }

    fn report() -> SimulationReport {
        report_of(vec![
            metrics(0, true, 600.0, 6.0, Some(2)),
            metrics(1, true, 400.0, 4.0, Some(2)),
            metrics(2, false, 800.0, 8.0, Some(3)),
            metrics(3, true, 200.0, 2.0, None),
        ])
    }

    #[test]
    fn pocd_is_met_fraction() {
        assert!((report().pocd() - 0.75).abs() < 1e-12);
        assert_eq!(SimulationReport::default().pocd(), 0.0);
    }

    #[test]
    fn cost_and_machine_time_means() {
        let r = report();
        assert!((r.mean_machine_time() - 500.0).abs() < 1e-9);
        assert!((r.mean_cost() - 5.0).abs() < 1e-9);
        assert!((r.total_cost() - 20.0).abs() < 1e-9);
        assert_eq!(SimulationReport::default().mean_cost(), 0.0);
    }

    #[test]
    fn completion_time_mean() {
        let r = report();
        // Three jobs at 80 s, one at 150 s.
        assert!((r.mean_completion_secs().unwrap() - (3.0 * 80.0 + 150.0) / 4.0).abs() < 1e-9);
        assert!(SimulationReport::default().mean_completion_secs().is_none());
    }

    #[test]
    fn attempt_counters() {
        let r = report();
        assert_eq!(r.total_attempts(), 12);
        assert_eq!(r.total_kills(), 4);
        assert_eq!(r.job_count(), 4);
    }

    #[test]
    fn histogram_of_r() {
        let histogram = report().chosen_r_histogram();
        assert_eq!(histogram.get(&2), Some(&2));
        assert_eq!(histogram.get(&3), Some(&1));
        assert_eq!(histogram.get(&0), None);
    }

    #[test]
    fn net_utility_matches_definition() {
        let r = report();
        let expected = (0.75f64 - 0.1).log10() - 1e-3 * 5.0;
        assert!((r.net_utility(1e-3, 0.1) - expected).abs() < 1e-12);
        assert_eq!(r.net_utility(1e-3, 0.75), f64::NEG_INFINITY);
        assert_eq!(r.net_utility(1e-3, 0.9), f64::NEG_INFINITY);
    }

    #[test]
    fn unfinished_fraction_counts_incomplete_jobs() {
        let mut r = report();
        assert_eq!(r.unfinished_fraction(), 0.0);
        r.jobs.get_mut(&JobId::new(2)).unwrap().completed_at = None;
        assert!((r.unfinished_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SimulationReport::default().unfinished_fraction(), 0.0);
    }

    #[test]
    fn job_metrics_completion_secs() {
        let m = metrics(0, true, 1.0, 1.0, None);
        assert!((m.completion_secs().unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_index(0.5), 0);
        assert_eq!(LatencyHistogram::bucket_index(1.0), 1);
        assert_eq!(LatencyHistogram::bucket_index(1.9), 1);
        assert_eq!(LatencyHistogram::bucket_index(2.0), 2);
        assert_eq!(LatencyHistogram::bucket_index(80.0), 7);
        assert_eq!(LatencyHistogram::bucket_index(150.0), 8);
        assert_eq!(
            LatencyHistogram::bucket_index(f64::MAX),
            LATENCY_BUCKETS - 1
        );
        assert_eq!(
            LatencyHistogram::bucket_index(f64::INFINITY),
            LATENCY_BUCKETS - 1
        );
        assert_eq!(LatencyHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LatencyHistogram::bucket_index(-3.0), 0);
        let (low, high) = LatencyHistogram::bucket_bounds(7);
        assert_eq!((low, high), (64.0, 128.0));
        assert_eq!(LatencyHistogram::bucket_bounds(0), (0.0, 1.0));
        assert_eq!(
            LatencyHistogram::bucket_bounds(LATENCY_BUCKETS - 1).1,
            f64::INFINITY
        );
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = LatencyHistogram::new();
        a.record_secs(80.0);
        a.record_secs(90.0);
        a.record_unfinished();
        let mut b = LatencyHistogram::new();
        b.record_secs(150.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.completed(), 3);
        assert_eq!(ab.unfinished(), 1);
        assert_eq!(ab.total(), 4);
        assert_eq!(ab.bucket_count(7), 2);
        assert_eq!(ab.bucket_count(8), 1);
        assert_eq!(ab.bucket_count(999), 0);
    }

    #[test]
    fn histogram_heals_malformed_bucket_vectors() {
        // The fixed bucket count is an invariant of the type; the only way
        // around the constructor is deserializing hand-edited JSON. Both
        // record and merge must cope instead of panicking or dropping tail
        // counts.
        let mut short: LatencyHistogram =
            serde_json::from_str(r#"{"buckets": [1, 2], "unfinished": 3}"#).unwrap();
        short.record_secs(f64::INFINITY); // overflow bucket, far past len 2
        assert_eq!(short.bucket_count(LATENCY_BUCKETS - 1), 1);
        assert_eq!(short.completed(), 4);

        let mut tall = LatencyHistogram::new();
        tall.record_secs(f64::MAX);
        let short_again: LatencyHistogram =
            serde_json::from_str(r#"{"buckets": [5], "unfinished": 0}"#).unwrap();
        tall.merge(&short_again);
        assert_eq!(tall.bucket_count(0), 5);
        assert_eq!(tall.completed(), 6);

        let mut receiver: LatencyHistogram =
            serde_json::from_str(r#"{"buckets": [], "unfinished": 1}"#).unwrap();
        receiver.merge(&tall);
        assert_eq!(receiver.completed(), 6);
        assert_eq!(receiver.unfinished(), 1);

        // An oversized vector folds its out-of-layout counts into the
        // overflow bucket instead of dropping them.
        let oversized_json = format!(
            r#"{{"buckets": [{}], "unfinished": 0}}"#,
            vec!["1"; LATENCY_BUCKETS + 2].join(", ")
        );
        let oversized: LatencyHistogram = serde_json::from_str(&oversized_json).unwrap();
        let mut merged = LatencyHistogram::new();
        merged.merge(&oversized);
        assert_eq!(merged.completed(), (LATENCY_BUCKETS + 2) as u64);
        assert_eq!(merged.bucket_count(LATENCY_BUCKETS - 1), 3);
        let mut recorder = oversized;
        recorder.record_secs(0.1);
        assert_eq!(recorder.completed(), (LATENCY_BUCKETS + 3) as u64);
        assert_eq!(recorder.bucket_count(LATENCY_BUCKETS - 1), 3);
    }

    #[test]
    fn histogram_quantile_upper_bound() {
        let mut h = LatencyHistogram::new();
        assert!(h.quantile_upper_bound(0.5).is_none());
        h.record_secs(80.0); // bucket 7: [64, 128)
        h.record_secs(90.0);
        h.record_secs(150.0); // bucket 8: [128, 256)
        assert_eq!(h.quantile_upper_bound(0.5), Some(128.0));
        assert_eq!(h.quantile_upper_bound(1.0), Some(256.0));
        assert_eq!(h.quantile_upper_bound(0.0), Some(128.0));
    }

    #[test]
    fn overflow_quantiles_are_finite_and_flagged() {
        // Regression: a quantile landing in the overflow bucket used to
        // return Some(f64::INFINITY), which serialized as `inf` in reports.
        let mut h = LatencyHistogram::new();
        h.record_secs(80.0); // bucket 7
        h.record_secs(f64::MAX); // overflow bucket
        let overflow_edge = LatencyHistogram::bucket_bounds(LATENCY_BUCKETS - 1).0;
        assert_eq!(h.quantile_upper_bound(1.0), Some(overflow_edge));
        assert!(h.quantile_upper_bound(1.0).unwrap().is_finite());
        // Quantiles below the overflow bucket are untouched.
        assert_eq!(h.quantile_upper_bound(0.5), Some(128.0));
        // The clamp is observable: the histogram reports saturation.
        assert!(h.saturated());

        let mut clean = LatencyHistogram::new();
        clean.record_secs(80.0);
        assert!(!clean.saturated());
        assert!(!LatencyHistogram::new().saturated());

        // Every sample in overflow: every quantile is the finite edge.
        let mut all_over = LatencyHistogram::new();
        all_over.record_secs(f64::INFINITY);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(all_over.quantile_upper_bound(q), Some(overflow_edge));
        }

        // Out-of-layout counts in a deserialized oversized vector are
        // overflow counts too — for the flag and for the clamp.
        let oversized_json = format!(
            r#"{{"buckets": [{}], "unfinished": 0}}"#,
            vec!["0"; LATENCY_BUCKETS]
                .into_iter()
                .chain(["1"])
                .collect::<Vec<_>>()
                .join(", ")
        );
        let oversized: LatencyHistogram = serde_json::from_str(&oversized_json).unwrap();
        assert!(oversized.saturated());
        assert_eq!(oversized.quantile_upper_bound(1.0), Some(overflow_edge));
    }

    #[test]
    fn quantile_zero_is_the_first_non_empty_bucket_edge() {
        // q = 0 makes the raw target 0 samples; the `.max(1.0)` clamp must
        // promote it to "the first recorded sample", i.e. the upper edge of
        // the first non-empty bucket — not bucket 0's edge, and not `None`.
        let mut h = LatencyHistogram::new();
        h.record_secs(150.0); // bucket 8: [128, 256)
        h.record_secs(1000.0); // bucket 10
        assert_eq!(h.quantile_upper_bound(0.0), Some(256.0));
        // Negative q clamps to 0 and behaves identically.
        assert_eq!(h.quantile_upper_bound(-3.0), Some(256.0));
    }

    #[test]
    fn quantile_extremes_on_a_single_sample() {
        // With one sample every quantile is that sample's bucket edge.
        let mut h = LatencyHistogram::new();
        h.record_secs(80.0); // bucket 7: [64, 128)
        for q in [0.0, 0.25, 0.5, 1.0, 2.0] {
            assert_eq!(h.quantile_upper_bound(q), Some(128.0), "q = {q}");
        }
        // Unfinished jobs do not participate in quantiles.
        h.record_unfinished();
        assert_eq!(h.quantile_upper_bound(1.0), Some(128.0));
    }

    #[test]
    fn merged_histogram_quantiles_match_recompute_from_scratch() {
        // Quantiles over a merge of shard histograms must equal quantiles
        // over one histogram fed every sample — the property the sharded
        // runner's report aggregation depends on.
        let samples: [&[f64]; 3] = [&[0.4, 3.0, 900.0], &[70.0, 70.5, 128.0], &[2.0, 40_000.0]];
        let mut merged = LatencyHistogram::new();
        let mut scratch = LatencyHistogram::new();
        for shard_samples in samples {
            let mut shard = LatencyHistogram::new();
            for &secs in shard_samples {
                shard.record_secs(secs);
                scratch.record_secs(secs);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, scratch);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile_upper_bound(q),
                scratch.quantile_upper_bound(q),
                "q = {q}"
            );
        }
    }

    #[test]
    fn report_latency_matches_job_map() {
        let r = report();
        assert_eq!(r.latency.total(), 4);
        assert_eq!(r.latency.completed(), 4);
        // Three jobs complete at 80 s, one at 150 s.
        assert_eq!(r.latency.bucket_count(7), 3);
        assert_eq!(r.latency.bucket_count(8), 1);
    }

    #[test]
    fn merge_accumulates_disjoint_reports() {
        let a = report_of(vec![
            metrics(0, true, 600.0, 6.0, Some(2)),
            metrics(1, false, 400.0, 4.0, None),
        ]);
        let b = report_of(vec![metrics(2, true, 200.0, 2.0, Some(1))]);
        let mut merged = a.clone();
        merged.merge(b.clone()).unwrap();
        assert_eq!(merged.job_count(), 3);
        assert_eq!(merged.events_dispatched, 198);
        assert_eq!(merged.events_stale, 10);
        assert_eq!(merged.ended_at, SimTime::from_secs(500.0));
        assert_eq!(merged.policy, "test");
        assert_eq!(merged.latency.total(), 3);
        assert!((merged.pocd() - 2.0 / 3.0).abs() < 1e-12);

        // Commutative: merging the other way round gives the same report.
        let mut reversed = b;
        reversed.merge(a).unwrap();
        assert_eq!(merged, reversed);
    }

    #[test]
    fn merge_identity_is_default() {
        let r = report();
        let mut left = SimulationReport::default();
        left.merge(r.clone()).unwrap();
        assert_eq!(left, r);
        let mut right = r.clone();
        right.merge(SimulationReport::default()).unwrap();
        assert_eq!(right, r);
    }

    #[test]
    fn merge_rejects_duplicate_job_ids() {
        let a = report_of(vec![metrics(0, true, 600.0, 6.0, None)]);
        let b = report_of(vec![metrics(0, true, 200.0, 2.0, None)]);
        let mut merged = a.clone();
        let err = merged.merge(b).unwrap_err();
        assert!(matches!(err, SimError::MergeConflict { .. }));
        // The failed merge must leave the receiver untouched.
        assert_eq!(merged, a);
    }

    #[test]
    fn merge_unions_policy_labels() {
        let mut a = report_of(vec![metrics(0, true, 1.0, 1.0, None)]);
        let mut b = report_of(vec![metrics(1, true, 1.0, 1.0, None)]);
        a.policy = "s-resume".to_string();
        b.policy = "clone".to_string();
        let mut ab = a.clone();
        ab.merge(b.clone()).unwrap();
        assert_eq!(ab.policy, "clone+s-resume");
        let mut ba = b;
        ba.merge(a).unwrap();
        assert_eq!(ba.policy, "clone+s-resume");
        // Merging the same label twice does not duplicate it.
        let mut c = report_of(vec![metrics(2, true, 1.0, 1.0, None)]);
        c.policy = "clone".to_string();
        ab.merge(c).unwrap();
        assert_eq!(ab.policy, "clone+s-resume");
    }

    #[test]
    fn merged_folds_many_reports() {
        let reports = vec![
            report_of(vec![metrics(0, true, 600.0, 6.0, None)]),
            report_of(vec![metrics(1, false, 400.0, 4.0, None)]),
            report_of(vec![metrics(2, true, 200.0, 2.0, None)]),
        ];
        let merged = SimulationReport::merged(reports).unwrap();
        assert_eq!(merged.job_count(), 3);
        assert_eq!(merged.events_dispatched, 297);
        assert_eq!(merged.events_stale, 15);
        assert_eq!(
            SimulationReport::merged(Vec::new()).unwrap(),
            SimulationReport::default()
        );
    }
}
