//! Measurement: per-job metrics and the aggregate simulation report.
//!
//! The evaluation section measures three quantities per strategy: **PoCD**
//! (fraction of jobs finishing before their deadline), **cost** (average
//! machine running time priced at the per-unit VM rate) and **net utility**
//! `lg(PoCD − R_min) − θ·Cost`. [`SimulationReport`] computes all three from
//! the raw per-job records.

use crate::ids::JobId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metrics of a single job after the simulation finished (or was cut off).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// The job.
    pub job: JobId,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Deadline in seconds relative to submission.
    pub deadline_secs: f64,
    /// Completion instant, if the job finished within the simulation.
    pub completed_at: Option<SimTime>,
    /// Whether the job finished before its deadline.
    pub met_deadline: bool,
    /// Total machine running time of every attempt of the job (seconds).
    pub machine_time_secs: f64,
    /// Machine time multiplied by the job's per-unit-time price.
    pub cost: f64,
    /// Number of attempts ever launched (original + speculative/clone).
    pub attempts_launched: u32,
    /// Number of attempts killed by the Application Master.
    pub attempts_killed: u32,
    /// The number of extra attempts `r` the policy chose for this job, when
    /// the policy reported one (Chronos strategies do; baselines may not).
    pub chosen_r: Option<u32>,
}

impl JobMetrics {
    /// Job turnaround time in seconds, when the job completed.
    #[must_use]
    pub fn completion_secs(&self) -> Option<f64> {
        self.completed_at
            .map(|done| (done.saturating_since(self.submitted_at)).as_secs())
    }
}

/// Aggregate report over all jobs of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The policy that produced this run.
    pub policy: String,
    /// Per-job metrics keyed by job id.
    pub jobs: BTreeMap<JobId, JobMetrics>,
    /// Total number of events processed (diagnostic).
    pub events_processed: u64,
    /// Simulated instant at which the run ended.
    pub ended_at: SimTime,
}

impl SimulationReport {
    /// Number of jobs in the report.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// PoCD: the fraction of jobs that completed before their deadline.
    #[must_use]
    pub fn pocd(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let met = self.jobs.values().filter(|j| j.met_deadline).count();
        met as f64 / self.jobs.len() as f64
    }

    /// Mean machine running time per job, in seconds.
    #[must_use]
    pub fn mean_machine_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.values().map(|j| j.machine_time_secs).sum::<f64>() / self.jobs.len() as f64
    }

    /// Mean priced cost per job (the paper's "Cost" axis).
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.values().map(|j| j.cost).sum::<f64>() / self.jobs.len() as f64
    }

    /// Total priced cost over all jobs.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.jobs.values().map(|j| j.cost).sum()
    }

    /// Mean job completion (turnaround) time over completed jobs, seconds.
    #[must_use]
    pub fn mean_completion_secs(&self) -> Option<f64> {
        let completed: Vec<f64> = self
            .jobs
            .values()
            .filter_map(JobMetrics::completion_secs)
            .collect();
        if completed.is_empty() {
            None
        } else {
            Some(completed.iter().sum::<f64>() / completed.len() as f64)
        }
    }

    /// Total attempts launched across all jobs.
    #[must_use]
    pub fn total_attempts(&self) -> u64 {
        self.jobs
            .values()
            .map(|j| u64::from(j.attempts_launched))
            .sum()
    }

    /// Total attempts killed across all jobs.
    #[must_use]
    pub fn total_kills(&self) -> u64 {
        self.jobs
            .values()
            .map(|j| u64::from(j.attempts_killed))
            .sum()
    }

    /// Histogram of the `r` values the policy chose (Figure 5). Jobs without
    /// a reported `r` are ignored.
    #[must_use]
    pub fn chosen_r_histogram(&self) -> BTreeMap<u32, usize> {
        let mut histogram = BTreeMap::new();
        for job in self.jobs.values() {
            if let Some(r) = job.chosen_r {
                *histogram.entry(r).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// Net utility `lg(PoCD − r_min) − θ · mean cost`, the paper's "Utility"
    /// axis. Returns `f64::NEG_INFINITY` when the PoCD does not exceed the
    /// floor, matching the analytical convention.
    #[must_use]
    pub fn net_utility(&self, theta: f64, r_min: f64) -> f64 {
        let margin = self.pocd() - r_min;
        if margin <= 0.0 {
            return f64::NEG_INFINITY;
        }
        margin.log10() - theta * self.mean_cost()
    }

    /// Fraction of jobs that did not finish before the simulation ended.
    #[must_use]
    pub fn unfinished_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let unfinished = self
            .jobs
            .values()
            .filter(|j| j.completed_at.is_none())
            .count();
        unfinished as f64 / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(id: u64, met: bool, machine: f64, cost: f64, r: Option<u32>) -> JobMetrics {
        JobMetrics {
            job: JobId::new(id),
            submitted_at: SimTime::from_secs(0.0),
            deadline_secs: 100.0,
            completed_at: Some(SimTime::from_secs(if met { 80.0 } else { 150.0 })),
            met_deadline: met,
            machine_time_secs: machine,
            cost,
            attempts_launched: 3,
            attempts_killed: 1,
            chosen_r: r,
        }
    }

    fn report() -> SimulationReport {
        let mut jobs = BTreeMap::new();
        jobs.insert(JobId::new(0), metrics(0, true, 600.0, 6.0, Some(2)));
        jobs.insert(JobId::new(1), metrics(1, true, 400.0, 4.0, Some(2)));
        jobs.insert(JobId::new(2), metrics(2, false, 800.0, 8.0, Some(3)));
        jobs.insert(JobId::new(3), metrics(3, true, 200.0, 2.0, None));
        SimulationReport {
            policy: "test".to_string(),
            jobs,
            events_processed: 99,
            ended_at: SimTime::from_secs(500.0),
        }
    }

    #[test]
    fn pocd_is_met_fraction() {
        assert!((report().pocd() - 0.75).abs() < 1e-12);
        assert_eq!(SimulationReport::default().pocd(), 0.0);
    }

    #[test]
    fn cost_and_machine_time_means() {
        let r = report();
        assert!((r.mean_machine_time() - 500.0).abs() < 1e-9);
        assert!((r.mean_cost() - 5.0).abs() < 1e-9);
        assert!((r.total_cost() - 20.0).abs() < 1e-9);
        assert_eq!(SimulationReport::default().mean_cost(), 0.0);
    }

    #[test]
    fn completion_time_mean() {
        let r = report();
        // Three jobs at 80 s, one at 150 s.
        assert!((r.mean_completion_secs().unwrap() - (3.0 * 80.0 + 150.0) / 4.0).abs() < 1e-9);
        assert!(SimulationReport::default().mean_completion_secs().is_none());
    }

    #[test]
    fn attempt_counters() {
        let r = report();
        assert_eq!(r.total_attempts(), 12);
        assert_eq!(r.total_kills(), 4);
        assert_eq!(r.job_count(), 4);
    }

    #[test]
    fn histogram_of_r() {
        let histogram = report().chosen_r_histogram();
        assert_eq!(histogram.get(&2), Some(&2));
        assert_eq!(histogram.get(&3), Some(&1));
        assert_eq!(histogram.get(&0), None);
    }

    #[test]
    fn net_utility_matches_definition() {
        let r = report();
        let expected = (0.75f64 - 0.1).log10() - 1e-3 * 5.0;
        assert!((r.net_utility(1e-3, 0.1) - expected).abs() < 1e-12);
        assert_eq!(r.net_utility(1e-3, 0.75), f64::NEG_INFINITY);
        assert_eq!(r.net_utility(1e-3, 0.9), f64::NEG_INFINITY);
    }

    #[test]
    fn unfinished_fraction_counts_incomplete_jobs() {
        let mut r = report();
        assert_eq!(r.unfinished_fraction(), 0.0);
        r.jobs.get_mut(&JobId::new(2)).unwrap().completed_at = None;
        assert!((r.unfinished_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SimulationReport::default().unfinished_fraction(), 0.0);
    }

    #[test]
    fn job_metrics_completion_secs() {
        let m = metrics(0, true, 1.0, 1.0, None);
        assert!((m.completion_secs().unwrap() - 80.0).abs() < 1e-9);
    }
}
