//! Cluster substrate: nodes, container slots and the ResourceManager.
//!
//! The simulator models the YARN ResourceManager as a pool of map-task
//! containers spread over nodes. Attempts request a container; if none is
//! free they wait in a FIFO queue (the single-queue FIFO scheduler the
//! paper's experiments use). Nodes can carry a slowdown factor so the
//! contention model in `chronos-trace` can make some machines persistently
//! slow — one of the documented causes of stragglers.

use crate::config::ClusterSpec;
use crate::error::SimError;
use crate::ids::{AttemptId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// How the ResourceManager picks a node for an incoming attempt.
///
/// All policies select through the count-bucket index (see
/// [`ResourceManager`]), never by scanning the node table per request, and
/// all of them are deterministic: ties break toward the highest node index,
/// the same convention the original most-free scan used. See
/// `docs/placement.md` for the full semantics and digest-safety rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Load-balance: the node with the most free slots wins (the paper's
    /// single-queue FIFO behavior, bit-identical to the pre-refactor
    /// engine). The default everywhere.
    #[default]
    MostFree,
    /// Consolidate: the busiest node that still has a free slot wins,
    /// leaving the emptiest nodes idle for large future requests.
    BinPack,
    /// The chronos-kubernetes-scheduler score: prefer nodes whose maximum
    /// remaining attempt time already covers the incoming attempt's
    /// expected duration (bin-packing tier), then nodes whose busy window
    /// it extends the least (extension tier), and only then empty nodes.
    /// Scored in integer microseconds of sim time so decisions stay
    /// digest-safe.
    DeadlineAware,
}

impl PlacementPolicy {
    /// Every placement policy, in display order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::MostFree,
        PlacementPolicy::BinPack,
        PlacementPolicy::DeadlineAware,
    ];

    /// The stable CLI/config label of this policy.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::MostFree => "most-free",
            PlacementPolicy::BinPack => "bin-pack",
            PlacementPolicy::DeadlineAware => "deadline-aware",
        }
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// Hand-written serde impls (the vendored derive has no `#[serde(...)]`
// attribute support): the wire form is the kebab-case CLI label, and a
// missing/null field deserializes to the default — so cluster specs
// serialized before the placement layer existed keep their exact meaning.
impl Serialize for PlacementPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl<'de> Deserialize<'de> for PlacementPolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Null => Ok(PlacementPolicy::default()),
            serde::Value::Str(label) => label
                .parse()
                .map_err(|err: ParsePlacementError| serde::Error::msg(err.to_string())),
            _ => Err(serde::Error::msg(
                "expected a placement policy label string",
            )),
        }
    }
}

/// Error parsing a [`PlacementPolicy`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlacementError {
    label: String,
}

impl fmt::Display for ParsePlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown placement policy `{}` (expected one of: ",
            self.label
        )?;
        for (index, policy) in PlacementPolicy::ALL.iter().enumerate() {
            if index > 0 {
                f.write_str(", ")?;
            }
            f.write_str(policy.label())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParsePlacementError {}

impl FromStr for PlacementPolicy {
    type Err = ParsePlacementError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PlacementPolicy::ALL
            .into_iter()
            .find(|policy| policy.label() == s)
            .ok_or_else(|| ParsePlacementError {
                label: s.to_string(),
            })
    }
}

/// Context for one placement request, in integer microseconds of sim time.
/// `MostFree` and `BinPack` ignore both fields; `DeadlineAware` compares
/// the expected duration against each candidate node's remaining work.
///
/// `expected_micros` must be a *causal* estimate (e.g. the task profile's
/// mean): the engine draws the actual work sample only after placement, so
/// feeding the sampled value back here would leak the future into the
/// decision — and change the RNG draw order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementRequest {
    /// Current sim time in microseconds.
    pub now_micros: u64,
    /// Expected duration of the incoming attempt in microseconds.
    pub expected_micros: u64,
}

/// The outcome of a successful placement decision. All fields are integers
/// so the decision can be traced digest-safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementChoice {
    /// The chosen node.
    pub node: NodeId,
    /// Free slots on the node at decision time (before this assignment).
    pub free_slots: u32,
    /// The `DeadlineAware` score tier: 2 = the attempt fits inside the
    /// node's busy window, 1 = it extends the window, 0 = empty node.
    /// Always 0 for `MostFree` and `BinPack`, which do not score.
    pub score_bucket: u8,
}

/// A worker node with a fixed number of container slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Total container slots on the node.
    pub slots: u32,
    /// Slots currently occupied by running attempts.
    pub busy: u32,
    /// Execution slowdown factor (≥ 1) applied to attempts placed here.
    pub slowdown: f64,
}

impl Node {
    /// Free slots on this node.
    #[must_use]
    pub fn free_slots(&self) -> u32 {
        self.slots.saturating_sub(self.busy)
    }
}

/// The ResourceManager: tracks slot occupancy and the queue of attempts
/// waiting for a container.
///
/// Placement must stay O(1): the engine consults the RM once per container
/// request and once per release in the event hot loop. Instead of scanning
/// all nodes for the most-free one, the RM keeps a *count-bucket index* —
/// one bitmap of node indices per possible free-slot count — plus the
/// current maximum count and a running free-slot total. `try_assign` picks
/// the **highest-index** node in the top bucket, which reproduces the
/// previous `max_by_key(free_slots)` scan exactly (`max_by_key` returns the
/// last of equally-maximal elements), so placements — and therefore the
/// straggler patterns on slowed nodes — are bit-identical to the old code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceManager {
    nodes: Vec<Node>,
    pending: VecDeque<AttemptId>,
    total_slots: u64,
    /// Running count of free slots across all nodes.
    free_total: u64,
    /// `free_index[c]` is a bitmap (64 node indices per word) of the nodes
    /// with exactly `c` free slots.
    free_index: Vec<Vec<u64>>,
    /// Highest `c ≥ 1` with a non-empty `free_index[c]`; 0 when the cluster
    /// is full.
    max_free: u32,
    /// The configured placement policy (from [`ClusterSpec::placement`]).
    placement: PlacementPolicy,
    /// Per node: the scheduled completion times (absolute sim micros) of
    /// the attempts running on it, maintained by the engine through
    /// [`ResourceManager::note_scheduled_completion`] /
    /// [`ResourceManager::release_scheduled`]. `DeadlineAware` derives each
    /// node's remaining-work window from this; the inner vectors are bounded
    /// by `slots_per_node`, so the max scan stays O(slots), not O(nodes).
    node_completions: Vec<Vec<u64>>,
}

#[inline]
fn set_bit(words: &mut [u64], idx: usize) {
    words[idx / 64] |= 1 << (idx % 64);
}

#[inline]
fn clear_bit(words: &mut [u64], idx: usize) {
    words[idx / 64] &= !(1 << (idx % 64));
}

impl ResourceManager {
    /// Builds the ResourceManager from a cluster specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the specification is invalid.
    pub fn new(spec: &ClusterSpec) -> Result<Self, SimError> {
        spec.validate()?;
        let nodes: Vec<Node> = (0..spec.nodes)
            .map(|i| Node {
                id: NodeId::new(u64::from(i)),
                slots: spec.slots_per_node,
                busy: 0,
                slowdown: spec.slowdown_of(i),
            })
            .collect();
        let words = nodes.len().div_ceil(64);
        let mut free_index = vec![vec![0u64; words]; spec.slots_per_node as usize + 1];
        for i in 0..nodes.len() {
            set_bit(&mut free_index[spec.slots_per_node as usize], i);
        }
        let node_count = nodes.len();
        Ok(ResourceManager {
            nodes,
            pending: VecDeque::new(),
            total_slots: spec.total_slots(),
            free_total: spec.total_slots(),
            free_index,
            max_free: spec.slots_per_node,
            placement: spec.placement,
            node_completions: vec![Vec::new(); node_count],
        })
    }

    /// The configured placement policy.
    #[must_use]
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Total number of container slots in the cluster.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Number of currently free container slots.
    #[must_use]
    pub fn free_slots(&self) -> u64 {
        self.free_total
    }

    /// Number of attempts waiting for a container.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The node table (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The slowdown factor of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node id.
    pub fn slowdown_of(&self, node: NodeId) -> Result<f64, SimError> {
        self.nodes
            .get(node.raw() as usize)
            .map(|n| n.slowdown)
            .ok_or_else(|| SimError::unknown(format!("{node}")))
    }

    /// Tries to grab a free slot with the *most-free* placement, regardless
    /// of the configured policy. Returns the chosen node or `None` when the
    /// cluster is full.
    ///
    /// Among equally-free nodes the highest node index wins — the same
    /// choice the former linear `max_by_key` scan made (see the struct
    /// docs), now found in O(1) through the count-bucket index. Placement-
    /// aware callers use [`ResourceManager::try_place`] instead.
    pub fn try_assign(&mut self) -> Option<NodeId> {
        let (best, count) = self.pick_most_free()?;
        self.commit_assign(best, count);
        Some(self.nodes[best].id)
    }

    /// Tries to grab a free slot under the configured [`PlacementPolicy`].
    /// Returns the decision (node, free slots at decision time, score tier)
    /// or `None` when the cluster is full.
    ///
    /// Every policy selects through the count-bucket index: `MostFree`
    /// reads the top bucket in O(1), `BinPack` the lowest non-empty bucket
    /// in O(slots), and `DeadlineAware` scores only the nodes present in
    /// the free buckets (O(free nodes), via bitmap iteration) rather than
    /// the whole node table.
    pub fn try_place(&mut self, request: PlacementRequest) -> Option<PlacementChoice> {
        let (best, count, score_bucket) = match self.placement {
            PlacementPolicy::MostFree => {
                let (best, count) = self.pick_most_free()?;
                (best, count, 0)
            }
            PlacementPolicy::BinPack => {
                let (best, count) = self.pick_bin_pack()?;
                (best, count, 0)
            }
            PlacementPolicy::DeadlineAware => self.pick_deadline_aware(&request)?,
        };
        self.commit_assign(best, count);
        Some(PlacementChoice {
            node: self.nodes[best].id,
            free_slots: count as u32,
            score_bucket,
        })
    }

    /// Most-free selection: the highest node index in the top bucket.
    fn pick_most_free(&self) -> Option<(usize, usize)> {
        if self.free_total == 0 {
            return None;
        }
        let count = self.max_free as usize;
        debug_assert!(count > 0, "free_total > 0 implies a non-empty top bucket");
        let (word, bits) = self.free_index[count]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, bits)| **bits != 0)
            .expect("max_free bucket is non-empty");
        Some((word * 64 + (63 - bits.leading_zeros() as usize), count))
    }

    /// Bin-pack selection: the highest node index in the *lowest* non-empty
    /// bucket — the busiest node that still has a free slot.
    fn pick_bin_pack(&self) -> Option<(usize, usize)> {
        if self.free_total == 0 {
            return None;
        }
        for count in 1..=self.max_free as usize {
            if let Some((word, bits)) = self.free_index[count]
                .iter()
                .enumerate()
                .rev()
                .find(|(_, bits)| **bits != 0)
            {
                return Some((word * 64 + (63 - bits.leading_zeros() as usize), count));
            }
        }
        unreachable!("free_total > 0 implies a non-empty bucket at or below max_free")
    }

    /// Deadline-aware selection: machine-aware hierarchical scoring over
    /// the nodes in the free buckets (the chronos-kubernetes-scheduler
    /// rule, extended with node speed). The primary criterion is the
    /// attempt's *effective* duration on the candidate — expected duration
    /// scaled by the node's slowdown — so stragglers are avoided whenever a
    /// faster slot exists; the snippet's fit/extend/empty tiers break ties
    /// among equal-speed nodes, and the highest node index breaks exact
    /// ties, like every other policy.
    fn pick_deadline_aware(&self, request: &PlacementRequest) -> Option<(usize, usize, u8)> {
        if self.free_total == 0 {
            return None;
        }
        let mut best: Option<(i128, u8, i128, usize, usize)> = None;
        for count in 1..=self.max_free as usize {
            for (word_index, word) in self.free_index[count].iter().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let bit = 63 - bits.leading_zeros() as usize;
                    bits &= !(1u64 << bit);
                    let idx = word_index * 64 + bit;
                    // One deterministic multiply-and-truncate: slowdowns
                    // come from config, never from measurements, so the
                    // result is identical on every worker and host. Only
                    // integers reach the trace (the tier below).
                    let effective =
                        (request.expected_micros as f64 * self.nodes[idx].slowdown) as u64;
                    let (tier, key) = self.deadline_score(idx, count as u32, effective, request);
                    let rank = (-i128::from(effective), tier, key, idx);
                    let better = match best {
                        None => true,
                        Some((neg_eff, best_tier, best_key, best_idx, _)) => {
                            rank >= (neg_eff, best_tier, best_key, best_idx)
                        }
                    };
                    if better {
                        best = Some((rank.0, tier, key, idx, count));
                    }
                }
            }
        }
        best.map(|(_, tier, _, idx, count)| (idx, count, tier))
    }

    /// The hierarchical deadline-aware score of placing an attempt whose
    /// *effective* duration on node `idx` (expected × node slowdown) is
    /// `effective`, with `free` free slots. Returns `(tier, within-tier
    /// key)`; both compare ascending, after the effective-duration primary
    /// criterion applied by [`ResourceManager::pick_deadline_aware`].
    ///
    /// * tier 2 (bin-packing): the node's busy window already covers the
    ///   attempt — prefer the *longest* window (consolidate), then free
    ///   slots.
    /// * tier 1 (extension): the attempt outlives the window — prefer the
    ///   *smallest* extension, then free slots.
    /// * tier 0 (empty node): penalized; prefer more free slots.
    ///
    /// The key is integer microseconds throughout, so the traced tier and
    /// every traced field stay digest-safe.
    fn deadline_score(
        &self,
        idx: usize,
        free: u32,
        effective: u64,
        request: &PlacementRequest,
    ) -> (u8, i128) {
        let existing = self.node_completions[idx]
            .iter()
            .map(|completion| completion.saturating_sub(request.now_micros))
            .max()
            .unwrap_or(0);
        if existing > 0 && effective <= existing {
            (2, i128::from(existing) * 100 + i128::from(free) * 10)
        } else if existing > 0 {
            (
                1,
                i128::from(free) * 10 - i128::from(effective - existing) * 100,
            )
        } else {
            (0, i128::from(free))
        }
    }

    /// Moves node `best` (currently in bucket `count`) one bucket down and
    /// updates the occupancy accounting — the shared commit step of every
    /// selection policy.
    fn commit_assign(&mut self, best: usize, count: usize) {
        clear_bit(&mut self.free_index[count], best);
        set_bit(&mut self.free_index[count - 1], best);
        self.nodes[best].busy += 1;
        self.free_total -= 1;
        while self.max_free > 0
            && self.free_index[self.max_free as usize]
                .iter()
                .all(|bits| *bits == 0)
        {
            self.max_free -= 1;
        }
        self.debug_assert_consistent();
    }

    /// Records that the attempt just started on `node` is scheduled to
    /// complete at `completion_micros` (absolute sim micros). Unknown nodes
    /// are ignored. Paired with [`ResourceManager::release_scheduled`].
    pub fn note_scheduled_completion(&mut self, node: NodeId, completion_micros: u64) {
        if let Some(entries) = self.node_completions.get_mut(node.raw() as usize) {
            entries.push(completion_micros);
        }
    }

    /// Releases a slot on `node` and forgets the attempt's scheduled
    /// completion time. Completion times that were never noted (e.g. slots
    /// assigned through the bare [`ResourceManager::try_assign`] test entry
    /// point) are silently absent.
    ///
    /// # Errors
    ///
    /// Same contract as [`ResourceManager::release`].
    pub fn release_scheduled(
        &mut self,
        node: NodeId,
        completion_micros: u64,
    ) -> Result<(), SimError> {
        self.release(node)?;
        let entries = &mut self.node_completions[node.raw() as usize];
        if let Some(pos) = entries
            .iter()
            .position(|completion| *completion == completion_micros)
        {
            entries.swap_remove(pos);
        }
        Ok(())
    }

    /// Releases a slot on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node, or
    /// [`SimError::InvalidAction`] if the node has no busy slot to release
    /// (which would indicate an engine accounting bug).
    pub fn release(&mut self, node: NodeId) -> Result<(), SimError> {
        let idx = node.raw() as usize;
        let entry = self
            .nodes
            .get_mut(idx)
            .ok_or_else(|| SimError::unknown(format!("{node}")))?;
        if entry.busy == 0 {
            return Err(SimError::invalid_action(format!(
                "released a slot on {node} which had no busy slots"
            )));
        }
        entry.busy -= 1;
        let now_free = entry.free_slots() as usize;
        clear_bit(&mut self.free_index[now_free - 1], idx);
        set_bit(&mut self.free_index[now_free], idx);
        self.free_total += 1;
        self.max_free = self.max_free.max(now_free as u32);
        self.debug_assert_consistent();
        Ok(())
    }

    /// Checks the derived count-bucket index against a from-scratch rebuild
    /// from the node table. Returns `None` when consistent, or a
    /// description of the first divergence — which would indicate an
    /// accounting bug in an assign/release path.
    #[cfg(any(test, debug_assertions))]
    fn consistency_violation(&self) -> Option<String> {
        let words = self.nodes.len().div_ceil(64);
        let mut free_index = vec![vec![0u64; words]; self.free_index.len()];
        let mut free_total = 0u64;
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.busy > node.slots {
                return Some(format!(
                    "node {idx} has {} busy slots but only {} total",
                    node.busy, node.slots
                ));
            }
            let free = node.free_slots() as usize;
            if free >= free_index.len() {
                return Some(format!(
                    "node {idx} has {free} free slots, beyond bucket range {}",
                    free_index.len()
                ));
            }
            set_bit(&mut free_index[free], idx);
            free_total += free as u64;
        }
        let max_free = (1..free_index.len())
            .rev()
            .find(|count| free_index[*count].iter().any(|bits| *bits != 0))
            .unwrap_or(0) as u32;
        if free_total != self.free_total {
            return Some(format!(
                "free_total is {} but the node table sums to {free_total}",
                self.free_total
            ));
        }
        if max_free != self.max_free {
            return Some(format!(
                "max_free is {} but the node table implies {max_free}",
                self.max_free
            ));
        }
        if free_index != self.free_index {
            return Some("free_index diverges from a from-scratch rebuild".to_string());
        }
        None
    }

    /// Debug-build guard run after every assign/release: the incremental
    /// index must exactly match a from-scratch rebuild.
    #[inline]
    fn debug_assert_consistent(&self) {
        #[cfg(debug_assertions)]
        if let Some(violation) = self.consistency_violation() {
            panic!("ResourceManager index inconsistent: {violation}");
        }
    }

    /// Adds an attempt to the back of the container wait queue.
    pub fn enqueue_pending(&mut self, attempt: AttemptId) {
        self.pending.push_back(attempt);
    }

    /// Pops the next waiting attempt, if any.
    pub fn dequeue_pending(&mut self) -> Option<AttemptId> {
        self.pending.pop_front()
    }

    /// Removes a specific attempt from the wait queue (used when a queued
    /// attempt is killed before it ever starts). Returns whether it was
    /// present.
    pub fn remove_pending(&mut self, attempt: AttemptId) -> bool {
        if let Some(pos) = self.pending.iter().position(|a| *a == attempt) {
            self.pending.remove(pos);
            true
        } else {
            false
        }
    }

    /// True when at least one attempt is waiting for a container — the
    /// condition Mantri checks before it keeps spawning extra attempts.
    #[must_use]
    pub fn has_waiting_work(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(nodes: u32, slots: u32) -> ResourceManager {
        ResourceManager::new(&ClusterSpec::homogeneous(nodes, slots)).unwrap()
    }

    #[test]
    fn construction_matches_spec() {
        let rm = rm(4, 2);
        assert_eq!(rm.total_slots(), 8);
        assert_eq!(rm.free_slots(), 8);
        assert_eq!(rm.nodes().len(), 4);
        assert!(!rm.has_waiting_work());
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(ResourceManager::new(&ClusterSpec::homogeneous(0, 2)).is_err());
    }

    #[test]
    fn assign_until_full_then_none() {
        let mut rm = rm(2, 2);
        let mut assigned = Vec::new();
        for _ in 0..4 {
            assigned.push(rm.try_assign().expect("slot available"));
        }
        assert_eq!(rm.free_slots(), 0);
        assert!(rm.try_assign().is_none());
        // Load balancing: both nodes should have received two attempts.
        let on_node0 = assigned.iter().filter(|n| n.raw() == 0).count();
        assert_eq!(on_node0, 2);
    }

    #[test]
    fn release_frees_capacity() {
        let mut rm = rm(1, 1);
        let node = rm.try_assign().unwrap();
        assert!(rm.try_assign().is_none());
        rm.release(node).unwrap();
        assert!(rm.try_assign().is_some());
    }

    #[test]
    fn release_errors() {
        let mut rm = rm(1, 1);
        assert!(rm.release(NodeId::new(9)).is_err());
        assert!(rm.release(NodeId::new(0)).is_err());
    }

    #[test]
    fn pending_queue_fifo_and_removal() {
        let mut rm = rm(1, 1);
        rm.enqueue_pending(AttemptId::new(1));
        rm.enqueue_pending(AttemptId::new(2));
        rm.enqueue_pending(AttemptId::new(3));
        assert_eq!(rm.pending_len(), 3);
        assert!(rm.has_waiting_work());
        assert!(rm.remove_pending(AttemptId::new(2)));
        assert!(!rm.remove_pending(AttemptId::new(2)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(1)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(3)));
        assert_eq!(rm.dequeue_pending(), None);
    }

    #[test]
    fn indexed_assignment_matches_linear_scan_reference() {
        // The count-bucket index must reproduce the old
        // `max_by_key(free_slots)` scan (last max wins) placement-for-
        // placement under arbitrary assign/release interleavings.
        let mut rm = rm(7, 3);
        let mut reference: Vec<u32> = vec![3; 7]; // free slots per node
        let mut running: Vec<u64> = Vec::new();
        // A fixed pseudo-random interleaving (splitmix-style) of assigns
        // and releases.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..2_000 {
            if next() % 3 != 0 || running.is_empty() {
                let expected = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| **f > 0)
                    .max_by_key(|(_, f)| **f)
                    .map(|(i, _)| i as u64);
                let got = rm.try_assign().map(|n| n.raw());
                assert_eq!(got, expected);
                if let Some(node) = got {
                    reference[node as usize] -= 1;
                    running.push(node);
                }
            } else {
                let node = running.swap_remove((next() % running.len() as u64) as usize);
                rm.release(NodeId::new(node)).unwrap();
                reference[node as usize] += 1;
            }
            assert_eq!(rm.free_slots(), u64::from(reference.iter().sum::<u32>()));
        }
    }

    #[test]
    fn slowdowns_surface_through_rm() {
        let mut spec = ClusterSpec::homogeneous(2, 1);
        spec.slowdowns = vec![1.0, 4.0];
        let rm = ResourceManager::new(&spec).unwrap();
        assert_eq!(rm.slowdown_of(NodeId::new(1)).unwrap(), 4.0);
        assert!(rm.slowdown_of(NodeId::new(5)).is_err());
    }

    fn rm_with(nodes: u32, slots: u32, placement: PlacementPolicy) -> ResourceManager {
        ResourceManager::new(&ClusterSpec::homogeneous(nodes, slots).with_placement(placement))
            .unwrap()
    }

    #[test]
    fn placement_labels_round_trip() {
        for policy in PlacementPolicy::ALL {
            assert_eq!(policy.label().parse::<PlacementPolicy>(), Ok(policy));
            assert_eq!(policy.to_string(), policy.label());
        }
        let err = "mostfree".parse::<PlacementPolicy>().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("mostfree"));
        for policy in PlacementPolicy::ALL {
            assert!(message.contains(policy.label()));
        }
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::MostFree);
    }

    #[test]
    fn most_free_try_place_matches_try_assign() {
        let mut a = rm_with(3, 2, PlacementPolicy::MostFree);
        let mut b = rm_with(3, 2, PlacementPolicy::MostFree);
        for _ in 0..6 {
            let via_assign = a.try_assign();
            let via_place = b.try_place(PlacementRequest::default());
            assert_eq!(via_assign, via_place.map(|choice| choice.node));
        }
        assert!(a.try_assign().is_none());
        assert!(b.try_place(PlacementRequest::default()).is_none());
    }

    #[test]
    fn bin_pack_prefers_the_busiest_node_with_a_free_slot() {
        let mut rm = rm_with(3, 2, PlacementPolicy::BinPack);
        // All nodes empty: the highest index in the (single) bucket wins.
        let first = rm.try_place(PlacementRequest::default()).unwrap();
        assert_eq!(first.node, NodeId::new(2));
        assert_eq!(first.free_slots, 2);
        // Node 2 now has 1 free slot — the lowest non-empty bucket — so
        // bin-pack keeps stacking onto it while most-free would move on.
        let second = rm.try_place(PlacementRequest::default()).unwrap();
        assert_eq!(second.node, NodeId::new(2));
        assert_eq!(second.free_slots, 1);
        // Node 2 is full: back to the emptiest bucket's highest index.
        let third = rm.try_place(PlacementRequest::default()).unwrap();
        assert_eq!(third.node, NodeId::new(1));
    }

    #[test]
    fn deadline_aware_tiers_order_fit_extend_empty() {
        let mut rm = rm_with(3, 2, PlacementPolicy::DeadlineAware);
        // Occupy one slot on nodes 0 and 1 with known completion times.
        // Node 0's window runs to t=100s, node 1's to t=20s; node 2 stays
        // empty.
        rm.nodes[0].busy = 1;
        rm.nodes[1].busy = 1;
        clear_bit(&mut rm.free_index[2], 0);
        set_bit(&mut rm.free_index[1], 0);
        clear_bit(&mut rm.free_index[2], 1);
        set_bit(&mut rm.free_index[1], 1);
        rm.free_total -= 2;
        rm.note_scheduled_completion(NodeId::new(0), 100_000_000);
        rm.note_scheduled_completion(NodeId::new(1), 20_000_000);
        assert_eq!(rm.consistency_violation(), None);

        // A 30 s attempt fits inside node 0's window (tier 2), extends
        // node 1's (tier 1), and node 2 is empty (tier 0): bin-packing
        // wins, and the longest window is preferred.
        let fit = rm
            .try_place(PlacementRequest {
                now_micros: 0,
                expected_micros: 30_000_000,
            })
            .unwrap();
        assert_eq!(fit.node, NodeId::new(0));
        assert_eq!(fit.score_bucket, 2);
        assert_eq!(fit.free_slots, 1);

        // Node 0 is now full. The same attempt extends node 1's window;
        // extension beats the empty-node tier.
        let extend = rm
            .try_place(PlacementRequest {
                now_micros: 0,
                expected_micros: 30_000_000,
            })
            .unwrap();
        assert_eq!(extend.node, NodeId::new(1));
        assert_eq!(extend.score_bucket, 1);

        // Only the empty node remains.
        let empty = rm
            .try_place(PlacementRequest {
                now_micros: 0,
                expected_micros: 30_000_000,
            })
            .unwrap();
        assert_eq!(empty.node, NodeId::new(2));
        assert_eq!(empty.score_bucket, 0);
    }

    #[test]
    fn deadline_aware_window_shrinks_with_time_and_release() {
        let mut rm = rm_with(2, 2, PlacementPolicy::DeadlineAware);
        let first = rm
            .try_place(PlacementRequest {
                now_micros: 0,
                expected_micros: 50_000_000,
            })
            .unwrap();
        assert_eq!(first.node, NodeId::new(1));
        rm.note_scheduled_completion(first.node, 60_000_000);

        // At t=20s a 30s attempt still fits inside node 1's 40s window.
        let packed = rm
            .try_place(PlacementRequest {
                now_micros: 20_000_000,
                expected_micros: 30_000_000,
            })
            .unwrap();
        assert_eq!(packed.node, NodeId::new(1));
        assert_eq!(packed.score_bucket, 2);
        rm.note_scheduled_completion(packed.node, 55_000_000);

        // Release both attempts: node 1's window is forgotten, so the next
        // placement sees two empty nodes again.
        rm.release_scheduled(NodeId::new(1), 60_000_000).unwrap();
        rm.release_scheduled(NodeId::new(1), 55_000_000).unwrap();
        let fresh = rm
            .try_place(PlacementRequest {
                now_micros: 70_000_000,
                expected_micros: 30_000_000,
            })
            .unwrap();
        assert_eq!(fresh.score_bucket, 0);
        assert_eq!(rm.consistency_violation(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A deterministic splitmix-style op stream: the generated `salt`
        /// compactly encodes an arbitrary assign/release interleaving (the
        /// vendored proptest subset has no collection strategies).
        fn next_op(state: &mut u64) -> u64 {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *state >> 33
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Satellite: after any assign/release sequence, under any
            /// placement policy, the count-bucket index exactly matches a
            /// from-scratch rebuild from the node table.
            #[test]
            fn index_matches_rebuild_after_any_op_sequence(
                placement_index in 0usize..3,
                nodes in 1u32..80,
                slots in 1u32..5,
                salt in 0u64..u64::MAX,
                op_count in 0usize..300,
            ) {
                let placement = PlacementPolicy::ALL[placement_index];
                let mut rm = rm_with(nodes, slots, placement);
                let mut state = salt;
                let mut running: Vec<(NodeId, u64)> = Vec::new();
                for _ in 0..op_count {
                    let roll = next_op(&mut state);
                    if roll % 3 != 0 || running.is_empty() {
                        let request = PlacementRequest {
                            now_micros: roll % 1_000_000,
                            expected_micros: next_op(&mut state) % 100_000_000,
                        };
                        if let Some(choice) = rm.try_place(request) {
                            let completion = request.now_micros + request.expected_micros;
                            rm.note_scheduled_completion(choice.node, completion);
                            running.push((choice.node, completion));
                        }
                    } else {
                        let index = (next_op(&mut state) % running.len() as u64) as usize;
                        let victim = running.swap_remove(index);
                        rm.release_scheduled(victim.0, victim.1).unwrap();
                    }
                    prop_assert_eq!(rm.consistency_violation(), None);
                }
            }

            /// Satellite: `MostFree` placement reproduces the pre-refactor
            /// engine's selection — a linear `max_by_key(free_slots)` scan
            /// over the node table (last max wins) — bit-for-bit under
            /// arbitrary assign/release interleavings.
            #[test]
            fn most_free_matches_pre_refactor_linear_scan(
                nodes in 1u32..80,
                slots in 1u32..5,
                salt in 0u64..u64::MAX,
                op_count in 0usize..300,
            ) {
                let mut rm = rm_with(nodes, slots, PlacementPolicy::MostFree);
                let mut reference: Vec<u32> = vec![slots; nodes as usize];
                let mut running: Vec<u64> = Vec::new();
                let mut state = salt;
                for _ in 0..op_count {
                    if next_op(&mut state) % 3 != 0 || running.is_empty() {
                        let expected = reference
                            .iter()
                            .enumerate()
                            .filter(|(_, free)| **free > 0)
                            .max_by_key(|(_, free)| **free)
                            .map(|(idx, _)| idx as u64);
                        let got = rm
                            .try_place(PlacementRequest::default())
                            .map(|choice| choice.node.raw());
                        prop_assert_eq!(got, expected);
                        if let Some(node) = got {
                            reference[node as usize] -= 1;
                            running.push(node);
                        }
                    } else {
                        let index = (next_op(&mut state) % running.len() as u64) as usize;
                        let node = running.swap_remove(index);
                        rm.release(NodeId::new(node)).unwrap();
                        reference[node as usize] += 1;
                    }
                }
            }
        }
    }
}
