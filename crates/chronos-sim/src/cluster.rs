//! Cluster substrate: nodes, container slots and the ResourceManager.
//!
//! The simulator models the YARN ResourceManager as a pool of map-task
//! containers spread over nodes. Attempts request a container; if none is
//! free they wait in a FIFO queue (the single-queue FIFO scheduler the
//! paper's experiments use). Nodes can carry a slowdown factor so the
//! contention model in `chronos-trace` can make some machines persistently
//! slow — one of the documented causes of stragglers.

use crate::config::ClusterSpec;
use crate::error::SimError;
use crate::ids::{AttemptId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A worker node with a fixed number of container slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Total container slots on the node.
    pub slots: u32,
    /// Slots currently occupied by running attempts.
    pub busy: u32,
    /// Execution slowdown factor (≥ 1) applied to attempts placed here.
    pub slowdown: f64,
}

impl Node {
    /// Free slots on this node.
    #[must_use]
    pub fn free_slots(&self) -> u32 {
        self.slots.saturating_sub(self.busy)
    }
}

/// The ResourceManager: tracks slot occupancy and the queue of attempts
/// waiting for a container.
///
/// Placement must stay O(1): the engine consults the RM once per container
/// request and once per release in the event hot loop. Instead of scanning
/// all nodes for the most-free one, the RM keeps a *count-bucket index* —
/// one bitmap of node indices per possible free-slot count — plus the
/// current maximum count and a running free-slot total. `try_assign` picks
/// the **highest-index** node in the top bucket, which reproduces the
/// previous `max_by_key(free_slots)` scan exactly (`max_by_key` returns the
/// last of equally-maximal elements), so placements — and therefore the
/// straggler patterns on slowed nodes — are bit-identical to the old code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceManager {
    nodes: Vec<Node>,
    pending: VecDeque<AttemptId>,
    total_slots: u64,
    /// Running count of free slots across all nodes.
    free_total: u64,
    /// `free_index[c]` is a bitmap (64 node indices per word) of the nodes
    /// with exactly `c` free slots.
    free_index: Vec<Vec<u64>>,
    /// Highest `c ≥ 1` with a non-empty `free_index[c]`; 0 when the cluster
    /// is full.
    max_free: u32,
}

#[inline]
fn set_bit(words: &mut [u64], idx: usize) {
    words[idx / 64] |= 1 << (idx % 64);
}

#[inline]
fn clear_bit(words: &mut [u64], idx: usize) {
    words[idx / 64] &= !(1 << (idx % 64));
}

impl ResourceManager {
    /// Builds the ResourceManager from a cluster specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the specification is invalid.
    pub fn new(spec: &ClusterSpec) -> Result<Self, SimError> {
        spec.validate()?;
        let nodes: Vec<Node> = (0..spec.nodes)
            .map(|i| Node {
                id: NodeId::new(u64::from(i)),
                slots: spec.slots_per_node,
                busy: 0,
                slowdown: spec.slowdown_of(i),
            })
            .collect();
        let words = nodes.len().div_ceil(64);
        let mut free_index = vec![vec![0u64; words]; spec.slots_per_node as usize + 1];
        for i in 0..nodes.len() {
            set_bit(&mut free_index[spec.slots_per_node as usize], i);
        }
        Ok(ResourceManager {
            nodes,
            pending: VecDeque::new(),
            total_slots: spec.total_slots(),
            free_total: spec.total_slots(),
            free_index,
            max_free: spec.slots_per_node,
        })
    }

    /// Total number of container slots in the cluster.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Number of currently free container slots.
    #[must_use]
    pub fn free_slots(&self) -> u64 {
        self.free_total
    }

    /// Number of attempts waiting for a container.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The node table (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The slowdown factor of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node id.
    pub fn slowdown_of(&self, node: NodeId) -> Result<f64, SimError> {
        self.nodes
            .get(node.raw() as usize)
            .map(|n| n.slowdown)
            .ok_or_else(|| SimError::unknown(format!("{node}")))
    }

    /// Tries to grab a free slot, preferring the node with the most free
    /// capacity (a simple load-balancing placement). Returns the chosen node
    /// or `None` when the cluster is full.
    ///
    /// Among equally-free nodes the highest node index wins — the same
    /// choice the former linear `max_by_key` scan made (see the struct
    /// docs), now found in O(1) through the count-bucket index.
    pub fn try_assign(&mut self) -> Option<NodeId> {
        if self.free_total == 0 {
            return None;
        }
        let count = self.max_free as usize;
        debug_assert!(count > 0, "free_total > 0 implies a non-empty top bucket");
        let (word, bits) = self.free_index[count]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, bits)| **bits != 0)
            .expect("max_free bucket is non-empty");
        let best = word * 64 + (63 - bits.leading_zeros() as usize);
        clear_bit(&mut self.free_index[count], best);
        set_bit(&mut self.free_index[count - 1], best);
        self.nodes[best].busy += 1;
        self.free_total -= 1;
        while self.max_free > 0
            && self.free_index[self.max_free as usize]
                .iter()
                .all(|bits| *bits == 0)
        {
            self.max_free -= 1;
        }
        Some(self.nodes[best].id)
    }

    /// Releases a slot on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node, or
    /// [`SimError::InvalidAction`] if the node has no busy slot to release
    /// (which would indicate an engine accounting bug).
    pub fn release(&mut self, node: NodeId) -> Result<(), SimError> {
        let idx = node.raw() as usize;
        let entry = self
            .nodes
            .get_mut(idx)
            .ok_or_else(|| SimError::unknown(format!("{node}")))?;
        if entry.busy == 0 {
            return Err(SimError::invalid_action(format!(
                "released a slot on {node} which had no busy slots"
            )));
        }
        entry.busy -= 1;
        let now_free = entry.free_slots() as usize;
        clear_bit(&mut self.free_index[now_free - 1], idx);
        set_bit(&mut self.free_index[now_free], idx);
        self.free_total += 1;
        self.max_free = self.max_free.max(now_free as u32);
        Ok(())
    }

    /// Adds an attempt to the back of the container wait queue.
    pub fn enqueue_pending(&mut self, attempt: AttemptId) {
        self.pending.push_back(attempt);
    }

    /// Pops the next waiting attempt, if any.
    pub fn dequeue_pending(&mut self) -> Option<AttemptId> {
        self.pending.pop_front()
    }

    /// Removes a specific attempt from the wait queue (used when a queued
    /// attempt is killed before it ever starts). Returns whether it was
    /// present.
    pub fn remove_pending(&mut self, attempt: AttemptId) -> bool {
        if let Some(pos) = self.pending.iter().position(|a| *a == attempt) {
            self.pending.remove(pos);
            true
        } else {
            false
        }
    }

    /// True when at least one attempt is waiting for a container — the
    /// condition Mantri checks before it keeps spawning extra attempts.
    #[must_use]
    pub fn has_waiting_work(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(nodes: u32, slots: u32) -> ResourceManager {
        ResourceManager::new(&ClusterSpec::homogeneous(nodes, slots)).unwrap()
    }

    #[test]
    fn construction_matches_spec() {
        let rm = rm(4, 2);
        assert_eq!(rm.total_slots(), 8);
        assert_eq!(rm.free_slots(), 8);
        assert_eq!(rm.nodes().len(), 4);
        assert!(!rm.has_waiting_work());
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(ResourceManager::new(&ClusterSpec::homogeneous(0, 2)).is_err());
    }

    #[test]
    fn assign_until_full_then_none() {
        let mut rm = rm(2, 2);
        let mut assigned = Vec::new();
        for _ in 0..4 {
            assigned.push(rm.try_assign().expect("slot available"));
        }
        assert_eq!(rm.free_slots(), 0);
        assert!(rm.try_assign().is_none());
        // Load balancing: both nodes should have received two attempts.
        let on_node0 = assigned.iter().filter(|n| n.raw() == 0).count();
        assert_eq!(on_node0, 2);
    }

    #[test]
    fn release_frees_capacity() {
        let mut rm = rm(1, 1);
        let node = rm.try_assign().unwrap();
        assert!(rm.try_assign().is_none());
        rm.release(node).unwrap();
        assert!(rm.try_assign().is_some());
    }

    #[test]
    fn release_errors() {
        let mut rm = rm(1, 1);
        assert!(rm.release(NodeId::new(9)).is_err());
        assert!(rm.release(NodeId::new(0)).is_err());
    }

    #[test]
    fn pending_queue_fifo_and_removal() {
        let mut rm = rm(1, 1);
        rm.enqueue_pending(AttemptId::new(1));
        rm.enqueue_pending(AttemptId::new(2));
        rm.enqueue_pending(AttemptId::new(3));
        assert_eq!(rm.pending_len(), 3);
        assert!(rm.has_waiting_work());
        assert!(rm.remove_pending(AttemptId::new(2)));
        assert!(!rm.remove_pending(AttemptId::new(2)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(1)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(3)));
        assert_eq!(rm.dequeue_pending(), None);
    }

    #[test]
    fn indexed_assignment_matches_linear_scan_reference() {
        // The count-bucket index must reproduce the old
        // `max_by_key(free_slots)` scan (last max wins) placement-for-
        // placement under arbitrary assign/release interleavings.
        let mut rm = rm(7, 3);
        let mut reference: Vec<u32> = vec![3; 7]; // free slots per node
        let mut running: Vec<u64> = Vec::new();
        // A fixed pseudo-random interleaving (splitmix-style) of assigns
        // and releases.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..2_000 {
            if next() % 3 != 0 || running.is_empty() {
                let expected = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| **f > 0)
                    .max_by_key(|(_, f)| **f)
                    .map(|(i, _)| i as u64);
                let got = rm.try_assign().map(|n| n.raw());
                assert_eq!(got, expected);
                if let Some(node) = got {
                    reference[node as usize] -= 1;
                    running.push(node);
                }
            } else {
                let node = running.swap_remove((next() % running.len() as u64) as usize);
                rm.release(NodeId::new(node)).unwrap();
                reference[node as usize] += 1;
            }
            assert_eq!(rm.free_slots(), u64::from(reference.iter().sum::<u32>()));
        }
    }

    #[test]
    fn slowdowns_surface_through_rm() {
        let mut spec = ClusterSpec::homogeneous(2, 1);
        spec.slowdowns = vec![1.0, 4.0];
        let rm = ResourceManager::new(&spec).unwrap();
        assert_eq!(rm.slowdown_of(NodeId::new(1)).unwrap(), 4.0);
        assert!(rm.slowdown_of(NodeId::new(5)).is_err());
    }
}
