//! Cluster substrate: nodes, container slots and the ResourceManager.
//!
//! The simulator models the YARN ResourceManager as a pool of map-task
//! containers spread over nodes. Attempts request a container; if none is
//! free they wait in a FIFO queue (the single-queue FIFO scheduler the
//! paper's experiments use). Nodes can carry a slowdown factor so the
//! contention model in `chronos-trace` can make some machines persistently
//! slow — one of the documented causes of stragglers.

use crate::config::ClusterSpec;
use crate::error::SimError;
use crate::ids::{AttemptId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A worker node with a fixed number of container slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Total container slots on the node.
    pub slots: u32,
    /// Slots currently occupied by running attempts.
    pub busy: u32,
    /// Execution slowdown factor (≥ 1) applied to attempts placed here.
    pub slowdown: f64,
}

impl Node {
    /// Free slots on this node.
    #[must_use]
    pub fn free_slots(&self) -> u32 {
        self.slots.saturating_sub(self.busy)
    }
}

/// The ResourceManager: tracks slot occupancy and the queue of attempts
/// waiting for a container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceManager {
    nodes: Vec<Node>,
    pending: VecDeque<AttemptId>,
    total_slots: u64,
}

impl ResourceManager {
    /// Builds the ResourceManager from a cluster specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the specification is invalid.
    pub fn new(spec: &ClusterSpec) -> Result<Self, SimError> {
        spec.validate()?;
        let nodes = (0..spec.nodes)
            .map(|i| Node {
                id: NodeId::new(u64::from(i)),
                slots: spec.slots_per_node,
                busy: 0,
                slowdown: spec.slowdown_of(i),
            })
            .collect();
        Ok(ResourceManager {
            nodes,
            pending: VecDeque::new(),
            total_slots: spec.total_slots(),
        })
    }

    /// Total number of container slots in the cluster.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Number of currently free container slots.
    #[must_use]
    pub fn free_slots(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.free_slots())).sum()
    }

    /// Number of attempts waiting for a container.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The node table (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The slowdown factor of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node id.
    pub fn slowdown_of(&self, node: NodeId) -> Result<f64, SimError> {
        self.nodes
            .get(node.raw() as usize)
            .map(|n| n.slowdown)
            .ok_or_else(|| SimError::unknown(format!("{node}")))
    }

    /// Tries to grab a free slot, preferring the node with the most free
    /// capacity (a simple load-balancing placement). Returns the chosen node
    /// or `None` when the cluster is full.
    pub fn try_assign(&mut self) -> Option<NodeId> {
        let best = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.free_slots() > 0)
            .max_by_key(|(_, n)| n.free_slots())
            .map(|(i, _)| i)?;
        self.nodes[best].busy += 1;
        Some(self.nodes[best].id)
    }

    /// Releases a slot on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownEntity`] for an unknown node, or
    /// [`SimError::InvalidAction`] if the node has no busy slot to release
    /// (which would indicate an engine accounting bug).
    pub fn release(&mut self, node: NodeId) -> Result<(), SimError> {
        let entry = self
            .nodes
            .get_mut(node.raw() as usize)
            .ok_or_else(|| SimError::unknown(format!("{node}")))?;
        if entry.busy == 0 {
            return Err(SimError::invalid_action(format!(
                "released a slot on {node} which had no busy slots"
            )));
        }
        entry.busy -= 1;
        Ok(())
    }

    /// Adds an attempt to the back of the container wait queue.
    pub fn enqueue_pending(&mut self, attempt: AttemptId) {
        self.pending.push_back(attempt);
    }

    /// Pops the next waiting attempt, if any.
    pub fn dequeue_pending(&mut self) -> Option<AttemptId> {
        self.pending.pop_front()
    }

    /// Removes a specific attempt from the wait queue (used when a queued
    /// attempt is killed before it ever starts). Returns whether it was
    /// present.
    pub fn remove_pending(&mut self, attempt: AttemptId) -> bool {
        if let Some(pos) = self.pending.iter().position(|a| *a == attempt) {
            self.pending.remove(pos);
            true
        } else {
            false
        }
    }

    /// True when at least one attempt is waiting for a container — the
    /// condition Mantri checks before it keeps spawning extra attempts.
    #[must_use]
    pub fn has_waiting_work(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(nodes: u32, slots: u32) -> ResourceManager {
        ResourceManager::new(&ClusterSpec::homogeneous(nodes, slots)).unwrap()
    }

    #[test]
    fn construction_matches_spec() {
        let rm = rm(4, 2);
        assert_eq!(rm.total_slots(), 8);
        assert_eq!(rm.free_slots(), 8);
        assert_eq!(rm.nodes().len(), 4);
        assert!(!rm.has_waiting_work());
    }

    #[test]
    fn invalid_spec_rejected() {
        assert!(ResourceManager::new(&ClusterSpec::homogeneous(0, 2)).is_err());
    }

    #[test]
    fn assign_until_full_then_none() {
        let mut rm = rm(2, 2);
        let mut assigned = Vec::new();
        for _ in 0..4 {
            assigned.push(rm.try_assign().expect("slot available"));
        }
        assert_eq!(rm.free_slots(), 0);
        assert!(rm.try_assign().is_none());
        // Load balancing: both nodes should have received two attempts.
        let on_node0 = assigned.iter().filter(|n| n.raw() == 0).count();
        assert_eq!(on_node0, 2);
    }

    #[test]
    fn release_frees_capacity() {
        let mut rm = rm(1, 1);
        let node = rm.try_assign().unwrap();
        assert!(rm.try_assign().is_none());
        rm.release(node).unwrap();
        assert!(rm.try_assign().is_some());
    }

    #[test]
    fn release_errors() {
        let mut rm = rm(1, 1);
        assert!(rm.release(NodeId::new(9)).is_err());
        assert!(rm.release(NodeId::new(0)).is_err());
    }

    #[test]
    fn pending_queue_fifo_and_removal() {
        let mut rm = rm(1, 1);
        rm.enqueue_pending(AttemptId::new(1));
        rm.enqueue_pending(AttemptId::new(2));
        rm.enqueue_pending(AttemptId::new(3));
        assert_eq!(rm.pending_len(), 3);
        assert!(rm.has_waiting_work());
        assert!(rm.remove_pending(AttemptId::new(2)));
        assert!(!rm.remove_pending(AttemptId::new(2)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(1)));
        assert_eq!(rm.dequeue_pending(), Some(AttemptId::new(3)));
        assert_eq!(rm.dequeue_pending(), None);
    }

    #[test]
    fn slowdowns_surface_through_rm() {
        let mut spec = ClusterSpec::homogeneous(2, 1);
        spec.slowdowns = vec![1.0, 4.0];
        let rm = ResourceManager::new(&spec).unwrap();
        assert_eq!(rm.slowdown_of(NodeId::new(1)).unwrap(), 4.0);
        assert!(rm.slowdown_of(NodeId::new(5)).is_err());
    }
}
