//! Strongly-typed identifiers for jobs, tasks, attempts and nodes.
//!
//! Newtypes keep the engine's bookkeeping honest: a `TaskId` can never be
//! passed where an `AttemptId` is expected, which matters in a simulator
//! whose bugs would silently skew the reproduced results.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[must_use]
            pub const fn raw(&self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a submitted job.
    JobId,
    "job-"
);
id_type!(
    /// Identifier of a task within the whole simulation (not per-job).
    TaskId,
    "task-"
);
id_type!(
    /// Identifier of a single task attempt.
    AttemptId,
    "attempt-"
);
id_type!(
    /// Identifier of a cluster node.
    NodeId,
    "node-"
);

/// A fast, non-cryptographic hasher for engine-internal maps keyed by ids
/// or bit-packed profile keys.
///
/// The engine's hot loop performs one map lookup per dispatched event; the
/// std `SipHash` default costs more than the rest of the dispatch combined.
/// A single multiply-xor round (the `splitmix64` finalizer core) is ample
/// for trusted, engine-generated keys. Not DoS-resistant — never use it for
/// maps keyed by external input.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastIdHasher {
    state: u64,
}

impl std::hash::Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for composite keys: fold 8-byte chunks through
        // the same mixer as `write_u64`.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        let mut x = (self.state ^ value).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = x ^ (x >> 31);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }
}

/// `BuildHasher` for [`FastIdHasher`]; use as the `S` parameter of
/// engine-internal `HashMap`s.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastIdHash;

impl std::hash::BuildHasher for FastIdHash {
    type Hasher = FastIdHasher;

    #[inline]
    fn build_hasher(&self) -> FastIdHasher {
        FastIdHasher::default()
    }
}

/// Monotonic id allocator used by the engine.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Returns the next raw id, advancing the counter.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(JobId::new(3).to_string(), "job-3");
        assert_eq!(TaskId::new(4).to_string(), "task-4");
        assert_eq!(AttemptId::new(5).to_string(), "attempt-5");
        assert_eq!(NodeId::new(6).to_string(), "node-6");
    }

    #[test]
    fn ids_round_trip_raw() {
        let id = AttemptId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(AttemptId::new(42), id);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn fast_hasher_separates_sequential_ids() {
        use std::hash::BuildHasher;
        // Engine ids are small and sequential — the worst case for a weak
        // mixer. All 10_000 must land on distinct 64-bit hashes.
        let mut seen = std::collections::HashSet::new();
        for raw in 0..10_000u64 {
            let hash = FastIdHash.hash_one(JobId::new(raw));
            assert!(seen.insert(hash), "collision at id {raw}");
        }
    }

    #[test]
    fn fast_hasher_mixes_multi_word_keys() {
        use std::hash::{BuildHasher, Hasher};
        // Composite keys (e.g. bit-packed profile keys) feed several words;
        // swapping two words must change the hash.
        let hash_of = |words: &[u64]| {
            let mut hasher = FastIdHash.build_hasher();
            for w in words {
                hasher.write_u64(*w);
            }
            hasher.finish()
        };
        assert_ne!(hash_of(&[1, 2, 3]), hash_of(&[2, 1, 3]));
        assert_ne!(hash_of(&[0, 0]), hash_of(&[0]));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next_raw(), 0);
        assert_eq!(alloc.next_raw(), 1);
        assert_eq!(alloc.next_raw(), 2);
    }
}
