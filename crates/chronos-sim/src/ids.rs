//! Strongly-typed identifiers for jobs, tasks, attempts and nodes.
//!
//! Newtypes keep the engine's bookkeeping honest: a `TaskId` can never be
//! passed where an `AttemptId` is expected, which matters in a simulator
//! whose bugs would silently skew the reproduced results.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[must_use]
            pub const fn raw(&self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a submitted job.
    JobId,
    "job-"
);
id_type!(
    /// Identifier of a task within the whole simulation (not per-job).
    TaskId,
    "task-"
);
id_type!(
    /// Identifier of a single task attempt.
    AttemptId,
    "attempt-"
);
id_type!(
    /// Identifier of a cluster node.
    NodeId,
    "node-"
);

/// Monotonic id allocator used by the engine.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Returns the next raw id, advancing the counter.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(JobId::new(3).to_string(), "job-3");
        assert_eq!(TaskId::new(4).to_string(), "task-4");
        assert_eq!(AttemptId::new(5).to_string(), "attempt-5");
        assert_eq!(NodeId::new(6).to_string(), "node-6");
    }

    #[test]
    fn ids_round_trip_raw() {
        let id = AttemptId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(AttemptId::new(42), id);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next_raw(), 0);
        assert_eq!(alloc.next_raw(), 1);
        assert_eq!(alloc.next_raw(), 2);
    }
}
