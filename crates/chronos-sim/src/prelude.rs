//! Convenience re-exports for simulator users and policy implementors.

pub use crate::attempt::{Attempt, AttemptState};
pub use crate::cluster::{
    Node, ParsePlacementError, PlacementChoice, PlacementPolicy, PlacementRequest, ResourceManager,
};
pub use crate::config::{ClusterSpec, EstimatorKind, JvmModel, ShardSpec, SimConfig};
pub use crate::engine::Simulation;
pub use crate::error::SimError;
pub use crate::event::{Event, EventQueue};
pub use crate::ids::{AttemptId, JobId, NodeId, TaskId};
pub use crate::job::{JobRuntime, JobSpec, TaskRuntime, TaskSpec};
pub use crate::metrics::{JobMetrics, LatencyHistogram, SimulationReport};
pub use crate::policy::{
    AttemptView, BatchDiagnostics, BatchPlan, CheckSchedule, JobSubmitView, JobView, NoSpeculation,
    PolicyAction, SpeculationPolicy, SubmitDecision, TaskView,
};
pub use crate::progress::{
    estimate_completion, estimate_completion_chronos, estimate_completion_hadoop,
    estimate_resume_offset, estimation_error_secs, first_progress_report, ProgressReport,
};
pub use crate::shard::{shard_seed, splitmix64, PolicyFactory, ReplayError, ShardedRunner};
pub use crate::time::{SimDuration, SimTime};
// The planner types the sharded runner's planner-backed path exchanges with
// policies; re-exported so policy implementors need no direct
// `chronos-plan` dependency.
pub use chronos_plan::{CacheStats, PlanCache, PlanRequest, Planner, SpeculationBudget};
// The observability types the engine's decision tracing and the report's
// metrics export exchange with callers; re-exported so trace consumers
// need no direct `chronos-obs` dependency.
pub use chronos_obs::{DecisionTrace, MetricsRegistry, TraceEvent, TraceRecord};
