//! The discrete-event simulation engine: the YARN ResourceManager /
//! ApplicationMaster / NodeManager loop distilled to the decision points the
//! Chronos strategies and baselines need.
//!
//! The engine owns jobs, tasks, attempts, containers and the event queue;
//! the plugged-in [`SpeculationPolicy`] only ever sees immutable snapshots
//! and replies with actions. A fixed RNG seed makes every run reproducible.

use crate::attempt::{Attempt, AttemptState};
use crate::cluster::ResourceManager;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::ids::{AttemptId, IdAllocator, JobId, NodeId, TaskId};
use crate::job::{JobRuntime, JobSpec, TaskRuntime};
use crate::metrics::{JobMetrics, LatencyHistogram, SimulationReport};
use crate::policy::{
    AttemptView, CheckSchedule, JobSubmitView, JobView, PolicyAction, SpeculationPolicy, TaskView,
};
use crate::progress::{estimate_completion, estimate_resume_offset};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A complete simulation: configuration, cluster state, workload and policy.
///
/// # Examples
///
/// ```
/// use chronos_sim::prelude::*;
///
/// # fn main() -> Result<(), SimError> {
/// let config = SimConfig::default();
/// let mut sim = Simulation::new(config, Box::new(NoSpeculation))?;
/// sim.submit(JobSpec::new(JobId::new(0), SimTime::ZERO, 200.0, 8))?;
/// let report = sim.run()?;
/// assert_eq!(report.job_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    policy: Box<dyn SpeculationPolicy>,
    rng: StdRng,
    events: EventQueue,
    jobs: BTreeMap<JobId, JobRuntime>,
    tasks: BTreeMap<TaskId, TaskRuntime>,
    attempts: BTreeMap<AttemptId, Attempt>,
    schedules: BTreeMap<JobId, CheckSchedule>,
    chosen_r: BTreeMap<JobId, u32>,
    rm: ResourceManager,
    task_ids: IdAllocator,
    attempt_ids: IdAllocator,
    now: SimTime,
    events_processed: u64,
}

impl Simulation {
    /// Creates a simulation with the given configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: SimConfig, policy: Box<dyn SpeculationPolicy>) -> Result<Self, SimError> {
        config.validate()?;
        let rm = ResourceManager::new(&config.cluster)?;
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(Simulation {
            config,
            policy,
            rng,
            events: EventQueue::new(),
            jobs: BTreeMap::new(),
            tasks: BTreeMap::new(),
            attempts: BTreeMap::new(),
            schedules: BTreeMap::new(),
            chosen_r: BTreeMap::new(),
            rm,
            task_ids: IdAllocator::new(),
            attempt_ids: IdAllocator::new(),
            now: SimTime::ZERO,
            events_processed: 0,
        })
    }

    /// The policy driving this simulation.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues a job for submission at its `submit_time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid specs or duplicate
    /// job ids.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), SimError> {
        spec.validate()?;
        if self.jobs.contains_key(&spec.id) {
            return Err(SimError::invalid_config(format!(
                "duplicate job id {}",
                spec.id
            )));
        }
        let id = spec.id;
        let submit_time = spec.submit_time;
        self.jobs.insert(id, JobRuntime::new(spec));
        self.events.schedule(submit_time, Event::JobArrival(id));
        Ok(())
    }

    /// Queues a batch of jobs, then hands the whole batch to the policy's
    /// [`SpeculationPolicy::on_job_batch`] hook so optimizing policies can
    /// plan it in one deduplicated pass (see the hook's docs) before any
    /// arrival event fires.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid or duplicate spec, identifying the
    /// offending spec by its position in the batch and its job id; earlier
    /// jobs in the batch remain queued. Policy batch-planning failures are
    /// propagated with batch context added (the policy names the offending
    /// job id itself, per the hook's contract).
    pub fn submit_all<I>(&mut self, specs: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = JobSpec>,
    {
        let mut views = Vec::new();
        for (index, spec) in specs.into_iter().enumerate() {
            let id = spec.id;
            let view = Self::submit_view_of(&spec);
            self.submit(spec)
                .map_err(|err| err.with_context(format_args!("batch spec #{index} ({id})")))?;
            views.push(view);
        }
        self.policy
            .on_job_batch(&views)
            .map_err(|err| err.with_context(format_args!("planning a {}-job batch", views.len())))
    }

    /// The submit-time snapshot of a spec, as the policy sees it both in
    /// [`SpeculationPolicy::on_job_batch`] and at the arrival event.
    fn submit_view_of(spec: &JobSpec) -> JobSubmitView {
        JobSubmitView {
            job: spec.id,
            task_count: spec.task_count() as u32,
            deadline_secs: spec.deadline_secs,
            price: spec.price,
            profile: spec.profile,
        }
    }

    /// Runs the simulation to completion and returns the aggregated report.
    ///
    /// # Errors
    ///
    /// * [`SimError::EventBudgetExhausted`] when `max_events` is hit.
    /// * [`SimError::InvalidAction`] / [`SimError::UnknownEntity`] when the
    ///   policy produces actions referencing foreign or unknown entities.
    pub fn run(&mut self) -> Result<SimulationReport, SimError> {
        while let Some((time, event)) = self.events.pop() {
            debug_assert!(time >= self.now, "event time went backwards");
            self.now = time;
            self.events_processed += 1;
            if self.config.max_events > 0 && self.events_processed > self.config.max_events {
                return Err(SimError::EventBudgetExhausted {
                    limit: self.config.max_events,
                });
            }
            match event {
                Event::JobArrival(job) => self.handle_job_arrival(job)?,
                Event::AttemptCompletion(attempt) => self.handle_attempt_completion(attempt)?,
                Event::PolicyCheck { job, index } => self.handle_policy_check(job, index)?,
            }
        }
        Ok(self.build_report())
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_job_arrival(&mut self, job_id: JobId) -> Result<(), SimError> {
        let (submit_view, task_specs, submit_time) = {
            let job = self
                .jobs
                .get(&job_id)
                .ok_or_else(|| SimError::unknown(format!("{job_id}")))?;
            (
                Self::submit_view_of(&job.spec),
                job.spec.tasks.clone(),
                job.spec.submit_time,
            )
        };

        let decision = self.policy.on_job_submit(&submit_view);
        if let Some(r) = decision.reported_r {
            self.chosen_r.insert(job_id, r);
        }

        let schedule = self.policy.check_schedule(&submit_view);
        match &schedule {
            CheckSchedule::Never => {}
            CheckSchedule::AtOffsets(offsets) => {
                for (index, offset) in offsets.iter().enumerate() {
                    self.events.schedule(
                        submit_time + SimDuration::from_secs(*offset),
                        Event::PolicyCheck {
                            job: job_id,
                            index: index as u32,
                        },
                    );
                }
            }
            CheckSchedule::Periodic { first, .. } => {
                self.events.schedule(
                    submit_time + SimDuration::from_secs(*first),
                    Event::PolicyCheck {
                        job: job_id,
                        index: 0,
                    },
                );
            }
        }
        self.schedules.insert(job_id, schedule);

        // Create tasks and their initial attempts (1 original + clones).
        for (index, spec) in task_specs.iter().enumerate() {
            let task_id = TaskId::new(self.task_ids.next_raw());
            let task = TaskRuntime::new(task_id, job_id, index, spec);
            self.tasks.insert(task_id, task);
            self.jobs
                .get_mut(&job_id)
                .expect("job exists")
                .task_ids
                .push(task_id);
            for _ in 0..=decision.extra_clones_per_task {
                self.create_attempt(task_id, 0.0)?;
            }
        }
        self.dispatch_pending();
        Ok(())
    }

    fn handle_attempt_completion(&mut self, attempt_id: AttemptId) -> Result<(), SimError> {
        let (task_id, node) = {
            let Some(attempt) = self.attempts.get_mut(&attempt_id) else {
                return Ok(());
            };
            if attempt.state != AttemptState::Running {
                // Stale event: the attempt was killed in the meantime.
                return Ok(());
            }
            attempt.state = AttemptState::Finished;
            attempt.ended_at = Some(self.now);
            (attempt.task, attempt.node)
        };
        if let Some(node) = node {
            self.rm.release(node)?;
        }

        let newly_completed = {
            let task = self
                .tasks
                .get_mut(&task_id)
                .ok_or_else(|| SimError::unknown(format!("{task_id}")))?;
            if task.completed_at.is_none() {
                task.completed_at = Some(self.now);
                true
            } else {
                false
            }
        };

        if newly_completed {
            // The AM kills the remaining attempts of a committed task.
            let siblings: Vec<AttemptId> = self
                .tasks
                .get(&task_id)
                .map(|t| t.attempts.clone())
                .unwrap_or_default();
            for sibling in siblings {
                if sibling != attempt_id {
                    self.kill_attempt(sibling)?;
                }
            }
            let job_id = self.tasks[&task_id].job;
            if let Some(job) = self.jobs.get_mut(&job_id) {
                job.record_task_completion(self.now);
            }
        }
        self.dispatch_pending();
        Ok(())
    }

    fn handle_policy_check(&mut self, job_id: JobId, index: u32) -> Result<(), SimError> {
        let completed = self
            .jobs
            .get(&job_id)
            .map(JobRuntime::is_completed)
            .unwrap_or(true);
        if !completed {
            let view = self.build_job_view(job_id, index)?;
            let actions = self.policy.on_check(&view);
            for action in actions {
                self.apply_action(job_id, action)?;
            }
            self.dispatch_pending();
        }

        // Periodic schedules re-arm while the job is incomplete.
        if let Some(CheckSchedule::Periodic { period, .. }) = self.schedules.get(&job_id) {
            let period = *period;
            let still_running = self
                .jobs
                .get(&job_id)
                .map(|j| !j.is_completed())
                .unwrap_or(false);
            if still_running {
                self.events.schedule(
                    self.now + SimDuration::from_secs(period),
                    Event::PolicyCheck {
                        job: job_id,
                        index: index + 1,
                    },
                );
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Policy action application
    // ------------------------------------------------------------------

    fn apply_action(&mut self, job_id: JobId, action: PolicyAction) -> Result<(), SimError> {
        match action {
            PolicyAction::LaunchExtra {
                task,
                count,
                start_fraction,
            } => {
                let owner = self
                    .tasks
                    .get(&task)
                    .ok_or_else(|| SimError::unknown(format!("{task}")))?;
                if owner.job != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to launch attempts for {task} owned by {}",
                        owner.job
                    )));
                }
                if owner.is_completed() {
                    // Benign: the task finished between snapshot and action.
                    return Ok(());
                }
                for _ in 0..count {
                    self.create_attempt(task, start_fraction)?;
                }
                Ok(())
            }
            PolicyAction::Kill { attempt } => {
                let owner = self
                    .attempts
                    .get(&attempt)
                    .ok_or_else(|| SimError::unknown(format!("{attempt}")))?
                    .job;
                if owner != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to kill {attempt} owned by {owner}"
                    )));
                }
                self.kill_attempt(attempt)
            }
            PolicyAction::KillAllExcept { task, keep } => {
                let owner = self
                    .tasks
                    .get(&task)
                    .ok_or_else(|| SimError::unknown(format!("{task}")))?;
                if owner.job != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to prune {task} owned by {}",
                        owner.job
                    )));
                }
                let attempts = owner.attempts.clone();
                for attempt in attempts {
                    if attempt != keep {
                        self.kill_attempt(attempt)?;
                    }
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Attempt lifecycle
    // ------------------------------------------------------------------

    fn create_attempt(
        &mut self,
        task_id: TaskId,
        start_fraction: f64,
    ) -> Result<AttemptId, SimError> {
        let job_id = self
            .tasks
            .get(&task_id)
            .ok_or_else(|| SimError::unknown(format!("{task_id}")))?
            .job;
        let attempt_id = AttemptId::new(self.attempt_ids.next_raw());
        let attempt = Attempt::pending(attempt_id, task_id, job_id, self.now, start_fraction);
        self.attempts.insert(attempt_id, attempt);
        self.tasks
            .get_mut(&task_id)
            .expect("task exists")
            .attempts
            .push(attempt_id);
        self.rm.enqueue_pending(attempt_id);
        Ok(attempt_id)
    }

    /// Starts as many pending attempts as there are free containers.
    fn dispatch_pending(&mut self) {
        loop {
            if self.rm.free_slots() == 0 {
                return;
            }
            let Some(attempt_id) = self.rm.dequeue_pending() else {
                return;
            };
            let still_pending = self
                .attempts
                .get(&attempt_id)
                .map(|a| a.state == AttemptState::Pending)
                .unwrap_or(false);
            if !still_pending {
                continue;
            }
            let Some(node) = self.rm.try_assign() else {
                // No slot after all; put it back at the front-equivalent
                // position by re-enqueueing and bail out.
                self.rm.enqueue_pending(attempt_id);
                return;
            };
            self.start_attempt(attempt_id, node);
        }
    }

    fn start_attempt(&mut self, attempt_id: AttemptId, node: NodeId) {
        let jvm = if self.config.jvm.max_secs > self.config.jvm.min_secs {
            self.rng
                .gen_range(self.config.jvm.min_secs..=self.config.jvm.max_secs)
        } else {
            self.config.jvm.min_secs
        };
        let slowdown = self.rm.slowdown_of(node).unwrap_or(1.0);
        let (profile, size_factor) = {
            let attempt = &self.attempts[&attempt_id];
            let task = &self.tasks[&attempt.task];
            let job = &self.jobs[&attempt.job];
            (job.spec.profile, task.size_factor)
        };
        let work = profile.sample(&mut self.rng) * size_factor * slowdown;
        let attempt = self.attempts.get_mut(&attempt_id).expect("attempt exists");
        attempt.start(node, self.now, jvm, work);
        let completion = attempt
            .completion_time()
            .expect("started attempts have a completion time");
        self.events
            .schedule(completion, Event::AttemptCompletion(attempt_id));
    }

    fn kill_attempt(&mut self, attempt_id: AttemptId) -> Result<(), SimError> {
        let (state, node) = {
            let Some(attempt) = self.attempts.get(&attempt_id) else {
                return Err(SimError::unknown(format!("{attempt_id}")));
            };
            (attempt.state, attempt.node)
        };
        match state {
            AttemptState::Finished | AttemptState::Killed => Ok(()),
            AttemptState::Pending => {
                self.rm.remove_pending(attempt_id);
                let attempt = self.attempts.get_mut(&attempt_id).expect("attempt exists");
                attempt.state = AttemptState::Killed;
                attempt.ended_at = Some(self.now);
                Ok(())
            }
            AttemptState::Running => {
                let attempt = self.attempts.get_mut(&attempt_id).expect("attempt exists");
                attempt.state = AttemptState::Killed;
                attempt.ended_at = Some(self.now);
                if let Some(node) = node {
                    self.rm.release(node)?;
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Views and reporting
    // ------------------------------------------------------------------

    fn build_job_view(&self, job_id: JobId, check_index: u32) -> Result<JobView, SimError> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or_else(|| SimError::unknown(format!("{job_id}")))?;
        let mut tasks = Vec::with_capacity(job.task_ids.len());
        let mut completed_tasks = 0usize;
        let mut completed_durations = Vec::new();
        for task_id in &job.task_ids {
            let task = &self.tasks[task_id];
            if let Some(done) = task.completed_at {
                completed_tasks += 1;
                completed_durations.push((done.saturating_since(job.spec.submit_time)).as_secs());
            }
            let attempts = task
                .attempts
                .iter()
                .map(|attempt_id| {
                    let attempt = &self.attempts[attempt_id];
                    AttemptView {
                        attempt: *attempt_id,
                        active: attempt.is_active(),
                        running: attempt.is_running(),
                        launched_at: attempt.launched_at,
                        progress: attempt.progress_at(self.now),
                        estimated_completion: estimate_completion(
                            self.config.estimator,
                            attempt,
                            self.now,
                            self.config.progress_report_interval_secs,
                        ),
                        start_fraction: attempt.start_fraction,
                        resume_offset_hint: estimate_resume_offset(
                            attempt,
                            self.now,
                            self.config.progress_report_interval_secs,
                        ),
                    }
                })
                .collect();
            tasks.push(TaskView {
                task: *task_id,
                completed: task.is_completed(),
                attempts,
            });
        }
        let mean_completed_task_duration = if completed_durations.is_empty() {
            None
        } else {
            Some(completed_durations.iter().sum::<f64>() / completed_durations.len() as f64)
        };
        Ok(JobView {
            job: job_id,
            submitted_at: job.spec.submit_time,
            deadline_secs: job.spec.deadline_secs,
            now: self.now,
            check_index,
            tasks,
            completed_tasks,
            mean_completed_task_duration,
            free_slots: self.rm.free_slots(),
            cluster_has_waiting_work: self.rm.has_waiting_work(),
        })
    }

    fn build_report(&self) -> SimulationReport {
        let mut jobs = BTreeMap::new();
        let mut latency = LatencyHistogram::new();
        for (job_id, job) in &self.jobs {
            let mut machine_time = 0.0;
            let mut launched = 0u32;
            let mut killed = 0u32;
            for task_id in &job.task_ids {
                for attempt_id in &self.tasks[task_id].attempts {
                    let attempt = &self.attempts[attempt_id];
                    machine_time += attempt.machine_time_until(self.now);
                    if attempt.launched_at.is_some() {
                        launched += 1;
                    }
                    if attempt.state == AttemptState::Killed {
                        killed += 1;
                    }
                }
            }
            let met_deadline = job.met_deadline().unwrap_or(false);
            let entry = JobMetrics {
                job: *job_id,
                submitted_at: job.spec.submit_time,
                deadline_secs: job.spec.deadline_secs,
                completed_at: job.completed_at,
                met_deadline,
                machine_time_secs: machine_time,
                cost: machine_time * job.spec.price,
                attempts_launched: launched,
                attempts_killed: killed,
                chosen_r: self.chosen_r.get(job_id).copied(),
            };
            match entry.completion_secs() {
                Some(secs) => latency.record_secs(secs),
                None => latency.record_unfinished(),
            }
            jobs.insert(*job_id, entry);
        }
        SimulationReport {
            policy: self.policy.name(),
            jobs,
            events_processed: self.events_processed,
            ended_at: self.now,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, EstimatorKind, JvmModel, ShardSpec};
    use crate::policy::{NoSpeculation, SubmitDecision};
    use chronos_core::Pareto;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            cluster: ClusterSpec::homogeneous(4, 2),
            jvm: JvmModel::disabled(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 1.0,
            seed,
            max_events: 0,
            sharding: ShardSpec::default(),
        }
    }

    fn job(id: u64, submit: f64, deadline: f64, tasks: usize) -> JobSpec {
        JobSpec::new(JobId::new(id), SimTime::from_secs(submit), deadline, tasks)
            .with_profile(Pareto::new(10.0, 1.5).unwrap())
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 500.0, 4)).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 1);
        let metrics = report.jobs.values().next().unwrap();
        assert!(metrics.completed_at.is_some());
        assert_eq!(metrics.attempts_launched, 4);
        assert_eq!(metrics.attempts_killed, 0);
        assert!(metrics.machine_time_secs >= 4.0 * 10.0);
        assert!(report.unfinished_fraction() < 1e-12);
    }

    #[test]
    fn duplicate_job_ids_rejected() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 1)).unwrap();
        assert!(sim.submit(job(0, 5.0, 100.0, 1)).is_err());
    }

    #[test]
    fn invalid_spec_rejected_on_submit() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        assert!(sim.submit(job(0, 0.0, 100.0, 0)).is_err());
    }

    #[test]
    fn submit_all_identifies_the_failing_spec() {
        // Spec #2 (job-7) has zero tasks: the error must name both the batch
        // position and the job id instead of losing them.
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        let batch = vec![
            job(5, 0.0, 100.0, 2),
            job(6, 1.0, 100.0, 2),
            job(7, 2.0, 100.0, 0),
            job(8, 3.0, 100.0, 2),
        ];
        let err = sim.submit_all(batch).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("batch spec #2"), "{message}");
        assert!(message.contains("job-7"), "{message}");
        // Earlier jobs in the batch remain queued, the failing one does not.
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 2);
    }

    /// Records what the batch hook saw; optionally fails on a chosen job,
    /// naming it via `with_context` as the hook contract requires.
    #[derive(Debug, Default)]
    struct BatchProbe {
        batches: std::sync::Arc<std::sync::Mutex<Vec<Vec<JobId>>>>,
        fail_on: Option<JobId>,
    }

    impl SpeculationPolicy for BatchProbe {
        fn name(&self) -> String {
            "batch-probe".to_string()
        }

        fn on_job_batch(&mut self, jobs: &[JobSubmitView]) -> Result<(), SimError> {
            if let Some(bad) = self.fail_on {
                if jobs.iter().any(|view| view.job == bad) {
                    return Err(SimError::invalid_config("no plan solves this profile")
                        .with_context(format_args!("planning {bad}")));
                }
            }
            self.batches
                .lock()
                .unwrap()
                .push(jobs.iter().map(|view| view.job).collect());
            Ok(())
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision::default()
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::Never
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            Vec::new()
        }
    }

    #[test]
    fn submit_all_hands_the_whole_batch_to_the_policy() {
        let probe = BatchProbe::default();
        let batches = std::sync::Arc::clone(&probe.batches);
        let mut sim = Simulation::new(small_config(3), Box::new(probe)).unwrap();
        sim.submit_all(vec![job(0, 0.0, 400.0, 1), job(1, 1.0, 400.0, 1)])
            .unwrap();
        sim.submit_all(vec![job(2, 2.0, 400.0, 1)]).unwrap();
        assert_eq!(
            *batches.lock().unwrap(),
            vec![vec![JobId::new(0), JobId::new(1)], vec![JobId::new(2)]]
        );
        // The simulation still runs normally after batch planning.
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 3);
    }

    #[test]
    fn batch_planning_errors_name_the_job_and_the_batch() {
        let probe = BatchProbe {
            fail_on: Some(JobId::new(1)),
            ..BatchProbe::default()
        };
        let mut sim = Simulation::new(small_config(3), Box::new(probe)).unwrap();
        let err = sim
            .submit_all(vec![job(0, 0.0, 400.0, 1), job(1, 1.0, 400.0, 1)])
            .unwrap_err();
        let message = err.to_string();
        // The policy named the job, the engine named the batch.
        assert!(message.contains("planning job-1"), "{message}");
        assert!(message.contains("2-job batch"), "{message}");
    }

    #[test]
    fn submit_all_identifies_duplicate_ids_in_batch() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        let err = sim
            .submit_all(vec![job(0, 0.0, 100.0, 1), job(0, 1.0, 100.0, 1)])
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("batch spec #1"), "{message}");
        assert!(message.contains("duplicate job id"), "{message}");
    }

    #[test]
    fn report_latency_histogram_counts_every_job() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit_all((0..5).map(|i| job(i, f64::from(i as u32), 500.0, 2)))
            .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.latency.total(), 5);
        assert_eq!(report.latency.unfinished(), 0);
        let completed = report
            .jobs
            .values()
            .filter_map(JobMetrics::completion_secs)
            .count() as u64;
        assert_eq!(report.latency.completed(), completed);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(small_config(seed), Box::new(NoSpeculation)).unwrap();
            sim.submit_all((0..5).map(|i| job(i, f64::from(i as u32) * 3.0, 400.0, 3)))
                .unwrap();
            sim.run().unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn container_contention_serializes_attempts() {
        // 1 node × 1 slot and a 3-task job: tasks must run one after another,
        // so the completion time is at least the sum of the two fastest
        // durations plus the third.
        let mut config = small_config(5);
        config.cluster = ClusterSpec::homogeneous(1, 1);
        let mut sim = Simulation::new(config, Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 10_000.0, 3)).unwrap();
        let report = sim.run().unwrap();
        let metrics = report.jobs.values().next().unwrap();
        // With a single slot the job's turnaround equals its machine time.
        assert!(
            (metrics.completion_secs().unwrap() - metrics.machine_time_secs).abs() < 1e-6,
            "turnaround {} vs machine {}",
            metrics.completion_secs().unwrap(),
            metrics.machine_time_secs
        );
    }

    #[test]
    fn event_budget_enforced() {
        let mut config = small_config(5);
        config.max_events = 2;
        let mut sim = Simulation::new(config, Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 8)).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { limit: 2 })
        ));
    }

    /// A test policy that clones every task once and prunes to the best
    /// progress attempt at a fixed offset.
    #[derive(Debug)]
    struct CloneOnce {
        kill_offset: f64,
    }

    impl SpeculationPolicy for CloneOnce {
        fn name(&self) -> String {
            "clone-once".to_string()
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision {
                extra_clones_per_task: 1,
                reported_r: Some(1),
            }
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::AtOffsets(vec![self.kill_offset])
        }

        fn on_check(&mut self, view: &JobView) -> Vec<PolicyAction> {
            let mut actions = Vec::new();
            for task in view.incomplete_tasks() {
                if let Some(best) = task.best_progress_attempt() {
                    actions.push(PolicyAction::KillAllExcept {
                        task: task.task,
                        keep: best.attempt,
                    });
                }
            }
            actions
        }
    }

    #[test]
    fn cloning_policy_launches_and_prunes() {
        let mut sim =
            Simulation::new(small_config(7), Box::new(CloneOnce { kill_offset: 5.0 })).unwrap();
        sim.submit(job(0, 0.0, 1_000.0, 3)).unwrap();
        let report = sim.run().unwrap();
        let metrics = report.jobs.values().next().unwrap();
        // 3 tasks × 2 attempts launched.
        assert_eq!(metrics.attempts_launched, 6);
        // Every task had one attempt killed (either pruned at 5 s or killed
        // when the sibling finished first).
        assert_eq!(metrics.attempts_killed, 3);
        assert_eq!(metrics.chosen_r, Some(1));
        assert_eq!(report.chosen_r_histogram().get(&1), Some(&1));
    }

    #[test]
    fn clone_reduces_completion_time_versus_baseline() {
        // Cloning takes the min of two Pareto draws per task, so across many
        // jobs the mean completion time must drop.
        let submit_jobs = |sim: &mut Simulation| {
            sim.submit_all((0..40).map(|i| {
                JobSpec::new(
                    JobId::new(i),
                    SimTime::from_secs(f64::from(i as u32) * 200.0),
                    10_000.0,
                    4,
                )
                .with_profile(Pareto::new(10.0, 1.2).unwrap())
            }))
            .unwrap();
        };
        let mut baseline = Simulation::new(small_config(21), Box::new(NoSpeculation)).unwrap();
        submit_jobs(&mut baseline);
        let baseline_report = baseline.run().unwrap();

        let mut cloned =
            Simulation::new(small_config(21), Box::new(CloneOnce { kill_offset: 2.0 })).unwrap();
        submit_jobs(&mut cloned);
        let cloned_report = cloned.run().unwrap();

        assert!(
            cloned_report.mean_completion_secs().unwrap()
                < baseline_report.mean_completion_secs().unwrap()
        );
    }

    /// Policy that misbehaves by targeting a foreign job's task.
    #[derive(Debug)]
    struct Misbehaving;

    impl SpeculationPolicy for Misbehaving {
        fn name(&self) -> String {
            "misbehaving".to_string()
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision::default()
        }

        fn check_schedule(&self, job: &JobSubmitView) -> CheckSchedule {
            if job.job == JobId::new(1) {
                CheckSchedule::AtOffsets(vec![1.0])
            } else {
                CheckSchedule::Never
            }
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            // Task 0 belongs to job 0, not job 1.
            vec![PolicyAction::LaunchExtra {
                task: TaskId::new(0),
                count: 1,
                start_fraction: 0.0,
            }]
        }
    }

    #[test]
    fn cross_job_actions_are_rejected() {
        let mut sim = Simulation::new(small_config(9), Box::new(Misbehaving)).unwrap();
        sim.submit(job(0, 0.0, 2_000.0, 1)).unwrap();
        sim.submit(job(1, 0.0, 2_000.0, 1)).unwrap();
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::InvalidAction { .. }));
    }

    #[test]
    fn policy_name_surfaces_in_report() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 1)).unwrap();
        assert_eq!(sim.policy_name(), "hadoop-ns");
        let report = sim.run().unwrap();
        assert_eq!(report.policy, "hadoop-ns");
        assert!(report.events_processed > 0);
    }
}
