//! The discrete-event simulation engine: the YARN ResourceManager /
//! ApplicationMaster / NodeManager loop distilled to the decision points the
//! Chronos strategies and baselines need.
//!
//! The engine owns jobs, tasks, attempts, containers and the event queue;
//! the plugged-in [`SpeculationPolicy`] only ever sees immutable snapshots
//! and replies with actions. A fixed RNG seed makes every run reproducible.
//!
//! # Hot-loop layout (struct-of-arrays)
//!
//! Event dispatch is allocation-free. All runtime state lives in dense
//! slabs indexed by raw id:
//!
//! * `tasks` and `attempts` are `Vec`s whose index **is** the raw
//!   [`TaskId`] / [`AttemptId`] — the engine allocates ids by slab length,
//!   so an event's id resolves to its state in one bounds-checked index,
//!   with no tree walk and no hashing.
//! * `jobs` is a `Vec` in submission order; caller-chosen job ids resolve
//!   through a `job_slots` hash map (fast multiply-xor hasher — ids are
//!   engine-trusted) once per job-scoped operation. `task_job_slot` maps a
//!   task index straight to its job slot.
//! * A job's tasks form one contiguous id block
//!   ([`JobRuntime::task_range`]); a task's attempts form an intrusive
//!   sibling chain through [`Attempt::next_sibling`], so neither needs a
//!   per-entity `Vec`.
//! * Per-job policy bookkeeping (`chosen_r`, the periodic-check period) are
//!   parallel arrays over job slots. `task_hot` flattens each task's
//!   sampling parameters (Pareto `t_min`, precomputed `1/β`, size factor)
//!   next to its index so starting an attempt — the single hottest
//!   operation — never chases the attempt → task → job pointer chain. [`JobView`] snapshots are built from
//!   pooled scratch buffers that are reclaimed after each
//!   [`SpeculationPolicy::on_check`] call.
//!
//! # Event accounting and lazy deletion
//!
//! Killing a running attempt does not remove its completion event; the pop
//! finds the attempt no longer `Running` and ignores it (the lazy-deletion
//! contract described in [`crate::event`]). Such pops advance simulated
//! time but are counted as `events_stale`, **not** `events_dispatched`:
//! only dispatched events represent simulation work, feed the events/sec
//! metrics, and count against the `max_events` budget (see
//! [`SimError::EventBudgetExhausted`]).
//!
//! # Submit memoization
//!
//! Policies that declare [`SpeculationPolicy::submit_is_profile_pure`] get
//! their submit-time planning deduplicated *inside the engine*: jobs
//! sharing a profile (task count, deadline, price, distribution — the
//! chronos-plan `ProfileKey` idea applied at simulation time) are planned
//! once, and later arrivals replay the memoized decision through
//! [`SpeculationPolicy::on_job_submit_replayed`].

use crate::attempt::{Attempt, AttemptState};
use crate::cluster::{PlacementPolicy, PlacementRequest, ResourceManager};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::ids::{AttemptId, FastIdHash, JobId, NodeId, TaskId};
use crate::job::{JobRuntime, JobSpec, TaskRuntime};
use crate::metrics::{JobMetrics, LatencyHistogram, SimulationReport};
use crate::policy::{
    AttemptView, BatchPlan, CheckSchedule, JobSubmitView, JobView, PolicyAction, SpeculationPolicy,
    SubmitDecision, TaskView,
};
use crate::progress::{estimate_completion, estimate_resume_offset};
use crate::time::{SimDuration, SimTime};
use chronos_obs::{DecisionTrace, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// The submit-relevant fields of a [`JobSubmitView`] — everything except
/// the job id — with floats keyed by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProfileKey {
    task_count: u32,
    deadline_bits: u64,
    price_bits: u64,
    t_min_bits: u64,
    beta_bits: u64,
}

impl ProfileKey {
    fn of(view: &JobSubmitView) -> Self {
        ProfileKey {
            task_count: view.task_count,
            deadline_bits: view.deadline_secs.to_bits(),
            price_bits: view.price.to_bits(),
            t_min_bits: view.profile.t_min().to_bits(),
            beta_bits: view.profile.beta().to_bits(),
        }
    }
}

/// A memoized [`CheckSchedule`], with `AtOffsets` interned into the shared
/// `memo_offsets` arena so cache hits stay allocation-free.
#[derive(Debug, Clone, Copy)]
enum ScheduleKind {
    Never,
    Offsets { start: u32, len: u32 },
    Periodic { first: f64, period: f64 },
}

/// Per-task data for [`Simulation::start_attempt`], flattened at task
/// creation: the owning job's Pareto parameters (with `1/β` precomputed —
/// the same division the former `Pareto::sample` call performed, done once
/// per job instead of once per attempt) and the task's size factor.
/// Work samples computed from this slot are bit-identical to
/// `job.spec.profile.sample(rng) * task.size_factor`.
#[derive(Debug, Clone, Copy)]
struct TaskHot {
    t_min: f64,
    inv_beta: f64,
    size_factor: f64,
}

/// A complete simulation: configuration, cluster state, workload and policy.
///
/// # Examples
///
/// ```
/// use chronos_sim::prelude::*;
///
/// # fn main() -> Result<(), SimError> {
/// let config = SimConfig::default();
/// let mut sim = Simulation::new(config, Box::new(NoSpeculation))?;
/// sim.submit(JobSpec::new(JobId::new(0), SimTime::ZERO, 200.0, 8))?;
/// let report = sim.run()?;
/// assert_eq!(report.job_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    policy: Box<dyn SpeculationPolicy>,
    policy_name: String,
    rng: StdRng,
    events: EventQueue,
    /// Jobs in submission order; `job_slots` maps raw job id → slot.
    jobs: Vec<JobRuntime>,
    job_slots: HashMap<u64, u32, FastIdHash>,
    /// Dense slab indexed by raw [`TaskId`].
    tasks: Vec<TaskRuntime>,
    /// Parallel to `tasks`: the owning job's slot.
    task_job_slot: Vec<u32>,
    /// Parallel to `tasks`: everything [`Simulation::start_attempt`] needs
    /// to price a work sample, pre-flattened so the hottest path reads one
    /// small slot instead of chasing attempt → task → job pointers.
    task_hot: Vec<TaskHot>,
    /// Dense slab indexed by raw [`AttemptId`].
    attempts: Vec<Attempt>,
    /// Per job slot: the `r` the policy reported at submission.
    chosen_r: Vec<Option<u32>>,
    /// Per job slot: the period of a [`CheckSchedule::Periodic`], for
    /// re-arming checks while the job runs.
    job_period: Vec<Option<f64>>,
    rm: ResourceManager,
    now: SimTime,
    events_dispatched: u64,
    events_stale: u64,
    /// Submit memoization (see the module docs); enabled iff the policy
    /// declared itself profile-pure at construction.
    memo_enabled: bool,
    memo: HashMap<ProfileKey, (SubmitDecision, ScheduleKind), FastIdHash>,
    memo_offsets: Vec<f64>,
    /// Per-job submit overrides from the policy's [`BatchPlan`]s, consumed
    /// at arrival. Overridden jobs bypass the profile memo: an override is
    /// per job id, the memo is per profile.
    submit_overrides: HashMap<u64, SubmitDecision, FastIdHash>,
    /// Pooled scratch for [`JobView`] snapshots.
    view_tasks_scratch: Vec<TaskView>,
    attempt_vec_pool: Vec<Vec<AttemptView>>,
    /// Structured decision recording ([`Simulation::enable_decision_trace`]).
    /// `None` (the default) keeps every hot path on a single never-taken
    /// branch — the recorder is zero-cost unless explicitly enabled.
    trace: Option<DecisionTrace>,
}

impl Simulation {
    /// Creates a simulation with the given configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: SimConfig, policy: Box<dyn SpeculationPolicy>) -> Result<Self, SimError> {
        config.validate()?;
        let rm = ResourceManager::new(&config.cluster)?;
        let rng = StdRng::seed_from_u64(config.seed);
        let policy_name = policy.name().to_string();
        let memo_enabled = policy.submit_is_profile_pure();
        Ok(Simulation {
            config,
            policy,
            policy_name,
            rng,
            events: EventQueue::new(),
            jobs: Vec::new(),
            job_slots: HashMap::with_hasher(FastIdHash),
            tasks: Vec::new(),
            task_job_slot: Vec::new(),
            task_hot: Vec::new(),
            attempts: Vec::new(),
            chosen_r: Vec::new(),
            job_period: Vec::new(),
            rm,
            now: SimTime::ZERO,
            events_dispatched: 0,
            events_stale: 0,
            memo_enabled,
            memo: HashMap::with_hasher(FastIdHash),
            memo_offsets: Vec::new(),
            submit_overrides: HashMap::with_hasher(FastIdHash),
            view_tasks_scratch: Vec::new(),
            attempt_vec_pool: Vec::new(),
            trace: None,
        })
    }

    /// Turns on structured decision recording. Events (submit overrides,
    /// speculative copy launches/kills, deadline misses, budget
    /// grants/denies, phase spans) are stamped with integer sim-time
    /// microseconds, so a trace is as deterministic as the simulation
    /// itself. `capacity` bounds the ring (`None` = unbounded; once full,
    /// the oldest records are evicted and counted).
    pub fn enable_decision_trace(&mut self, capacity: Option<usize>) {
        self.trace = Some(match capacity {
            Some(capacity) => DecisionTrace::bounded(capacity),
            None => DecisionTrace::new(),
        });
    }

    /// Takes the recorded decision trace, leaving recording disabled.
    /// Returns `None` when tracing was never enabled.
    pub fn take_decision_trace(&mut self) -> Option<DecisionTrace> {
        self.trace.take()
    }

    /// The name of the policy driving this simulation (cached at
    /// construction; no per-call allocation).
    #[must_use]
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues a job for submission at its `submit_time`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid specs or duplicate
    /// job ids.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), SimError> {
        spec.validate()?;
        let slot = self.jobs.len() as u32;
        match self.job_slots.entry(spec.id.raw()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                return Err(SimError::invalid_config(format!(
                    "duplicate job id {}",
                    spec.id
                )));
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(slot);
            }
        }
        let id = spec.id;
        let submit_time = spec.submit_time;
        self.jobs.push(JobRuntime::new(spec));
        self.chosen_r.push(None);
        self.job_period.push(None);
        self.events.schedule(submit_time, Event::JobArrival(id));
        Ok(())
    }

    /// Queues a batch of jobs, then hands the whole batch to the policy's
    /// [`SpeculationPolicy::on_job_batch`] hook so optimizing policies can
    /// plan it in one deduplicated pass (see the hook's docs) before any
    /// arrival event fires. Per-job overrides in the returned [`BatchPlan`]
    /// are recorded and applied at the jobs' arrival events in place of
    /// [`SpeculationPolicy::on_job_submit`].
    ///
    /// # Errors
    ///
    /// Fails on the first invalid or duplicate spec, identifying the
    /// offending spec by its position in the batch and its job id; earlier
    /// jobs in the batch remain queued. Policy batch-planning failures are
    /// propagated with batch context added (the policy names the offending
    /// job id itself, per the hook's contract).
    pub fn submit_all<I>(&mut self, specs: I) -> Result<(), SimError>
    where
        I: IntoIterator<Item = JobSpec>,
    {
        let specs = specs.into_iter();
        let (min_jobs, _) = specs.size_hint();
        self.jobs.reserve(min_jobs);
        self.job_slots.reserve(min_jobs);
        self.chosen_r.reserve(min_jobs);
        self.job_period.reserve(min_jobs);
        let mut views = Vec::with_capacity(min_jobs);
        let mut total_tasks = 0usize;
        for (index, spec) in specs.enumerate() {
            let id = spec.id;
            total_tasks += spec.task_count();
            let view = Self::submit_view_of(&spec);
            self.submit(spec)
                .map_err(|err| err.with_context(format_args!("batch spec #{index} ({id})")))?;
            views.push(view);
        }
        // One task slot and (at least) one attempt slot per task will be
        // claimed as the arrivals dispatch; reserving here keeps the SoA
        // pushes in the hot loop from ever reallocating mid-run.
        self.tasks.reserve(total_tasks);
        self.task_job_slot.reserve(total_tasks);
        self.task_hot.reserve(total_tasks);
        self.attempts.reserve(total_tasks);
        let plan = self.policy.on_job_batch(&views).map_err(|err| {
            err.with_context(format_args!("planning a {}-job batch", views.len()))
        })?;
        if let Some(trace) = self.trace.as_mut() {
            // Budget accounting is part of the batch plan's diagnostics, so
            // grant/deny events need no policy cooperation — and stay
            // deterministic, since planning happens before any event fires.
            let diagnostics = plan.diagnostics;
            if !diagnostics.budget.is_unlimited() {
                trace.record(
                    self.now.as_micros(),
                    TraceEvent::BudgetGrant {
                        jobs: diagnostics.jobs,
                        requested: diagnostics.requested,
                        granted: diagnostics.spent,
                    },
                );
                if diagnostics.spent < diagnostics.requested {
                    trace.record(
                        self.now.as_micros(),
                        TraceEvent::BudgetDeny {
                            jobs: diagnostics.jobs,
                            denied: diagnostics.requested - diagnostics.spent,
                        },
                    );
                }
            }
        }
        self.record_batch_plan(plan)
    }

    /// Stores a [`BatchPlan`]'s overrides for application at arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan overrides a job id
    /// the engine does not know — the policy planned a job that was never
    /// queued.
    fn record_batch_plan(&mut self, plan: BatchPlan) -> Result<(), SimError> {
        for (job, decision) in plan.overrides() {
            if !self.job_slots.contains_key(&job.raw()) {
                return Err(SimError::invalid_config(format!(
                    "batch plan overrides unknown job {job}"
                )));
            }
            self.submit_overrides.insert(job.raw(), decision);
        }
        Ok(())
    }

    /// The submit-time snapshot of a spec, as the policy sees it both in
    /// [`SpeculationPolicy::on_job_batch`] and at the arrival event.
    fn submit_view_of(spec: &JobSpec) -> JobSubmitView {
        JobSubmitView {
            job: spec.id,
            task_count: spec.task_count() as u32,
            deadline_secs: spec.deadline_secs,
            price: spec.price,
            profile: spec.profile,
        }
    }

    /// Runs the simulation to completion and returns the aggregated report.
    ///
    /// # Errors
    ///
    /// * [`SimError::EventBudgetExhausted`] when more than `max_events`
    ///   events are *dispatched* (stale lazily-deleted completions advance
    ///   time but do not consume budget).
    /// * [`SimError::InvalidAction`] / [`SimError::UnknownEntity`] when the
    ///   policy produces actions referencing foreign or unknown entities.
    pub fn run(&mut self) -> Result<SimulationReport, SimError> {
        let started_at = self.now;
        while let Some((time, event)) = self.events.pop() {
            debug_assert!(time >= self.now, "event time went backwards");
            self.now = time;
            if let Event::AttemptCompletion(attempt) = event {
                if self.attempts[attempt.raw() as usize].state != AttemptState::Running {
                    // Lazily-deleted completion: the attempt was killed (or
                    // finished through a sibling) after this event was
                    // scheduled. Time has advanced, but no work happens.
                    self.events_stale += 1;
                    continue;
                }
            }
            self.events_dispatched += 1;
            if self.config.max_events > 0 && self.events_dispatched > self.config.max_events {
                return Err(SimError::EventBudgetExhausted {
                    limit: self.config.max_events,
                });
            }
            match event {
                Event::JobArrival(job) => self.handle_job_arrival(job)?,
                Event::AttemptCompletion(attempt) => self.handle_attempt_completion(attempt)?,
                Event::PolicyCheck { job, index } => self.handle_policy_check(job, index)?,
            }
        }
        let report = self.build_report();
        if let Some(trace) = self.trace.as_mut() {
            // A digest-safe sim-time span of the whole event loop; wall
            // clocks never enter the trace (see chronos-obs::span).
            trace.record(
                self.now.as_micros(),
                chronos_obs::span::sim_span(
                    "simulate",
                    started_at.as_micros(),
                    self.now.as_micros(),
                ),
            );
        }
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_job_arrival(&mut self, job_id: JobId) -> Result<(), SimError> {
        let slot = *self
            .job_slots
            .get(&job_id.raw())
            .ok_or_else(|| SimError::unknown(format!("{job_id}")))?;
        let (submit_view, submit_time, task_count) = {
            let job = &self.jobs[slot as usize];
            (
                Self::submit_view_of(&job.spec),
                job.spec.submit_time,
                job.spec.task_count(),
            )
        };

        let (decision, schedule) =
            if let Some(decision) = self.submit_overrides.remove(&job_id.raw()) {
                // A batch-plan override is the final decision for this job: the
                // policy hears about it through the replay hook (mirroring its
                // bookkeeping), and the profile memo is bypassed in both
                // directions — the override must not be served to other jobs of
                // the same profile, nor a memoized decision to this job.
                self.policy.on_job_submit_replayed(&submit_view, decision);
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(
                        self.now.as_micros(),
                        TraceEvent::SubmitOverrideApplied {
                            job: job_id.raw(),
                            extra_clones: decision.extra_clones_per_task,
                            reported_r: decision.reported_r,
                        },
                    );
                }
                let schedule = self.intern_schedule(self.policy.check_schedule(&submit_view));
                (decision, schedule)
            } else if self.memo_enabled {
                let key = ProfileKey::of(&submit_view);
                if let Some(&(decision, schedule)) = self.memo.get(&key) {
                    self.policy.on_job_submit_replayed(&submit_view, decision);
                    (decision, schedule)
                } else {
                    let decision = self.policy.on_job_submit(&submit_view);
                    let schedule = self.intern_schedule(self.policy.check_schedule(&submit_view));
                    self.memo.insert(key, (decision, schedule));
                    (decision, schedule)
                }
            } else {
                let decision = self.policy.on_job_submit(&submit_view);
                let schedule = self.intern_schedule(self.policy.check_schedule(&submit_view));
                (decision, schedule)
            };

        if let Some(r) = decision.reported_r {
            self.chosen_r[slot as usize] = Some(r);
        }

        match schedule {
            ScheduleKind::Never => {}
            ScheduleKind::Offsets { start, len } => {
                for index in 0..len {
                    let offset = self.memo_offsets[(start + index) as usize];
                    self.events.schedule(
                        submit_time + SimDuration::from_secs(offset),
                        Event::PolicyCheck { job: job_id, index },
                    );
                }
            }
            ScheduleKind::Periodic { first, period } => {
                self.job_period[slot as usize] = Some(period);
                self.events.schedule(
                    submit_time + SimDuration::from_secs(first),
                    Event::PolicyCheck {
                        job: job_id,
                        index: 0,
                    },
                );
            }
        }

        // Create the job's contiguous task block and the initial attempts
        // (1 original + clones). When no attempt is waiting for a container
        // the wait queue is provably empty of older work, so a free
        // container can be claimed immediately — same start order and RNG
        // draw order as the enqueue → dispatch round trip, minus the queue
        // traffic.
        self.jobs[slot as usize].first_task = Some(TaskId::new(self.tasks.len() as u64));
        let profile = self.jobs[slot as usize].spec.profile;
        let hot = TaskHot {
            t_min: profile.t_min(),
            inv_beta: 1.0 / profile.beta(),
            size_factor: 1.0,
        };
        for index in 0..task_count {
            let task_id = TaskId::new(self.tasks.len() as u64);
            let spec = self.jobs[slot as usize].spec.tasks[index];
            self.tasks.push(TaskRuntime::new(task_id, job_id, &spec));
            self.task_job_slot.push(slot);
            self.task_hot.push(TaskHot {
                size_factor: self.tasks[task_id.raw() as usize].size_factor,
                ..hot
            });
            for _ in 0..=decision.extra_clones_per_task {
                let attempt_id = self.create_attempt_unqueued(task_id, 0.0)?;
                if !self.rm.has_waiting_work() {
                    if let Some(node) = self.place_attempt(attempt_id) {
                        self.start_attempt(attempt_id, node);
                        continue;
                    }
                }
                self.rm.enqueue_pending(attempt_id);
            }
        }
        self.dispatch_pending();
        Ok(())
    }

    /// Interns a schedule into the memoizable representation, moving
    /// `AtOffsets` payloads into the shared offset arena.
    fn intern_schedule(&mut self, schedule: CheckSchedule) -> ScheduleKind {
        match schedule {
            CheckSchedule::Never => ScheduleKind::Never,
            CheckSchedule::AtOffsets(offsets) => {
                let start = self.memo_offsets.len() as u32;
                self.memo_offsets.extend_from_slice(&offsets);
                ScheduleKind::Offsets {
                    start,
                    len: offsets.len() as u32,
                }
            }
            CheckSchedule::Periodic { first, period } => ScheduleKind::Periodic { first, period },
        }
    }

    fn handle_attempt_completion(&mut self, attempt_id: AttemptId) -> Result<(), SimError> {
        let (task_id, node, completion) = {
            let attempt = &mut self.attempts[attempt_id.raw() as usize];
            // Stale completions were filtered out by the run loop.
            debug_assert_eq!(attempt.state, AttemptState::Running);
            let completion = attempt.completion_time();
            attempt.state = AttemptState::Finished;
            attempt.ended_at = Some(self.now);
            (attempt.task, attempt.node, completion)
        };
        if let Some(node) = node {
            let at = completion.unwrap_or(self.now).as_micros();
            self.rm.release_scheduled(node, at)?;
        }

        let task_idx = task_id.raw() as usize;
        if self.tasks[task_idx].completed_at.is_none() {
            self.tasks[task_idx].completed_at = Some(self.now);
            // The AM kills the remaining attempts of a committed task.
            let mut cursor = self.tasks[task_idx].first_attempt;
            while let Some(sibling) = cursor {
                cursor = self.attempts[sibling.raw() as usize].next_sibling;
                if sibling != attempt_id {
                    self.kill_attempt(sibling)?;
                }
            }
            let slot = self.task_job_slot[task_idx] as usize;
            self.jobs[slot].record_task_completion(self.now);
        }
        self.dispatch_pending();
        Ok(())
    }

    fn handle_policy_check(&mut self, job_id: JobId, index: u32) -> Result<(), SimError> {
        let Some(&slot) = self.job_slots.get(&job_id.raw()) else {
            return Ok(());
        };
        let slot = slot as usize;
        if !self.jobs[slot].is_completed() {
            let view = self.build_job_view(job_id, slot, index);
            let actions = self.policy.on_check(&view);
            self.reclaim_view(view);
            for action in actions {
                self.apply_action(job_id, action)?;
            }
            self.dispatch_pending();
        }

        // Periodic schedules re-arm while the job is incomplete.
        if let Some(period) = self.job_period[slot] {
            if !self.jobs[slot].is_completed() {
                self.events.schedule(
                    self.now + SimDuration::from_secs(period),
                    Event::PolicyCheck {
                        job: job_id,
                        index: index + 1,
                    },
                );
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Policy action application
    // ------------------------------------------------------------------

    fn apply_action(&mut self, job_id: JobId, action: PolicyAction) -> Result<(), SimError> {
        match action {
            PolicyAction::LaunchExtra {
                task,
                count,
                start_fraction,
            } => {
                let owner = self
                    .tasks
                    .get(task.raw() as usize)
                    .ok_or_else(|| SimError::unknown(format!("{task}")))?;
                if owner.job != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to launch attempts for {task} owned by {}",
                        owner.job
                    )));
                }
                if owner.is_completed() {
                    // Benign: the task finished between snapshot and action.
                    return Ok(());
                }
                for _ in 0..count {
                    let attempt = self.create_attempt(task, start_fraction)?;
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(
                            self.now.as_micros(),
                            TraceEvent::CopyLaunched {
                                job: job_id.raw(),
                                task: task.raw(),
                                attempt: attempt.raw(),
                            },
                        );
                    }
                }
                Ok(())
            }
            PolicyAction::Kill { attempt } => {
                let owner = self
                    .attempts
                    .get(attempt.raw() as usize)
                    .ok_or_else(|| SimError::unknown(format!("{attempt}")))?
                    .job;
                if owner != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to kill {attempt} owned by {owner}"
                    )));
                }
                self.kill_attempt(attempt)
            }
            PolicyAction::KillAllExcept { task, keep } => {
                let owner = self
                    .tasks
                    .get(task.raw() as usize)
                    .ok_or_else(|| SimError::unknown(format!("{task}")))?;
                if owner.job != job_id {
                    return Err(SimError::invalid_action(format!(
                        "policy for {job_id} tried to prune {task} owned by {}",
                        owner.job
                    )));
                }
                let mut cursor = owner.first_attempt;
                while let Some(attempt) = cursor {
                    cursor = self.attempts[attempt.raw() as usize].next_sibling;
                    if attempt != keep {
                        self.kill_attempt(attempt)?;
                    }
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Attempt lifecycle
    // ------------------------------------------------------------------

    fn create_attempt(
        &mut self,
        task_id: TaskId,
        start_fraction: f64,
    ) -> Result<AttemptId, SimError> {
        let attempt_id = self.create_attempt_unqueued(task_id, start_fraction)?;
        self.rm.enqueue_pending(attempt_id);
        Ok(attempt_id)
    }

    /// [`Simulation::create_attempt`] without the wait-queue insertion; the
    /// caller must either enqueue the attempt or start it directly.
    fn create_attempt_unqueued(
        &mut self,
        task_id: TaskId,
        start_fraction: f64,
    ) -> Result<AttemptId, SimError> {
        let task_idx = task_id.raw() as usize;
        let job_id = self
            .tasks
            .get(task_idx)
            .ok_or_else(|| SimError::unknown(format!("{task_id}")))?
            .job;
        let attempt_id = AttemptId::new(self.attempts.len() as u64);
        self.attempts.push(Attempt::pending(
            attempt_id,
            task_id,
            job_id,
            self.now,
            start_fraction,
        ));
        // Append to the task's sibling chain.
        match self.tasks[task_idx].last_attempt {
            Some(last) => self.attempts[last.raw() as usize].next_sibling = Some(attempt_id),
            None => self.tasks[task_idx].first_attempt = Some(attempt_id),
        }
        self.tasks[task_idx].last_attempt = Some(attempt_id);
        Ok(attempt_id)
    }

    /// Starts as many pending attempts as there are free containers.
    fn dispatch_pending(&mut self) {
        loop {
            if self.rm.free_slots() == 0 {
                return;
            }
            let Some(attempt_id) = self.rm.dequeue_pending() else {
                return;
            };
            let still_pending = self
                .attempts
                .get(attempt_id.raw() as usize)
                .map(|a| a.state == AttemptState::Pending)
                .unwrap_or(false);
            if !still_pending {
                continue;
            }
            let Some(node) = self.place_attempt(attempt_id) else {
                // No slot after all; put it back at the front-equivalent
                // position by re-enqueueing and bail out.
                self.rm.enqueue_pending(attempt_id);
                return;
            };
            self.start_attempt(attempt_id, node);
        }
    }

    /// Picks a node for `attempt_id` under the configured placement policy
    /// and records a [`TraceEvent::PlacementDecision`] for non-default
    /// policies. The default `MostFree` policy records nothing so existing
    /// trace digests are untouched.
    fn place_attempt(&mut self, attempt_id: AttemptId) -> Option<NodeId> {
        let placement = self.rm.placement();
        let request = if placement == PlacementPolicy::DeadlineAware {
            self.placement_request(attempt_id)
        } else {
            PlacementRequest::default()
        };
        let choice = self.rm.try_place(request)?;
        if placement != PlacementPolicy::MostFree {
            if let Some(trace) = self.trace.as_mut() {
                trace.record(
                    self.now.as_micros(),
                    TraceEvent::PlacementDecision {
                        node: choice.node.raw(),
                        free_slots: choice.free_slots,
                        score_bucket: u32::from(choice.score_bucket),
                    },
                );
            }
        }
        Some(choice.node)
    }

    /// Causal expected-duration estimate for an attempt: the profile mean
    /// of the remaining work plus the midpoint JVM warm-up, in sim micros.
    /// Uses only the job profile — never the sampled work, which has not
    /// been drawn yet — so the RNG draw order is identical across policies.
    fn placement_request(&self, attempt_id: AttemptId) -> PlacementRequest {
        let attempt = &self.attempts[attempt_id.raw() as usize];
        let hot = self.task_hot[attempt.task.raw() as usize];
        let beta = 1.0 / hot.inv_beta;
        let mean = if beta > 1.0 {
            hot.t_min * beta / (beta - 1.0)
        } else {
            // Infinite-mean Pareto tail: fall back to twice the scale.
            hot.t_min * 2.0
        };
        let remaining = mean * hot.size_factor * (1.0 - attempt.start_fraction);
        let jvm = 0.5 * (self.config.jvm.min_secs + self.config.jvm.max_secs);
        PlacementRequest {
            now_micros: self.now.as_micros(),
            expected_micros: SimDuration::from_secs(remaining.max(0.0) + jvm).as_micros(),
        }
    }

    fn start_attempt(&mut self, attempt_id: AttemptId, node: NodeId) {
        let jvm = if self.config.jvm.max_secs > self.config.jvm.min_secs {
            self.rng
                .gen_range(self.config.jvm.min_secs..=self.config.jvm.max_secs)
        } else {
            self.config.jvm.min_secs
        };
        let slowdown = self.rm.slowdown_of(node).unwrap_or(1.0);
        let attempt_idx = attempt_id.raw() as usize;
        let hot = self.task_hot[self.attempts[attempt_idx].task.raw() as usize];
        // Inverse-CDF Pareto draw, inlined from `Pareto::sample` with the
        // job's precomputed `1/β` — same RNG draw, same operations, same
        // bits as `profile.sample(rng) * size_factor * slowdown`.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let sample = hot.t_min / (1.0 - u).powf(hot.inv_beta);
        let work = sample * hot.size_factor * slowdown;
        let attempt = &mut self.attempts[attempt_idx];
        attempt.start(node, self.now, jvm, work);
        let completion = attempt
            .completion_time()
            .expect("started attempts have a completion time");
        self.rm
            .note_scheduled_completion(node, completion.as_micros());
        self.events
            .schedule(completion, Event::AttemptCompletion(attempt_id));
    }

    fn kill_attempt(&mut self, attempt_id: AttemptId) -> Result<(), SimError> {
        let attempt_idx = attempt_id.raw() as usize;
        let Some(attempt) = self.attempts.get(attempt_idx) else {
            return Err(SimError::unknown(format!("{attempt_id}")));
        };
        let (state, node, completion) = (attempt.state, attempt.node, attempt.completion_time());
        match state {
            AttemptState::Finished | AttemptState::Killed => Ok(()),
            AttemptState::Pending => {
                self.rm.remove_pending(attempt_id);
                let attempt = &mut self.attempts[attempt_idx];
                attempt.state = AttemptState::Killed;
                attempt.ended_at = Some(self.now);
                let (job, task) = (attempt.job, attempt.task);
                self.record_copy_killed(job, task, attempt_id);
                Ok(())
            }
            AttemptState::Running => {
                let attempt = &mut self.attempts[attempt_idx];
                attempt.state = AttemptState::Killed;
                attempt.ended_at = Some(self.now);
                let (job, task) = (attempt.job, attempt.task);
                if let Some(node) = node {
                    // Killed while running: drop the future completion entry
                    // that was registered when the attempt started.
                    let at = completion.unwrap_or(self.now).as_micros();
                    self.rm.release_scheduled(node, at)?;
                }
                self.record_copy_killed(job, task, attempt_id);
                Ok(())
            }
        }
    }

    /// Records a kill into the decision trace, if enabled. Every actual
    /// state transition to `Killed` funnels through [`Simulation::kill_attempt`],
    /// so this is the single choke point for kill events.
    fn record_copy_killed(&mut self, job: JobId, task: TaskId, attempt: AttemptId) {
        if let Some(trace) = self.trace.as_mut() {
            trace.record(
                self.now.as_micros(),
                TraceEvent::CopyKilled {
                    job: job.raw(),
                    task: task.raw(),
                    attempt: attempt.raw(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Views and reporting
    // ------------------------------------------------------------------

    /// Builds a policy snapshot from pooled scratch buffers; pair with
    /// [`Simulation::reclaim_view`] after the policy callback returns.
    fn build_job_view(&mut self, job_id: JobId, slot: usize, check_index: u32) -> JobView {
        let submitted_at = self.jobs[slot].spec.submit_time;
        let deadline_secs = self.jobs[slot].spec.deadline_secs;
        let task_range = self.jobs[slot].task_range();
        let mut tasks = std::mem::take(&mut self.view_tasks_scratch);
        debug_assert!(tasks.is_empty());
        let mut completed_tasks = 0usize;
        let mut duration_sum = 0.0f64;
        for task_raw in task_range {
            let task_idx = task_raw as usize;
            if let Some(done) = self.tasks[task_idx].completed_at {
                completed_tasks += 1;
                duration_sum += (done.saturating_since(submitted_at)).as_secs();
            }
            let mut attempts = self.attempt_vec_pool.pop().unwrap_or_default();
            debug_assert!(attempts.is_empty());
            let mut cursor = self.tasks[task_idx].first_attempt;
            while let Some(attempt_id) = cursor {
                let attempt = &self.attempts[attempt_id.raw() as usize];
                cursor = attempt.next_sibling;
                attempts.push(AttemptView {
                    attempt: attempt_id,
                    active: attempt.is_active(),
                    running: attempt.is_running(),
                    launched_at: attempt.launched_at,
                    progress: attempt.progress_at(self.now),
                    estimated_completion: estimate_completion(
                        self.config.estimator,
                        attempt,
                        self.now,
                        self.config.progress_report_interval_secs,
                    ),
                    start_fraction: attempt.start_fraction,
                    resume_offset_hint: estimate_resume_offset(
                        attempt,
                        self.now,
                        self.config.progress_report_interval_secs,
                    ),
                });
            }
            tasks.push(TaskView {
                task: TaskId::new(task_raw),
                completed: self.tasks[task_idx].is_completed(),
                attempts,
            });
        }
        let mean_completed_task_duration = if completed_tasks == 0 {
            None
        } else {
            Some(duration_sum / completed_tasks as f64)
        };
        JobView {
            job: job_id,
            submitted_at,
            deadline_secs,
            now: self.now,
            check_index,
            tasks,
            completed_tasks,
            mean_completed_task_duration,
            free_slots: self.rm.free_slots(),
            cluster_has_waiting_work: self.rm.has_waiting_work(),
        }
    }

    /// Returns a snapshot's buffers to the scratch pools.
    fn reclaim_view(&mut self, mut view: JobView) {
        for task in &mut view.tasks {
            let mut attempts = std::mem::take(&mut task.attempts);
            attempts.clear();
            self.attempt_vec_pool.push(attempts);
        }
        view.tasks.clear();
        self.view_tasks_scratch = view.tasks;
    }

    fn build_report(&mut self) -> SimulationReport {
        // Taken out for the loop below so recording misses does not fight
        // the borrow of `self.jobs`; restored before returning.
        let mut trace = self.trace.take();
        let mut jobs = BTreeMap::new();
        let mut latency = LatencyHistogram::new();
        for (slot, job) in self.jobs.iter().enumerate() {
            let mut machine_time = 0.0;
            let mut launched = 0u32;
            let mut killed = 0u32;
            for task_raw in job.task_range() {
                let mut cursor = self.tasks[task_raw as usize].first_attempt;
                while let Some(attempt_id) = cursor {
                    let attempt = &self.attempts[attempt_id.raw() as usize];
                    cursor = attempt.next_sibling;
                    machine_time += attempt.machine_time_until(self.now);
                    if attempt.launched_at.is_some() {
                        launched += 1;
                    }
                    if attempt.state == AttemptState::Killed {
                        killed += 1;
                    }
                }
            }
            let met_deadline = job.met_deadline().unwrap_or(false);
            if !met_deadline {
                if let Some(trace) = trace.as_mut() {
                    // Stamped at the deadline instant the job blew, not the
                    // end of the run — both are deterministic, but the
                    // deadline reads naturally in a merged log.
                    let deadline_at =
                        job.spec.submit_time + SimDuration::from_secs(job.spec.deadline_secs);
                    trace.record(
                        deadline_at.as_micros(),
                        TraceEvent::DeadlineMissed {
                            job: job.spec.id.raw(),
                        },
                    );
                }
            }
            let entry = JobMetrics {
                job: job.spec.id,
                submitted_at: job.spec.submit_time,
                deadline_secs: job.spec.deadline_secs,
                completed_at: job.completed_at,
                met_deadline,
                machine_time_secs: machine_time,
                cost: machine_time * job.spec.price,
                attempts_launched: launched,
                attempts_killed: killed,
                chosen_r: self.chosen_r[slot],
            };
            match entry.completion_secs() {
                Some(secs) => latency.record_secs(secs),
                None => latency.record_unfinished(),
            }
            jobs.insert(job.spec.id, entry);
        }
        self.trace = trace;
        SimulationReport {
            policy: self.policy_name.clone(),
            jobs,
            events_dispatched: self.events_dispatched,
            events_stale: self.events_stale,
            ended_at: self.now,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, EstimatorKind, JvmModel, ShardSpec};
    use crate::policy::{NoSpeculation, SubmitDecision};
    use chronos_core::Pareto;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            cluster: ClusterSpec::homogeneous(4, 2),
            jvm: JvmModel::disabled(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 1.0,
            seed,
            max_events: 0,
            sharding: ShardSpec::default(),
        }
    }

    fn job(id: u64, submit: f64, deadline: f64, tasks: usize) -> JobSpec {
        JobSpec::new(JobId::new(id), SimTime::from_secs(submit), deadline, tasks)
            .with_profile(Pareto::new(10.0, 1.5).unwrap())
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 500.0, 4)).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 1);
        let metrics = report.jobs.values().next().unwrap();
        assert!(metrics.completed_at.is_some());
        assert_eq!(metrics.attempts_launched, 4);
        assert_eq!(metrics.attempts_killed, 0);
        assert!(metrics.machine_time_secs >= 4.0 * 10.0);
        assert!(report.unfinished_fraction() < 1e-12);
    }

    #[test]
    fn duplicate_job_ids_rejected() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 1)).unwrap();
        assert!(sim.submit(job(0, 5.0, 100.0, 1)).is_err());
    }

    #[test]
    fn invalid_spec_rejected_on_submit() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        assert!(sim.submit(job(0, 0.0, 100.0, 0)).is_err());
    }

    #[test]
    fn submit_all_identifies_the_failing_spec() {
        // Spec #2 (job-7) has zero tasks: the error must name both the batch
        // position and the job id instead of losing them.
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        let batch = vec![
            job(5, 0.0, 100.0, 2),
            job(6, 1.0, 100.0, 2),
            job(7, 2.0, 100.0, 0),
            job(8, 3.0, 100.0, 2),
        ];
        let err = sim.submit_all(batch).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("batch spec #2"), "{message}");
        assert!(message.contains("job-7"), "{message}");
        // Earlier jobs in the batch remain queued, the failing one does not.
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 2);
    }

    /// Records what the batch hook saw; optionally fails on a chosen job,
    /// naming it via `with_context` as the hook contract requires.
    #[derive(Debug, Default)]
    struct BatchProbe {
        batches: std::sync::Arc<std::sync::Mutex<Vec<Vec<JobId>>>>,
        fail_on: Option<JobId>,
    }

    impl SpeculationPolicy for BatchProbe {
        fn name(&self) -> &str {
            "batch-probe"
        }

        fn on_job_batch(&mut self, jobs: &[JobSubmitView]) -> Result<BatchPlan, SimError> {
            if let Some(bad) = self.fail_on {
                if jobs.iter().any(|view| view.job == bad) {
                    return Err(SimError::invalid_config("no plan solves this profile")
                        .with_context(format_args!("planning {bad}")));
                }
            }
            self.batches
                .lock()
                .unwrap()
                .push(jobs.iter().map(|view| view.job).collect());
            Ok(BatchPlan::default())
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision::default()
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::Never
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            Vec::new()
        }
    }

    #[test]
    fn submit_all_hands_the_whole_batch_to_the_policy() {
        let probe = BatchProbe::default();
        let batches = std::sync::Arc::clone(&probe.batches);
        let mut sim = Simulation::new(small_config(3), Box::new(probe)).unwrap();
        sim.submit_all(vec![job(0, 0.0, 400.0, 1), job(1, 1.0, 400.0, 1)])
            .unwrap();
        sim.submit_all(vec![job(2, 2.0, 400.0, 1)]).unwrap();
        assert_eq!(
            *batches.lock().unwrap(),
            vec![vec![JobId::new(0), JobId::new(1)], vec![JobId::new(2)]]
        );
        // The simulation still runs normally after batch planning.
        let report = sim.run().unwrap();
        assert_eq!(report.job_count(), 3);
    }

    #[test]
    fn batch_planning_errors_name_the_job_and_the_batch() {
        let probe = BatchProbe {
            fail_on: Some(JobId::new(1)),
            ..BatchProbe::default()
        };
        let mut sim = Simulation::new(small_config(3), Box::new(probe)).unwrap();
        let err = sim
            .submit_all(vec![job(0, 0.0, 400.0, 1), job(1, 1.0, 400.0, 1)])
            .unwrap_err();
        let message = err.to_string();
        // The policy named the job, the engine named the batch.
        assert!(message.contains("planning job-1"), "{message}");
        assert!(message.contains("2-job batch"), "{message}");
    }

    #[test]
    fn submit_all_identifies_duplicate_ids_in_batch() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        let err = sim
            .submit_all(vec![job(0, 0.0, 100.0, 1), job(0, 1.0, 100.0, 1)])
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("batch spec #1"), "{message}");
        assert!(message.contains("duplicate job id"), "{message}");
    }

    #[test]
    fn report_latency_histogram_counts_every_job() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit_all((0..5).map(|i| job(i, f64::from(i as u32), 500.0, 2)))
            .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.latency.total(), 5);
        assert_eq!(report.latency.unfinished(), 0);
        let completed = report
            .jobs
            .values()
            .filter_map(JobMetrics::completion_secs)
            .count() as u64;
        assert_eq!(report.latency.completed(), completed);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(small_config(seed), Box::new(NoSpeculation)).unwrap();
            sim.submit_all((0..5).map(|i| job(i, f64::from(i as u32) * 3.0, 400.0, 3)))
                .unwrap();
            sim.run().unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn container_contention_serializes_attempts() {
        // 1 node × 1 slot and a 3-task job: tasks must run one after another,
        // so the completion time is at least the sum of the two fastest
        // durations plus the third.
        let mut config = small_config(5);
        config.cluster = ClusterSpec::homogeneous(1, 1);
        let mut sim = Simulation::new(config, Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 10_000.0, 3)).unwrap();
        let report = sim.run().unwrap();
        let metrics = report.jobs.values().next().unwrap();
        // With a single slot the job's turnaround equals its machine time.
        assert!(
            (metrics.completion_secs().unwrap() - metrics.machine_time_secs).abs() < 1e-6,
            "turnaround {} vs machine {}",
            metrics.completion_secs().unwrap(),
            metrics.machine_time_secs
        );
    }

    #[test]
    fn event_budget_enforced() {
        let mut config = small_config(5);
        config.max_events = 2;
        let mut sim = Simulation::new(config, Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 8)).unwrap();
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { limit: 2 })
        ));
    }

    /// A test policy that clones every task once and prunes to the best
    /// progress attempt at a fixed offset.
    #[derive(Debug)]
    struct CloneOnce {
        kill_offset: f64,
    }

    impl SpeculationPolicy for CloneOnce {
        fn name(&self) -> &str {
            "clone-once"
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision {
                extra_clones_per_task: 1,
                reported_r: Some(1),
            }
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::AtOffsets(vec![self.kill_offset])
        }

        fn on_check(&mut self, view: &JobView) -> Vec<PolicyAction> {
            let mut actions = Vec::new();
            for task in view.incomplete_tasks() {
                if let Some(best) = task.best_progress_attempt() {
                    actions.push(PolicyAction::KillAllExcept {
                        task: task.task,
                        keep: best.attempt,
                    });
                }
            }
            actions
        }
    }

    #[test]
    fn cloning_policy_launches_and_prunes() {
        let mut sim =
            Simulation::new(small_config(7), Box::new(CloneOnce { kill_offset: 5.0 })).unwrap();
        sim.submit(job(0, 0.0, 1_000.0, 3)).unwrap();
        let report = sim.run().unwrap();
        let metrics = report.jobs.values().next().unwrap();
        // 3 tasks × 2 attempts launched.
        assert_eq!(metrics.attempts_launched, 6);
        // Every task had one attempt killed (either pruned at 5 s or killed
        // when the sibling finished first).
        assert_eq!(metrics.attempts_killed, 3);
        assert_eq!(metrics.chosen_r, Some(1));
        assert_eq!(report.chosen_r_histogram().get(&1), Some(&1));
    }

    /// Trace-wiring probe: its first check speculates one extra copy per
    /// incomplete task, its second prunes back to the best attempt — so an
    /// observed run records both `CopyLaunched` and `CopyKilled`.
    #[derive(Debug)]
    struct LaunchThenPrune;

    impl SpeculationPolicy for LaunchThenPrune {
        fn name(&self) -> &str {
            "launch-then-prune"
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision::default()
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::AtOffsets(vec![2.0, 6.0])
        }

        fn on_check(&mut self, view: &JobView) -> Vec<PolicyAction> {
            let mut actions = Vec::new();
            for task in view.incomplete_tasks() {
                if view.check_index == 0 {
                    actions.push(PolicyAction::LaunchExtra {
                        task: task.task,
                        count: 1,
                        start_fraction: 0.0,
                    });
                } else if let Some(best) = task.best_progress_attempt() {
                    actions.push(PolicyAction::KillAllExcept {
                        task: task.task,
                        keep: best.attempt,
                    });
                }
            }
            actions
        }
    }

    #[test]
    fn decision_trace_records_the_speculation_lifecycle_without_perturbing_the_run() {
        let baseline = {
            let mut sim = Simulation::new(small_config(21), Box::new(LaunchThenPrune)).unwrap();
            sim.submit(job(0, 0.0, 1_000.0, 3)).unwrap();
            sim.run().unwrap()
        };

        let mut sim = Simulation::new(small_config(21), Box::new(LaunchThenPrune)).unwrap();
        sim.enable_decision_trace(None);
        sim.submit(job(0, 0.0, 1_000.0, 3)).unwrap();
        let report = sim.run().unwrap();
        // Observation only: the traced run's report is bit-identical.
        assert_eq!(report, baseline);

        let trace = sim.take_decision_trace().expect("trace was enabled");
        let launched = trace
            .records()
            .filter(|record| matches!(record.event, TraceEvent::CopyLaunched { .. }))
            .count() as u64;
        let killed = trace
            .records()
            .filter(|record| matches!(record.event, TraceEvent::CopyKilled { .. }))
            .count() as u64;
        // Every speculative copy beyond the 3 originals was traced at its
        // launch, and `kill_attempt` is a single choke point: policy prunes
        // and sibling-completion kills alike show up.
        assert_eq!(launched, report.total_attempts() - 3);
        assert_eq!(killed, report.total_kills());
        assert!(launched > 0);
        assert!(killed > 0);
        // The run-level `simulate` phase span closes the trace.
        let last = trace.records().last().expect("trace is non-empty");
        assert!(matches!(last.event, TraceEvent::Phase { ref name, .. } if name == "simulate"));
    }

    #[test]
    fn decision_trace_records_batch_overrides() {
        let policy = OverridingPolicy::new(vec![1, 2]);
        let mut sim = Simulation::new(small_config(13), Box::new(policy)).unwrap();
        sim.enable_decision_trace(None);
        sim.submit_all((0..4).map(|i| job(i, f64::from(i as u32), 1_000.0, 2)))
            .unwrap();
        let _report = sim.run().unwrap();
        let trace = sim.take_decision_trace().expect("trace was enabled");
        let overrides: Vec<(u64, u32)> = trace
            .records()
            .filter_map(|record| match record.event {
                TraceEvent::SubmitOverrideApplied {
                    job, extra_clones, ..
                } => Some((job, extra_clones)),
                _ => None,
            })
            .collect();
        assert_eq!(overrides, vec![(1, 2), (2, 2)]);
        // One greppable line per event in the rendered log.
        let log = trace.render_log();
        assert!(
            log.contains("submit-override job=1 extra-clones=2 reported-r=2"),
            "{log}"
        );
    }

    #[test]
    fn clone_reduces_completion_time_versus_baseline() {
        // Cloning takes the min of two Pareto draws per task, so across many
        // jobs the mean completion time must drop.
        let submit_jobs = |sim: &mut Simulation| {
            sim.submit_all((0..40).map(|i| {
                JobSpec::new(
                    JobId::new(i),
                    SimTime::from_secs(f64::from(i as u32) * 200.0),
                    10_000.0,
                    4,
                )
                .with_profile(Pareto::new(10.0, 1.2).unwrap())
            }))
            .unwrap();
        };
        let mut baseline = Simulation::new(small_config(21), Box::new(NoSpeculation)).unwrap();
        submit_jobs(&mut baseline);
        let baseline_report = baseline.run().unwrap();

        let mut cloned =
            Simulation::new(small_config(21), Box::new(CloneOnce { kill_offset: 2.0 })).unwrap();
        submit_jobs(&mut cloned);
        let cloned_report = cloned.run().unwrap();

        assert!(
            cloned_report.mean_completion_secs().unwrap()
                < baseline_report.mean_completion_secs().unwrap()
        );
    }

    #[test]
    fn stale_completions_count_separately_and_skip_the_budget() {
        // CloneOnce kills one running attempt per task at the 5 s check, so
        // each task leaves exactly one lazily-deleted completion event.
        let run_with = |max_events: u64| {
            let mut config = small_config(7);
            config.max_events = max_events;
            let mut sim =
                Simulation::new(config, Box::new(CloneOnce { kill_offset: 5.0 })).unwrap();
            sim.submit(job(0, 0.0, 1_000.0, 3)).unwrap();
            sim.run()
        };
        let report = run_with(0).unwrap();
        assert_eq!(report.events_stale, 3, "one orphaned completion per task");
        assert!(report.events_dispatched > 0);

        // The budget is measured over dispatched events only: a limit equal
        // to the dispatched count succeeds even though dispatched + stale
        // exceeds it, and one less fails.
        let dispatched = report.events_dispatched;
        let ok = run_with(dispatched).unwrap();
        assert_eq!(ok.events_dispatched, dispatched);
        assert_eq!(ok.events_stale, report.events_stale);
        assert!(matches!(
            run_with(dispatched - 1),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }

    #[test]
    fn heavy_pruning_drains_the_event_queue_completely() {
        // Satellite regression for the lazy-deletion contract: a reschedule-
        // heavy run (clone + prune every task) must pop every scheduled
        // event exactly once — dispatched or stale — and leave no residue.
        let mut sim =
            Simulation::new(small_config(7), Box::new(CloneOnce { kill_offset: 5.0 })).unwrap();
        sim.submit_all((0..10).map(|i| job(i, f64::from(i as u32) * 5.0, 10_000.0, 3)))
            .unwrap();
        let report = sim.run().unwrap();
        assert!(report.events_stale > 0);
        assert!(sim.events.is_empty());
        assert_eq!(
            report.events_dispatched + report.events_stale,
            sim.events.scheduled_total(),
            "every scheduled event is accounted exactly once"
        );
    }

    /// Profile-pure policy that counts planner invocations vs replays.
    #[derive(Debug)]
    struct MemoProbe {
        pure: bool,
        submits: std::sync::Arc<std::sync::atomic::AtomicU32>,
        replays: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }

    impl MemoProbe {
        fn new(pure: bool) -> Self {
            MemoProbe {
                pure,
                submits: Default::default(),
                replays: Default::default(),
            }
        }
    }

    impl SpeculationPolicy for MemoProbe {
        fn name(&self) -> &str {
            "memo-probe"
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            self.submits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            SubmitDecision {
                extra_clones_per_task: 1,
                reported_r: Some(1),
            }
        }

        fn submit_is_profile_pure(&self) -> bool {
            self.pure
        }

        fn on_job_submit_replayed(&mut self, _job: &JobSubmitView, decision: SubmitDecision) {
            assert_eq!(decision.reported_r, Some(1));
            self.replays
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::AtOffsets(vec![5.0])
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            Vec::new()
        }
    }

    #[test]
    fn submit_memoization_plans_each_profile_once_and_changes_nothing() {
        use std::sync::atomic::Ordering;
        let run = |pure: bool| {
            let probe = MemoProbe::new(pure);
            let submits = std::sync::Arc::clone(&probe.submits);
            let replays = std::sync::Arc::clone(&probe.replays);
            let mut sim = Simulation::new(small_config(13), Box::new(probe)).unwrap();
            // Six jobs over two distinct profiles (deadline differs).
            sim.submit_all((0..6).map(|i| {
                job(
                    i,
                    f64::from(i as u32) * 2.0,
                    if i % 2 == 0 { 400.0 } else { 600.0 },
                    2,
                )
            }))
            .unwrap();
            let report = sim.run().unwrap();
            (
                report,
                submits.load(Ordering::Relaxed),
                replays.load(Ordering::Relaxed),
            )
        };
        let (memoized, memo_submits, memo_replays) = run(true);
        let (direct, direct_submits, direct_replays) = run(false);
        assert_eq!(memo_submits, 2, "two distinct profiles planned");
        assert_eq!(memo_replays, 4, "four arrivals replayed");
        assert_eq!(direct_submits, 6);
        assert_eq!(direct_replays, 0);
        // Memoization must not change a single bit of the outcome.
        assert_eq!(memoized, direct);
    }

    /// Profile-pure policy that overrides chosen jobs through its
    /// [`BatchPlan`], counting submit vs replay calls: pins that overrides
    /// are applied, mirrored through the replay hook, and bypass the
    /// profile memo in both directions.
    #[derive(Debug)]
    struct OverridingPolicy {
        override_ids: Vec<u64>,
        override_unknown: bool,
        submits: std::sync::Arc<std::sync::atomic::AtomicU32>,
        replays: std::sync::Arc<std::sync::Mutex<Vec<(u64, u32)>>>,
    }

    impl OverridingPolicy {
        fn new(override_ids: Vec<u64>) -> Self {
            OverridingPolicy {
                override_ids,
                override_unknown: false,
                submits: Default::default(),
                replays: Default::default(),
            }
        }
    }

    impl SpeculationPolicy for OverridingPolicy {
        fn name(&self) -> &str {
            "override-probe"
        }

        fn on_job_batch(&mut self, jobs: &[JobSubmitView]) -> Result<BatchPlan, SimError> {
            let mut plan = BatchPlan::new();
            if self.override_unknown {
                return Ok(plan.with_override(JobId::new(999), SubmitDecision::default()));
            }
            for view in jobs {
                if self.override_ids.contains(&view.job.raw()) {
                    plan = plan.with_override(
                        view.job,
                        SubmitDecision {
                            extra_clones_per_task: 2,
                            reported_r: Some(2),
                        },
                    );
                }
            }
            plan.diagnostics.jobs = jobs.len() as u32;
            plan.diagnostics.overridden = plan.override_count() as u32;
            Ok(plan)
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            self.submits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            SubmitDecision::default()
        }

        fn submit_is_profile_pure(&self) -> bool {
            true
        }

        fn on_job_submit_replayed(&mut self, job: &JobSubmitView, decision: SubmitDecision) {
            self.replays
                .lock()
                .unwrap()
                .push((job.job.raw(), decision.extra_clones_per_task));
        }

        fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
            CheckSchedule::Never
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            Vec::new()
        }
    }

    #[test]
    fn batch_plan_overrides_replace_submit_and_bypass_the_memo() {
        use std::sync::atomic::Ordering;
        let policy = OverridingPolicy::new(vec![1, 2]);
        let submits = std::sync::Arc::clone(&policy.submits);
        let replays = std::sync::Arc::clone(&policy.replays);
        let mut sim = Simulation::new(small_config(13), Box::new(policy)).unwrap();
        // Four jobs sharing one profile; jobs 1 and 2 are overridden to two
        // extra clones per task, the others submit normally (zero clones).
        sim.submit_all((0..4).map(|i| job(i, f64::from(i as u32), 1_000.0, 2)))
            .unwrap();
        let report = sim.run().unwrap();

        // Job 0 planned the shared profile once; job 3 replayed it from the
        // memo; jobs 1 and 2 never reached on_job_submit (their overrides
        // won) and did not poison the memo for job 3.
        assert_eq!(submits.load(Ordering::Relaxed), 1);
        assert_eq!(
            *replays.lock().unwrap(),
            vec![(1, 2), (2, 2), (3, 0)],
            "override replays carry the override; the memo replay carries the planned decision"
        );

        for (id, metrics) in &report.jobs {
            let expected = if id.raw() == 1 || id.raw() == 2 {
                6 // 2 tasks × (1 original + 2 clones)
            } else {
                2
            };
            assert_eq!(metrics.attempts_launched, expected, "{id}");
            let expected_r = (id.raw() == 1 || id.raw() == 2).then_some(2);
            assert_eq!(metrics.chosen_r, expected_r, "{id}");
        }
    }

    #[test]
    fn batch_plan_overriding_an_unknown_job_is_rejected() {
        let policy = OverridingPolicy {
            override_unknown: true,
            ..OverridingPolicy::new(Vec::new())
        };
        let mut sim = Simulation::new(small_config(13), Box::new(policy)).unwrap();
        let err = sim.submit_all(vec![job(0, 0.0, 1_000.0, 1)]).unwrap_err();
        assert!(err.to_string().contains("unknown job job-999"), "{err}");
    }

    /// Policy that misbehaves by targeting a foreign job's task.
    #[derive(Debug)]
    struct Misbehaving;

    impl SpeculationPolicy for Misbehaving {
        fn name(&self) -> &str {
            "misbehaving"
        }

        fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
            SubmitDecision::default()
        }

        fn check_schedule(&self, job: &JobSubmitView) -> CheckSchedule {
            if job.job == JobId::new(1) {
                CheckSchedule::AtOffsets(vec![1.0])
            } else {
                CheckSchedule::Never
            }
        }

        fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
            // Task 0 belongs to job 0, not job 1.
            vec![PolicyAction::LaunchExtra {
                task: TaskId::new(0),
                count: 1,
                start_fraction: 0.0,
            }]
        }
    }

    #[test]
    fn cross_job_actions_are_rejected() {
        let mut sim = Simulation::new(small_config(9), Box::new(Misbehaving)).unwrap();
        sim.submit(job(0, 0.0, 2_000.0, 1)).unwrap();
        sim.submit(job(1, 0.0, 2_000.0, 1)).unwrap();
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::InvalidAction { .. }));
    }

    #[test]
    fn policy_name_surfaces_in_report() {
        let mut sim = Simulation::new(small_config(3), Box::new(NoSpeculation)).unwrap();
        sim.submit(job(0, 0.0, 100.0, 1)).unwrap();
        assert_eq!(sim.policy_name(), "hadoop-ns");
        let report = sim.run().unwrap();
        assert_eq!(report.policy, "hadoop-ns");
        assert!(report.events_dispatched > 0);
        assert_eq!(report.events_stale, 0);
    }
}
