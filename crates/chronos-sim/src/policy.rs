//! The speculation-policy interface between the Application Master and the
//! strategies implemented in `chronos-strategies`.
//!
//! The engine owns all runtime state; at the decision points of Section III
//! (job submission, `τ_est`, `τ_kill`, or a periodic scan for the Hadoop /
//! Mantri baselines) it builds an immutable snapshot — [`JobView`] — and asks
//! the policy for [`PolicyAction`]s. Keeping the policy behind snapshots and
//! actions keeps baselines and Chronos strategies interchangeable and makes
//! every policy unit-testable without an engine.
//!
//! # Migration: `on_job_batch` returns a [`BatchPlan`] (PR 8)
//!
//! [`SpeculationPolicy::on_job_batch`] used to be a side-effect-only hook
//! returning `Result<(), SimError>`: policies could warm their planners but
//! had no typed channel to hand batch-level decisions back to the engine.
//! It now returns a [`BatchPlan`] — per-job [`SubmitDecision`] overrides
//! plus allocator diagnostics — which the engine applies *before* the
//! per-job submit calls, so a cluster-level allocator (e.g. the
//! speculation-budget water-filling in `chronos_plan::budget`) can cap the
//! whole batch's copies. Porting an existing policy:
//!
//! * a policy with no batch-level decisions returns
//!   `Ok(BatchPlan::default())` where it returned `Ok(())` — the default
//!   trait impl already does, so policies that never overrode the hook
//!   compile unchanged;
//! * a policy that overrides a job's submission inserts the final
//!   [`SubmitDecision`] via [`BatchPlan::with_override`]; the engine then
//!   skips [`SpeculationPolicy::on_job_submit`] for that job and calls
//!   [`SpeculationPolicy::on_job_submit_replayed`] instead, so the policy
//!   can mirror its bookkeeping (overridden jobs also bypass the engine's
//!   profile-keyed submit memo: an override is per job id, not per
//!   profile);
//! * [`SpeculationPolicy::name`] now returns `&str` — it was `String`, an
//!   allocation per call for a value `Simulation::new` caches anyway;
//!   implementations return their literal directly.

use crate::error::SimError;
use crate::ids::{AttemptId, JobId, TaskId};
use crate::time::SimTime;
use chronos_core::Pareto;
use chronos_plan::SpeculationBudget;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Snapshot of a job at submission time, before any task has been created.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSubmitView {
    /// The job being submitted.
    pub job: JobId,
    /// Number of map tasks.
    pub task_count: u32,
    /// Deadline in seconds relative to submission.
    pub deadline_secs: f64,
    /// Per-unit-time VM price of this job.
    pub price: f64,
    /// The believed task-time distribution (used by optimizing policies).
    pub profile: Pareto,
}

/// What the policy decides at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SubmitDecision {
    /// Extra attempts to launch immediately alongside each task's original
    /// attempt (the Clone strategy's `r`; zero for reactive strategies).
    pub extra_clones_per_task: u32,
    /// The `r` value the policy's optimizer chose for this job, reported so
    /// the metrics can build the Figure 5 histogram. Baselines without an
    /// optimizer leave this as `None`.
    pub reported_r: Option<u32>,
}

/// Allocator diagnostics attached to a [`BatchPlan`]: what a batch-level
/// planner saw and spent. Purely informational — the engine applies only
/// the overrides — but surfaced so tools can report budget pressure.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchDiagnostics {
    /// Jobs in the planned batch.
    pub jobs: u32,
    /// Jobs whose submit decision the plan overrides.
    pub overridden: u32,
    /// The speculation budget the batch was planned under.
    pub budget: SpeculationBudget,
    /// Total copies the jobs' unconstrained optima would take.
    pub requested: u64,
    /// Copies actually granted across the batch.
    pub spent: u64,
}

/// The typed result of a batch-planning round: per-job submit overrides
/// plus [`BatchDiagnostics`]. The engine applies an override *instead of*
/// calling [`SpeculationPolicy::on_job_submit`] for that job (the policy
/// hears about it through [`SpeculationPolicy::on_job_submit_replayed`]);
/// jobs without an override submit exactly as before. An empty plan — the
/// default — leaves every decision to the per-job path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchPlan {
    overrides: BTreeMap<JobId, SubmitDecision>,
    /// Diagnostics of the planning round that produced this plan.
    pub diagnostics: BatchDiagnostics,
}

impl BatchPlan {
    /// An empty plan: no overrides, default diagnostics.
    #[must_use]
    pub fn new() -> Self {
        BatchPlan::default()
    }

    /// Adds (or replaces) the final submit decision for `job`.
    #[must_use]
    pub fn with_override(mut self, job: JobId, decision: SubmitDecision) -> Self {
        self.overrides.insert(job, decision);
        self
    }

    /// The override for `job`, if the plan carries one.
    #[must_use]
    pub fn override_for(&self, job: JobId) -> Option<SubmitDecision> {
        self.overrides.get(&job).copied()
    }

    /// Number of jobs this plan overrides.
    #[must_use]
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// True when the plan carries no overrides (the engine then takes the
    /// pure per-job submit path, memoization included).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Iterates the overrides in ascending job-id order.
    pub fn overrides(&self) -> impl Iterator<Item = (JobId, SubmitDecision)> + '_ {
        self.overrides
            .iter()
            .map(|(&job, &decision)| (job, decision))
    }
}

/// When the policy wants to be called back for a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckSchedule {
    /// Never call back (Hadoop-NS).
    Never,
    /// Call back at fixed offsets (seconds) after submission — Chronos uses
    /// `[τ_est, τ_kill]` (Clone only needs `[τ_kill]`).
    AtOffsets(Vec<f64>),
    /// Call back periodically until the job completes (Hadoop-S, LATE,
    /// Mantri style scanning).
    Periodic {
        /// Seconds after submission of the first check.
        first: f64,
        /// Seconds between subsequent checks.
        period: f64,
    },
}

/// Snapshot of one attempt at a check point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttemptView {
    /// Attempt id.
    pub attempt: AttemptId,
    /// True while the attempt occupies or waits for a container.
    pub active: bool,
    /// True once the attempt has a container and is executing.
    pub running: bool,
    /// When the attempt got its container, if it did.
    pub launched_at: Option<SimTime>,
    /// Progress score in `[0, 1]` at the check instant.
    pub progress: f64,
    /// Estimated completion instant using the estimator configured for the
    /// Application Master (`None` when no estimate is available yet).
    pub estimated_completion: Option<SimTime>,
    /// The split fraction this attempt started from (resume offset).
    pub start_fraction: f64,
    /// The Eq. 31 hand-off offset the Application Master suggests for
    /// attempts that would resume this attempt's work: current progress plus
    /// the progress expected while a replacement JVM launches.
    pub resume_offset_hint: f64,
}

/// Snapshot of one task at a check point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskView {
    /// Task id.
    pub task: TaskId,
    /// True once some attempt finished the task.
    pub completed: bool,
    /// Attempts of this task, in creation order.
    pub attempts: Vec<AttemptView>,
}

impl TaskView {
    /// The active attempt with the best progress, if any.
    #[must_use]
    pub fn best_progress_attempt(&self) -> Option<&AttemptView> {
        self.attempts.iter().filter(|a| a.active).max_by(|a, b| {
            a.progress
                .partial_cmp(&b.progress)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The active attempt with the earliest estimated completion, if any
    /// estimate exists.
    #[must_use]
    pub fn earliest_estimated_attempt(&self) -> Option<&AttemptView> {
        self.attempts
            .iter()
            .filter(|a| a.active && a.estimated_completion.is_some())
            .min_by_key(|a| a.estimated_completion)
    }

    /// Number of attempts that are still active.
    #[must_use]
    pub fn active_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.active).count()
    }
}

/// Snapshot of a job at a check point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// The job.
    pub job: JobId,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Deadline in seconds relative to submission.
    pub deadline_secs: f64,
    /// The check instant.
    pub now: SimTime,
    /// Ordinal of this check for the job (0-based), matching the offsets of
    /// [`CheckSchedule::AtOffsets`].
    pub check_index: u32,
    /// Per-task snapshots in job order.
    pub tasks: Vec<TaskView>,
    /// Number of tasks already completed.
    pub completed_tasks: usize,
    /// Mean duration (seconds, from job submission to completion) of the
    /// completed tasks; `None` when no task has finished yet. This is what
    /// Hadoop-S compares estimated completions against.
    pub mean_completed_task_duration: Option<f64>,
    /// Free container slots in the cluster at the check instant.
    pub free_slots: u64,
    /// True when some attempt (of any job) is waiting for a container —
    /// Mantri stops spawning extras when the cluster has waiting work.
    pub cluster_has_waiting_work: bool,
}

impl JobView {
    /// Seconds elapsed since the job was submitted.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        (self.now.saturating_since(self.submitted_at)).as_secs()
    }

    /// The absolute deadline instant.
    #[must_use]
    pub fn absolute_deadline(&self) -> SimTime {
        self.submitted_at + crate::time::SimDuration::from_secs(self.deadline_secs)
    }

    /// Converts an absolute instant into seconds relative to submission.
    #[must_use]
    pub fn relative_secs(&self, at: SimTime) -> f64 {
        (at.saturating_since(self.submitted_at)).as_secs()
    }

    /// Tasks that are not yet complete.
    pub fn incomplete_tasks(&self) -> impl Iterator<Item = &TaskView> {
        self.tasks.iter().filter(|t| !t.completed)
    }
}

/// An action the policy asks the Application Master to perform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Launch `count` extra attempts for `task`, starting from split
    /// fraction `start_fraction` (zero restarts from the beginning;
    /// Speculative-Resume passes the Eq. 31 offset).
    LaunchExtra {
        /// Target task.
        task: TaskId,
        /// Number of new attempts.
        count: u32,
        /// Split fraction the new attempts start from.
        start_fraction: f64,
    },
    /// Kill one attempt.
    Kill {
        /// The attempt to kill.
        attempt: AttemptId,
    },
    /// Kill every active attempt of `task` except `keep`.
    KillAllExcept {
        /// Target task.
        task: TaskId,
        /// The attempt allowed to keep running.
        keep: AttemptId,
    },
}

/// A speculation policy: the strategy-specific brain plugged into the
/// Application Master.
pub trait SpeculationPolicy: fmt::Debug + Send {
    /// Human-readable policy name, used in reports and experiment output.
    /// Borrowed: callers that need ownership copy it once (as
    /// `Simulation::new` does for the report).
    fn name(&self) -> &str;

    /// Called once per submitted batch (`Simulation::submit_all`), before
    /// any job of the batch arrives, with the submit-time views of every
    /// job in the batch. Optimizing policies use this to *batch* their
    /// planning: deduplicate the batch by job profile and solve each
    /// distinct profile once (through a `chronos-plan` planner), so the
    /// per-job [`SpeculationPolicy::on_job_submit`] calls become cache
    /// lookups instead of closed-form solves. Batch-level allocators
    /// additionally return per-job overrides in the [`BatchPlan`] (see the
    /// module docs' migration notes); the default plans nothing and
    /// overrides nothing.
    ///
    /// # Errors
    ///
    /// Implementations that fail must identify the offending job by naming
    /// its id in the error via [`SimError::with_context`]; the engine adds
    /// only batch-level context. Note the Chronos policies deliberately
    /// never fail here — per-job planning errors are memoized and resolved
    /// to the configured fallback `r` at submission, exactly as on the
    /// unbatched path.
    fn on_job_batch(&mut self, jobs: &[JobSubmitView]) -> Result<BatchPlan, SimError> {
        let _ = jobs;
        Ok(BatchPlan::default())
    }

    /// Called once when a job is submitted. The policy typically runs the
    /// Chronos optimizer here and remembers the resulting `r` for the job.
    fn on_job_submit(&mut self, job: &JobSubmitView) -> SubmitDecision;

    /// Whether [`SpeculationPolicy::on_job_submit`] and
    /// [`SpeculationPolicy::check_schedule`] are pure functions of the
    /// job's *profile* — every [`JobSubmitView`] field except the id.
    ///
    /// Returning `true` opts the policy into the engine's submit
    /// memoization: jobs sharing a profile are planned once and subsequent
    /// arrivals replay the cached `(SubmitDecision, CheckSchedule)` through
    /// [`SpeculationPolicy::on_job_submit_replayed`] — the `chronos-plan`
    /// batch dedup applied at simulation time. Policies whose submit
    /// decisions depend on the job id, on mutable state, or on anything
    /// beyond the profile must keep the default `false`.
    fn submit_is_profile_pure(&self) -> bool {
        false
    }

    /// Called instead of [`SpeculationPolicy::on_job_submit`] when the
    /// engine replays an already-decided submission: a memoized decision
    /// for a profile-pure policy (see
    /// [`SpeculationPolicy::submit_is_profile_pure`]) or a [`BatchPlan`]
    /// override. Policies that record per-job state at submission — e.g.
    /// the chosen `r` consulted at later check points — must mirror that
    /// bookkeeping here. The default does nothing.
    fn on_job_submit_replayed(&mut self, job: &JobSubmitView, decision: SubmitDecision) {
        let _ = (job, decision);
    }

    /// Which check points the policy wants for this job.
    fn check_schedule(&self, job: &JobSubmitView) -> CheckSchedule;

    /// Called at every check point with a fresh snapshot; returns the
    /// actions the Application Master should apply.
    fn on_check(&mut self, view: &JobView) -> Vec<PolicyAction>;
}

/// A policy that never speculates: the Hadoop-NS baseline and the default
/// placeholder for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoSpeculation;

impl SpeculationPolicy for NoSpeculation {
    fn name(&self) -> &str {
        "hadoop-ns"
    }

    fn on_job_submit(&mut self, _job: &JobSubmitView) -> SubmitDecision {
        SubmitDecision::default()
    }

    fn check_schedule(&self, _job: &JobSubmitView) -> CheckSchedule {
        CheckSchedule::Never
    }

    fn submit_is_profile_pure(&self) -> bool {
        // Stateless and id-blind: trivially memoizable.
        true
    }

    fn on_check(&mut self, _view: &JobView) -> Vec<PolicyAction> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt_view(id: u64, active: bool, progress: f64, est: Option<f64>) -> AttemptView {
        AttemptView {
            attempt: AttemptId::new(id),
            active,
            running: active,
            launched_at: Some(SimTime::ZERO),
            progress,
            estimated_completion: est.map(SimTime::from_secs),
            start_fraction: 0.0,
            resume_offset_hint: progress,
        }
    }

    fn task_view() -> TaskView {
        TaskView {
            task: TaskId::new(0),
            completed: false,
            attempts: vec![
                attempt_view(0, true, 0.3, Some(120.0)),
                attempt_view(1, true, 0.6, Some(90.0)),
                attempt_view(2, false, 0.9, Some(50.0)),
            ],
        }
    }

    #[test]
    fn best_progress_ignores_inactive() {
        let t = task_view();
        assert_eq!(
            t.best_progress_attempt().unwrap().attempt,
            AttemptId::new(1)
        );
        assert_eq!(t.active_attempts(), 2);
    }

    #[test]
    fn earliest_estimate_ignores_inactive_and_missing() {
        let mut t = task_view();
        t.attempts[0].estimated_completion = None;
        assert_eq!(
            t.earliest_estimated_attempt().unwrap().attempt,
            AttemptId::new(1)
        );
        // No estimates at all: None.
        t.attempts[1].estimated_completion = None;
        assert!(t.earliest_estimated_attempt().is_none());
    }

    #[test]
    fn job_view_time_helpers() {
        let view = JobView {
            job: JobId::new(0),
            submitted_at: SimTime::from_secs(100.0),
            deadline_secs: 50.0,
            now: SimTime::from_secs(130.0),
            check_index: 0,
            tasks: vec![task_view()],
            completed_tasks: 0,
            mean_completed_task_duration: None,
            free_slots: 10,
            cluster_has_waiting_work: false,
        };
        assert!((view.elapsed_secs() - 30.0).abs() < 1e-9);
        assert_eq!(view.absolute_deadline(), SimTime::from_secs(150.0));
        assert!((view.relative_secs(SimTime::from_secs(140.0)) - 40.0).abs() < 1e-9);
        assert_eq!(view.incomplete_tasks().count(), 1);
    }

    #[test]
    fn no_speculation_policy_is_inert() {
        let mut p = NoSpeculation;
        let submit = JobSubmitView {
            job: JobId::new(0),
            task_count: 5,
            deadline_secs: 100.0,
            price: 1.0,
            profile: Pareto::default(),
        };
        assert_eq!(p.name(), "hadoop-ns");
        assert_eq!(p.on_job_submit(&submit).extra_clones_per_task, 0);
        assert_eq!(p.check_schedule(&submit), CheckSchedule::Never);
        let view = JobView {
            job: JobId::new(0),
            submitted_at: SimTime::ZERO,
            deadline_secs: 100.0,
            now: SimTime::from_secs(10.0),
            check_index: 0,
            tasks: Vec::new(),
            completed_tasks: 0,
            mean_completed_task_duration: None,
            free_slots: 0,
            cluster_has_waiting_work: false,
        };
        assert!(p.on_check(&view).is_empty());
    }
}
