//! # chronos-sim
//!
//! A discrete-event MapReduce cluster simulator: the substrate on which the
//! Chronos strategies and the Hadoop/Mantri baselines are evaluated.
//!
//! The paper prototypes Chronos inside Hadoop YARN and measures it on a
//! 40-node EC2 testbed; this crate replaces that testbed with a simulator
//! that reproduces the decision-relevant parts of the stack:
//!
//! * a **cluster** of nodes with map-task containers and a FIFO
//!   ResourceManager ([`cluster`]),
//! * **jobs, tasks and attempts** with Pareto-distributed execution times,
//!   JVM launch delays, linear progress scores and resume offsets
//!   ([`job`], [`attempt`]),
//! * the **Application Master's estimators** — Hadoop's default and the
//!   JVM-aware estimator of Eq. 30, plus the Eq. 31 resume-offset estimator
//!   ([`progress`]),
//! * a **policy interface** through which Clone, Speculative-Restart,
//!   Speculative-Resume, Hadoop-S and Mantri plug in ([`policy`]),
//! * **metrics** matching the paper's evaluation axes: PoCD, cost and net
//!   utility ([`metrics`]),
//! * the deterministic **event-driven engine** tying it together
//!   ([`engine`]),
//! * and a **sharded runner** that scales workloads of independent jobs
//!   across worker threads without giving up bit-for-bit reproducibility
//!   ([`shard`]).
//!
//! # Quick example
//!
//! ```
//! use chronos_sim::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! let mut sim = Simulation::new(SimConfig::default(), Box::new(NoSpeculation))?;
//! sim.submit(JobSpec::new(JobId::new(0), SimTime::ZERO, 300.0, 10))?;
//! let report = sim.run()?;
//! println!("PoCD = {}", report.pocd());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod attempt;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod error;
pub mod event;
pub mod ids;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod progress;
pub mod shard;
pub mod time;

pub mod prelude;

pub use cluster::{ParsePlacementError, PlacementChoice, PlacementPolicy, PlacementRequest};
pub use config::{ClusterSpec, EstimatorKind, JvmModel, ShardSpec, SimConfig};
pub use engine::Simulation;
pub use error::SimError;
pub use job::{JobSpec, TaskSpec};
pub use metrics::{JobMetrics, LatencyHistogram, SimulationReport};
pub use policy::{NoSpeculation, SpeculationPolicy};
pub use shard::{shard_seed, ReplayError, ShardedRunner};
pub use time::{SimDuration, SimTime};
