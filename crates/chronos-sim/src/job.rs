//! Job and task specifications plus their runtime bookkeeping.
//!
//! A [`JobSpec`] is what a workload generator (or the trace replayer in
//! `chronos-trace`) hands to the simulator: arrival time, deadline, price,
//! the believed task-time distribution (used by policies that run the
//! Chronos optimizer at submission), and one [`TaskSpec`] per map task.
//! [`JobRuntime`] / [`TaskRuntime`] are the engine's mutable views of the
//! same entities while the simulation runs.

use crate::error::SimError;
use crate::ids::{AttemptId, JobId, TaskId};
use crate::time::SimTime;
use chronos_core::Pareto;
use serde::{Deserialize, Serialize};

/// Static description of a single map task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Relative size of this task's input split; the attempt execution time
    /// drawn from the job's distribution is multiplied by this factor.
    /// `1.0` means a nominal split (the paper's workloads use uniform
    /// splits; skewed workloads use factors above/below 1).
    pub size_factor: f64,
}

impl TaskSpec {
    /// A nominal-size task.
    #[must_use]
    pub fn nominal() -> Self {
        TaskSpec { size_factor: 1.0 }
    }

    /// A task whose split is `factor` times the nominal size.
    #[must_use]
    pub fn sized(factor: f64) -> Self {
        TaskSpec {
            size_factor: factor,
        }
    }
}

impl Default for TaskSpec {
    fn default() -> Self {
        TaskSpec::nominal()
    }
}

/// Static description of a job submitted to the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Caller-assigned job identifier (must be unique within a simulation).
    pub id: JobId,
    /// Absolute submission time.
    pub submit_time: SimTime,
    /// Deadline in seconds, relative to the submission time.
    pub deadline_secs: f64,
    /// Per-unit-time VM price charged for this job's attempts.
    pub price: f64,
    /// The task-time distribution the Application Master believes (and hands
    /// to the optimizer). The engine also uses it to draw actual execution
    /// times unless a per-run override is installed.
    pub profile: Pareto,
    /// The map tasks of the job.
    pub tasks: Vec<TaskSpec>,
}

impl JobSpec {
    /// Creates a job of `task_count` nominal tasks.
    #[must_use]
    pub fn new(id: JobId, submit_time: SimTime, deadline_secs: f64, task_count: usize) -> Self {
        JobSpec {
            id,
            submit_time,
            deadline_secs,
            price: 1.0,
            profile: Pareto::default(),
            tasks: vec![TaskSpec::nominal(); task_count],
        }
    }

    /// Sets the believed/actual task-time distribution.
    #[must_use]
    pub fn with_profile(mut self, profile: Pareto) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the per-unit-time VM price.
    #[must_use]
    pub fn with_price(mut self, price: f64) -> Self {
        self.price = price;
        self
    }

    /// Replaces the task list.
    #[must_use]
    pub fn with_tasks(mut self, tasks: Vec<TaskSpec>) -> Self {
        self.tasks = tasks;
        self
    }

    /// Number of tasks in the job.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Absolute deadline instant.
    #[must_use]
    pub fn absolute_deadline(&self) -> SimTime {
        self.submit_time + crate::time::SimDuration::from_secs(self.deadline_secs)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for empty jobs, non-positive
    /// deadlines or prices, or non-positive task size factors.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::invalid_config(format!(
                "{} has no tasks",
                self.id
            )));
        }
        if !(self.deadline_secs.is_finite() && self.deadline_secs > 0.0) {
            return Err(SimError::invalid_config(format!(
                "{} has an invalid deadline {}",
                self.id, self.deadline_secs
            )));
        }
        if !(self.price.is_finite() && self.price >= 0.0) {
            return Err(SimError::invalid_config(format!(
                "{} has an invalid price {}",
                self.id, self.price
            )));
        }
        if self
            .tasks
            .iter()
            .any(|t| !t.size_factor.is_finite() || t.size_factor <= 0.0)
        {
            return Err(SimError::invalid_config(format!(
                "{} has a task with a non-positive size factor",
                self.id
            )));
        }
        Ok(())
    }
}

/// Mutable runtime record of a task.
///
/// Attempts are not stored in a per-task `Vec`: the engine keeps all
/// attempts in one dense slab, and each task holds the head/tail of an
/// intrusive *sibling chain* threaded through
/// [`Attempt::next_sibling`](crate::attempt::Attempt::next_sibling). This
/// keeps per-task attempt iteration allocation-free in the event hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRuntime {
    /// Globally unique task id (equal to the task's slot in the engine's
    /// dense task slab).
    pub id: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Relative split size.
    pub size_factor: f64,
    /// When the task's first successful attempt finished, if any.
    pub completed_at: Option<SimTime>,
    /// Head of the attempt sibling chain (creation order), if any.
    pub first_attempt: Option<AttemptId>,
    /// Tail of the attempt sibling chain, for O(1) append.
    pub last_attempt: Option<AttemptId>,
}

impl TaskRuntime {
    /// Creates the runtime record for a task.
    #[must_use]
    pub fn new(id: TaskId, job: JobId, spec: &TaskSpec) -> Self {
        TaskRuntime {
            id,
            job,
            size_factor: spec.size_factor,
            completed_at: None,
            first_attempt: None,
            last_attempt: None,
        }
    }

    /// True once some attempt has completed the task.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.completed_at.is_some()
    }
}

/// Mutable runtime record of a job.
///
/// The engine allocates a job's tasks as one *contiguous* block of the
/// dense task slab at arrival, so the runtime stores only the first task id
/// instead of a `Vec<TaskId>`; [`JobRuntime::task_range`] recovers the full
/// id range from the spec's task count without touching the heap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRuntime {
    /// The static specification.
    pub spec: JobSpec,
    /// First id of the job's contiguous task-id block; `None` until the
    /// arrival event creates the tasks.
    pub first_task: Option<TaskId>,
    /// Number of tasks not yet completed.
    pub tasks_remaining: usize,
    /// When the last task completed, if the job is done.
    pub completed_at: Option<SimTime>,
}

impl JobRuntime {
    /// Creates the runtime record for a submitted job.
    #[must_use]
    pub fn new(spec: JobSpec) -> Self {
        let tasks_remaining = spec.task_count();
        JobRuntime {
            spec,
            first_task: None,
            tasks_remaining,
            completed_at: None,
        }
    }

    /// The job's contiguous range of raw task ids, in `index_in_job` order
    /// (empty before the arrival event has created the tasks).
    #[must_use]
    pub fn task_range(&self) -> std::ops::Range<u64> {
        match self.first_task {
            Some(first) => first.raw()..first.raw() + self.spec.task_count() as u64,
            None => 0..0,
        }
    }

    /// True once all tasks have completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Whether the job met its deadline (only meaningful once completed).
    #[must_use]
    pub fn met_deadline(&self) -> Option<bool> {
        self.completed_at
            .map(|done| done <= self.spec.absolute_deadline())
    }

    /// Records a task completion, marking the job complete when it was the
    /// last outstanding task.
    pub fn record_task_completion(&mut self, at: SimTime) {
        debug_assert!(self.tasks_remaining > 0, "more completions than tasks");
        self.tasks_remaining = self.tasks_remaining.saturating_sub(1);
        if self.tasks_remaining == 0 && self.completed_at.is_none() {
            self.completed_at = Some(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn spec() -> JobSpec {
        JobSpec::new(JobId::new(1), SimTime::from_secs(10.0), 100.0, 4)
    }

    #[test]
    fn builder_style_setters() {
        let profile = Pareto::new(5.0, 2.0).unwrap();
        let s = spec()
            .with_price(0.25)
            .with_profile(profile)
            .with_tasks(vec![TaskSpec::sized(2.0); 3]);
        assert_eq!(s.price, 0.25);
        assert_eq!(s.profile, profile);
        assert_eq!(s.task_count(), 3);
        assert_eq!(s.tasks[0].size_factor, 2.0);
    }

    #[test]
    fn absolute_deadline() {
        assert_eq!(spec().absolute_deadline(), SimTime::from_secs(110.0));
    }

    #[test]
    fn validation() {
        assert!(spec().validate().is_ok());
        assert!(spec().with_tasks(Vec::new()).validate().is_err());
        assert!(spec().with_price(-0.5).validate().is_err());
        let mut bad = spec();
        bad.deadline_secs = 0.0;
        assert!(bad.validate().is_err());
        assert!(spec()
            .with_tasks(vec![TaskSpec::sized(0.0)])
            .validate()
            .is_err());
    }

    #[test]
    fn task_runtime_tracks_completion() {
        let mut t = TaskRuntime::new(TaskId::new(0), JobId::new(1), &TaskSpec::nominal());
        assert!(!t.is_completed());
        assert_eq!(t.first_attempt, None);
        assert_eq!(t.last_attempt, None);
        t.completed_at = Some(SimTime::from_secs(30.0));
        assert!(t.is_completed());
        assert_eq!(t.size_factor, 1.0);
    }

    #[test]
    fn task_range_is_contiguous_from_first_task() {
        let mut j = JobRuntime::new(spec());
        assert_eq!(j.task_range(), 0..0);
        j.first_task = Some(TaskId::new(12));
        assert_eq!(j.task_range(), 12..16);
        assert_eq!(j.task_range().count(), j.spec.task_count());
    }

    #[test]
    fn job_runtime_completion_and_deadline() {
        let mut j = JobRuntime::new(spec());
        assert!(!j.is_completed());
        assert_eq!(j.met_deadline(), None);
        for i in 0..4 {
            assert!(!j.is_completed());
            j.record_task_completion(SimTime::from_secs(20.0 + f64::from(i)));
        }
        assert!(j.is_completed());
        assert_eq!(j.completed_at, Some(SimTime::from_secs(23.0)));
        assert_eq!(j.met_deadline(), Some(true));

        let mut late = JobRuntime::new(spec());
        let after_deadline = late.spec.absolute_deadline() + SimDuration::from_secs(1.0);
        for _ in 0..4 {
            late.record_task_completion(after_deadline);
        }
        assert_eq!(late.met_deadline(), Some(false));
    }
}
