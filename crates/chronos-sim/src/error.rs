//! Error type of the simulator crate.

use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is out of its domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// The workload refers to an unknown entity (job, task, attempt, node).
    UnknownEntity {
        /// Human-readable description.
        detail: String,
    },
    /// A policy produced an action that cannot be applied (e.g. killing an
    /// attempt of another job or launching attempts for a finished task).
    InvalidAction {
        /// Human-readable description.
        detail: String,
    },
    /// The event budget configured in `SimConfig::max_events` was exhausted.
    EventBudgetExhausted {
        /// The configured limit.
        limit: u64,
    },
    /// Two simulation reports being merged overlap (e.g. the same job id
    /// appears in both shards' reports).
    MergeConflict {
        /// Human-readable description.
        detail: String,
    },
    /// An error annotated with where in a larger operation it arose.
    /// Produced by [`SimError::with_context`] for variants that carry no
    /// free-form detail of their own (e.g. which shard exhausted its event
    /// budget); detail-carrying variants are prefixed in place instead so
    /// `matches!`-style handling keeps seeing the original variant.
    Context {
        /// Where the error arose (e.g. `shard 41`).
        context: String,
        /// The underlying error.
        source: Box<SimError>,
    },
    /// An error bubbled up from the analytical crate (e.g. while a policy
    /// runs the optimizer at job submission).
    Core(chronos_core::ChronosError),
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::UnknownEntity`].
    pub fn unknown(detail: impl Into<String>) -> Self {
        SimError::UnknownEntity {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::InvalidAction`].
    pub fn invalid_action(detail: impl Into<String>) -> Self {
        SimError::InvalidAction {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::MergeConflict`].
    pub fn merge_conflict(detail: impl Into<String>) -> Self {
        SimError::MergeConflict {
            detail: detail.into(),
        }
    }

    /// Returns this error with `context` prefixed onto its human-readable
    /// detail, for callers that know *where* in a larger operation the error
    /// arose (e.g. which spec of a batch submission failed validation, or
    /// which shard of a sharded run failed). Detail-carrying variants are
    /// prefixed in place (preserving the variant for pattern matching);
    /// everything else is wrapped in [`SimError::Context`] so the location
    /// is never lost.
    #[must_use]
    pub fn with_context(self, context: impl std::fmt::Display) -> Self {
        match self {
            SimError::InvalidConfig { detail } => SimError::InvalidConfig {
                detail: format!("{context}: {detail}"),
            },
            SimError::UnknownEntity { detail } => SimError::UnknownEntity {
                detail: format!("{context}: {detail}"),
            },
            SimError::InvalidAction { detail } => SimError::InvalidAction {
                detail: format!("{context}: {detail}"),
            },
            SimError::MergeConflict { detail } => SimError::MergeConflict {
                detail: format!("{context}: {detail}"),
            },
            other => SimError::Context {
                context: context.to_string(),
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            SimError::UnknownEntity { detail } => write!(f, "unknown entity: {detail}"),
            SimError::InvalidAction { detail } => write!(f, "invalid policy action: {detail}"),
            SimError::EventBudgetExhausted { limit } => {
                write!(f, "event budget of {limit} events exhausted")
            }
            SimError::MergeConflict { detail } => write!(f, "report merge conflict: {detail}"),
            SimError::Context { context, source } => write!(f, "{context}: {source}"),
            SimError::Core(err) => write!(f, "analysis error: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(err) => Some(err),
            SimError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<chronos_core::ChronosError> for SimError {
    fn from(err: chronos_core::ChronosError) -> Self {
        SimError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::invalid_config("x").to_string().contains("x"));
        assert!(SimError::unknown("job-9").to_string().contains("job-9"));
        assert!(SimError::invalid_action("kill")
            .to_string()
            .contains("kill"));
        assert!(SimError::EventBudgetExhausted { limit: 5 }
            .to_string()
            .contains('5'));
        assert!(SimError::merge_conflict("job-1 twice")
            .to_string()
            .contains("job-1 twice"));
    }

    #[test]
    fn with_context_prefixes_detail_variants() {
        let err = SimError::invalid_config("deadline must be positive").with_context("spec #3");
        assert_eq!(
            err.to_string(),
            "invalid configuration: spec #3: deadline must be positive"
        );
        let err = SimError::unknown("task-7").with_context("while pruning");
        assert!(err.to_string().contains("while pruning: task-7"));
        // Variants without a detail string are wrapped so the location is
        // kept; the original error stays reachable via `source()`.
        let budget = SimError::EventBudgetExhausted { limit: 9 }.with_context("shard 4");
        assert_eq!(
            budget.to_string(),
            "shard 4: event budget of 9 events exhausted"
        );
        let inner = std::error::Error::source(&budget).expect("context keeps the source");
        assert_eq!(
            inner.to_string(),
            SimError::EventBudgetExhausted { limit: 9 }.to_string()
        );
    }

    #[test]
    fn wraps_core_errors() {
        let core = chronos_core::ChronosError::invalid("beta", 0.0, "positive");
        let err: SimError = core.clone().into();
        assert!(err.to_string().contains("beta"));
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(err, SimError::Core(core));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
