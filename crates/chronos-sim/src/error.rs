//! Error type of the simulator crate.

use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is out of its domain.
    InvalidConfig {
        /// Human-readable description.
        detail: String,
    },
    /// The workload refers to an unknown entity (job, task, attempt, node).
    UnknownEntity {
        /// Human-readable description.
        detail: String,
    },
    /// A policy produced an action that cannot be applied (e.g. killing an
    /// attempt of another job or launching attempts for a finished task).
    InvalidAction {
        /// Human-readable description.
        detail: String,
    },
    /// The event budget configured in `SimConfig::max_events` was exhausted.
    EventBudgetExhausted {
        /// The configured limit.
        limit: u64,
    },
    /// An error bubbled up from the analytical crate (e.g. while a policy
    /// runs the optimizer at job submission).
    Core(chronos_core::ChronosError),
}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidConfig`].
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::UnknownEntity`].
    pub fn unknown(detail: impl Into<String>) -> Self {
        SimError::UnknownEntity {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SimError::InvalidAction`].
    pub fn invalid_action(detail: impl Into<String>) -> Self {
        SimError::InvalidAction {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            SimError::UnknownEntity { detail } => write!(f, "unknown entity: {detail}"),
            SimError::InvalidAction { detail } => write!(f, "invalid policy action: {detail}"),
            SimError::EventBudgetExhausted { limit } => {
                write!(f, "event budget of {limit} events exhausted")
            }
            SimError::Core(err) => write!(f, "analysis error: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<chronos_core::ChronosError> for SimError {
    fn from(err: chronos_core::ChronosError) -> Self {
        SimError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::invalid_config("x").to_string().contains("x"));
        assert!(SimError::unknown("job-9").to_string().contains("job-9"));
        assert!(SimError::invalid_action("kill")
            .to_string()
            .contains("kill"));
        assert!(SimError::EventBudgetExhausted { limit: 5 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn wraps_core_errors() {
        let core = chronos_core::ChronosError::invalid("beta", 0.0, "positive");
        let err: SimError = core.clone().into();
        assert!(err.to_string().contains("beta"));
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(err, SimError::Core(core));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
