//! Simulation configuration: cluster shape, JVM launch model, progress
//! reporting cadence and which completion-time estimator the Application
//! Master uses.

use crate::cluster::PlacementPolicy;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Shape of the simulated cluster.
///
/// The paper's testbed is 40 EC2 nodes with 8 vCPUs each; one map container
/// per vCPU gives the default 40 × 8 layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Map-task containers (slots) per node.
    pub slots_per_node: u32,
    /// Per-node execution slowdown factors (≥ 1). Attempts placed on node
    /// `i` have their processing time multiplied by `slowdowns[i]`. An empty
    /// vector means every node runs at nominal speed, which is what the
    /// closed-form validation experiments use. Populated by the contention
    /// model in `chronos-trace` for the realistic runs.
    pub slowdowns: Vec<f64>,
    /// How the ResourceManager places attempts on nodes. Defaults to
    /// [`PlacementPolicy::MostFree`], the pre-placement-layer behavior;
    /// the policy's hand-written serde impl treats a missing field as that
    /// default, so configurations serialized before this field existed
    /// keep their exact semantics.
    pub placement: PlacementPolicy,
}

impl ClusterSpec {
    /// A cluster of `nodes × slots_per_node` homogeneous containers.
    #[must_use]
    pub fn homogeneous(nodes: u32, slots_per_node: u32) -> Self {
        ClusterSpec {
            nodes,
            slots_per_node,
            slowdowns: Vec::new(),
            placement: PlacementPolicy::MostFree,
        }
    }

    /// Returns a copy with the given placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Total container count.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.slots_per_node)
    }

    /// The slowdown factor of a node (1.0 when unspecified).
    #[must_use]
    pub fn slowdown_of(&self, node_index: u32) -> f64 {
        self.slowdowns
            .get(node_index as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the cluster has no containers
    /// or any slowdown factor is below 1 or not finite.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.nodes == 0 || self.slots_per_node == 0 {
            return Err(SimError::invalid_config(
                "cluster must have at least one node and one slot per node",
            ));
        }
        if self.slowdowns.iter().any(|s| !s.is_finite() || *s < 1.0) {
            return Err(SimError::invalid_config(
                "node slowdown factors must be finite and >= 1",
            ));
        }
        if !self.slowdowns.is_empty() && self.slowdowns.len() != self.nodes as usize {
            return Err(SimError::invalid_config(
                "slowdown vector length must match the node count (or be empty)",
            ));
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    /// The paper's 40-node × 8-slot testbed.
    fn default() -> Self {
        ClusterSpec::homogeneous(40, 8)
    }
}

/// JVM (container) launch-time model.
///
/// The paper's improved completion-time estimator exists precisely because
/// JVM startup is not negligible in contended clusters; the simulator models
/// it as a uniform delay in `[min_secs, max_secs]` between container
/// assignment and the first byte of useful work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JvmModel {
    /// Minimum launch delay in seconds.
    pub min_secs: f64,
    /// Maximum launch delay in seconds.
    pub max_secs: f64,
}

impl JvmModel {
    /// A fixed (deterministic) launch delay.
    #[must_use]
    pub fn fixed(secs: f64) -> Self {
        JvmModel {
            min_secs: secs,
            max_secs: secs,
        }
    }

    /// No launch delay at all; used when validating the closed forms, which
    /// ignore JVM startup.
    #[must_use]
    pub fn disabled() -> Self {
        JvmModel::fixed(0.0)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative, non-finite or
    /// reversed bounds.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.min_secs.is_finite() && self.max_secs.is_finite())
            || self.min_secs < 0.0
            || self.max_secs < self.min_secs
        {
            return Err(SimError::invalid_config(
                "JVM launch delay bounds must be finite, non-negative and ordered",
            ));
        }
        Ok(())
    }
}

impl Default for JvmModel {
    /// A 1–3 second launch window, in line with the contended-testbed
    /// observations that motivated Eq. 30.
    fn default() -> Self {
        JvmModel {
            min_secs: 1.0,
            max_secs: 3.0,
        }
    }
}

/// Sharded-execution knobs for [`crate::shard::ShardedRunner`].
///
/// A plain [`crate::Simulation`] ignores these; the sharded runner uses them
/// to decide how many independent per-shard simulations the workload is
/// partitioned into and how many OS threads execute them. The two knobs are
/// deliberately separate: **`shards` shapes the result** (each shard has its
/// own deterministically derived RNG stream), while **`workers` only shapes
/// the wall-clock** — any worker count produces bit-identical merged reports
/// for a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Number of shards the workload is partitioned into. `0` resolves to
    /// [`ShardSpec::DEFAULT_SHARDS`] — a fixed constant, never the machine's
    /// core count, so auto-configured runs stay reproducible across hosts.
    pub shards: u32,
    /// Worker threads executing shards. `0` resolves to the machine's
    /// available parallelism, clamped to the shard count.
    pub workers: u32,
}

impl ShardSpec {
    /// Shard count used when `shards == 0`. A fixed constant (not the core
    /// count) so that the default partitioning — and therefore the merged
    /// metrics — do not depend on the machine running the simulation.
    pub const DEFAULT_SHARDS: u32 = 16;

    /// Run everything in one shard on one thread (the degenerate layout that
    /// behaves exactly like a plain [`crate::Simulation`] modulo the derived
    /// shard seed).
    #[must_use]
    pub fn single() -> Self {
        ShardSpec {
            shards: 1,
            workers: 1,
        }
    }

    /// `shards` shards executed by `workers` threads.
    #[must_use]
    pub fn new(shards: u32, workers: u32) -> Self {
        ShardSpec { shards, workers }
    }

    /// The effective shard count (resolving the `0` = auto convention).
    #[must_use]
    pub fn resolved_shards(&self) -> u32 {
        if self.shards == 0 {
            Self::DEFAULT_SHARDS
        } else {
            self.shards
        }
    }

    /// The requested worker count before any shard-count clamping: the
    /// explicit value, or the machine's available parallelism when `0`.
    /// This is what the chunked runner uses, since there the number of
    /// shards is the (unknown ahead of time) number of chunks, not
    /// [`ShardSpec::resolved_shards`].
    #[must_use]
    pub fn requested_workers(&self) -> u32 {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| u32::try_from(n.get()).unwrap_or(u32::MAX))
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.max(1)
    }

    /// The effective worker count for a run over
    /// [`ShardSpec::resolved_shards`] shards: [`ShardSpec::requested_workers`]
    /// clamped to the shard count (more workers than shards would only
    /// idle).
    #[must_use]
    pub fn resolved_workers(&self) -> u32 {
        self.requested_workers().clamp(1, self.resolved_shards())
    }

    /// Validates the specification. All values are currently valid (zero
    /// means "auto"), but the hook keeps the config surface uniform and
    /// future-proof.
    ///
    /// # Errors
    ///
    /// Currently never fails; kept fallible for parity with the sibling
    /// config types.
    pub fn validate(&self) -> Result<(), SimError> {
        Ok(())
    }
}

impl Default for ShardSpec {
    /// Auto everything: a fixed default shard count, workers from the
    /// machine's parallelism.
    fn default() -> Self {
        ShardSpec {
            shards: 0,
            workers: 0,
        }
    }
}

/// Which completion-time estimator the Application Master exposes to
/// policies (Section VI.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EstimatorKind {
    /// Hadoop's default estimator: elapsed time divided by progress score,
    /// which ignores JVM launch time and over-estimates badly early on.
    HadoopDefault,
    /// The Chronos estimator of Eq. 30, which separates launch overhead from
    /// processing rate using the first progress report.
    #[default]
    ChronosJvmAware,
}

/// Top-level simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster shape and per-node slowdowns.
    pub cluster: ClusterSpec,
    /// JVM launch delay model.
    pub jvm: JvmModel,
    /// Which estimator the AM uses when building policy views.
    pub estimator: EstimatorKind,
    /// Interval between task progress reports, seconds. The first report of
    /// an attempt defines `t_FP` in Eq. 30.
    pub progress_report_interval_secs: f64,
    /// RNG seed; identical seeds give identical simulations. The sharded
    /// runner derives per-shard seeds from this value via splitmix64 (see
    /// [`crate::shard::shard_seed`]).
    pub seed: u64,
    /// Safety valve: the simulation aborts after this many events, guarding
    /// against runaway policies. `0` disables the limit. The limit applies
    /// per shard when running under the sharded runner.
    pub max_events: u64,
    /// Shard/worker layout used by [`crate::shard::ShardedRunner`]; ignored
    /// by a plain [`crate::Simulation`].
    pub sharding: ShardSpec,
}

impl SimConfig {
    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any component is invalid or the
    /// progress-report interval is not positive.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cluster.validate()?;
        self.jvm.validate()?;
        self.sharding.validate()?;
        if !(self.progress_report_interval_secs.is_finite()
            && self.progress_report_interval_secs > 0.0)
        {
            return Err(SimError::invalid_config(
                "progress report interval must be a positive number of seconds",
            ));
        }
        Ok(())
    }

    /// Configuration used to validate the closed-form analysis: no JVM
    /// delay, a cluster large enough that containers are never the
    /// bottleneck, and the Chronos estimator.
    #[must_use]
    pub fn analysis_validation(seed: u64) -> Self {
        SimConfig {
            cluster: ClusterSpec::homogeneous(1_000, 8),
            jvm: JvmModel::disabled(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 1.0,
            seed,
            max_events: 0,
            sharding: ShardSpec::default(),
        }
    }

    /// Returns a copy with the given shard/worker layout.
    #[must_use]
    pub fn with_sharding(mut self, sharding: ShardSpec) -> Self {
        self.sharding = sharding;
        self
    }

    /// Returns a copy with the given placement policy on its cluster.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.cluster.placement = placement;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterSpec::default(),
            jvm: JvmModel::default(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 3.0,
            seed: 1,
            max_events: 0,
            sharding: ShardSpec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let c = ClusterSpec::default();
        assert_eq!(c.nodes, 40);
        assert_eq!(c.slots_per_node, 8);
        assert_eq!(c.total_slots(), 320);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cluster_validation() {
        assert!(ClusterSpec::homogeneous(0, 8).validate().is_err());
        assert!(ClusterSpec::homogeneous(4, 0).validate().is_err());
        let mut c = ClusterSpec::homogeneous(2, 2);
        c.slowdowns = vec![1.0, 0.5];
        assert!(c.validate().is_err());
        c.slowdowns = vec![1.0];
        assert!(c.validate().is_err());
        c.slowdowns = vec![1.0, 2.0];
        assert!(c.validate().is_ok());
        assert_eq!(c.slowdown_of(1), 2.0);
        assert_eq!(c.slowdown_of(7), 1.0);
    }

    #[test]
    fn jvm_model_validation() {
        assert!(JvmModel::default().validate().is_ok());
        assert!(JvmModel::fixed(2.0).validate().is_ok());
        assert!(JvmModel::disabled().validate().is_ok());
        assert!(JvmModel {
            min_secs: 3.0,
            max_secs: 1.0
        }
        .validate()
        .is_err());
        assert!(JvmModel {
            min_secs: -1.0,
            max_secs: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sim_config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        let cfg = SimConfig {
            progress_report_interval_secs: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let validation = SimConfig::analysis_validation(7);
        assert!(validation.validate().is_ok());
        assert_eq!(validation.jvm, JvmModel::disabled());
        assert_eq!(validation.seed, 7);
    }

    #[test]
    fn placement_field_defaults_and_round_trips() {
        // Specs serialized before the placement layer existed carry no
        // placement field; they must deserialize to the pre-refactor
        // behavior.
        let legacy = r#"{"nodes":2,"slots_per_node":4,"slowdowns":[]}"#;
        let spec: ClusterSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec.placement, PlacementPolicy::MostFree);
        assert!(spec.validate().is_ok());

        let spec = spec.with_placement(PlacementPolicy::DeadlineAware);
        let round: ClusterSpec =
            serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(round, spec);

        let config = SimConfig::default().with_placement(PlacementPolicy::BinPack);
        assert_eq!(config.cluster.placement, PlacementPolicy::BinPack);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn estimator_default_is_chronos() {
        assert_eq!(EstimatorKind::default(), EstimatorKind::ChronosJvmAware);
    }

    #[test]
    fn shard_spec_resolution() {
        let auto = ShardSpec::default();
        assert_eq!(auto.resolved_shards(), ShardSpec::DEFAULT_SHARDS);
        assert!(auto.resolved_workers() >= 1);
        assert!(auto.resolved_workers() <= auto.resolved_shards());

        let single = ShardSpec::single();
        assert_eq!(single.resolved_shards(), 1);
        assert_eq!(single.resolved_workers(), 1);

        // Workers are clamped to the shard count: extra threads would idle.
        // The chunked runner asks for the unclamped request instead, since
        // its shard count is the chunk count.
        let oversubscribed = ShardSpec::new(4, 64);
        assert_eq!(oversubscribed.resolved_shards(), 4);
        assert_eq!(oversubscribed.resolved_workers(), 4);
        assert_eq!(oversubscribed.requested_workers(), 64);

        // Auto workers on an explicit shard count stay within it too.
        let capped = ShardSpec::new(2, 0);
        assert!(capped.resolved_workers() >= 1);
        assert!(capped.resolved_workers() <= 2);
        assert!(ShardSpec::default().validate().is_ok());
    }

    #[test]
    fn with_sharding_sets_layout() {
        let config = SimConfig::default().with_sharding(ShardSpec::new(8, 2));
        assert_eq!(config.sharding.shards, 8);
        assert_eq!(config.sharding.workers, 2);
        assert!(config.validate().is_ok());
    }
}
