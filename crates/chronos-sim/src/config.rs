//! Simulation configuration: cluster shape, JVM launch model, progress
//! reporting cadence and which completion-time estimator the Application
//! Master uses.

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Shape of the simulated cluster.
///
/// The paper's testbed is 40 EC2 nodes with 8 vCPUs each; one map container
/// per vCPU gives the default 40 × 8 layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// Map-task containers (slots) per node.
    pub slots_per_node: u32,
    /// Per-node execution slowdown factors (≥ 1). Attempts placed on node
    /// `i` have their processing time multiplied by `slowdowns[i]`. An empty
    /// vector means every node runs at nominal speed, which is what the
    /// closed-form validation experiments use. Populated by the contention
    /// model in `chronos-trace` for the realistic runs.
    pub slowdowns: Vec<f64>,
}

impl ClusterSpec {
    /// A cluster of `nodes × slots_per_node` homogeneous containers.
    #[must_use]
    pub fn homogeneous(nodes: u32, slots_per_node: u32) -> Self {
        ClusterSpec {
            nodes,
            slots_per_node,
            slowdowns: Vec::new(),
        }
    }

    /// Total container count.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.slots_per_node)
    }

    /// The slowdown factor of a node (1.0 when unspecified).
    #[must_use]
    pub fn slowdown_of(&self, node_index: u32) -> f64 {
        self.slowdowns
            .get(node_index as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the cluster has no containers
    /// or any slowdown factor is below 1 or not finite.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.nodes == 0 || self.slots_per_node == 0 {
            return Err(SimError::invalid_config(
                "cluster must have at least one node and one slot per node",
            ));
        }
        if self.slowdowns.iter().any(|s| !s.is_finite() || *s < 1.0) {
            return Err(SimError::invalid_config(
                "node slowdown factors must be finite and >= 1",
            ));
        }
        if !self.slowdowns.is_empty() && self.slowdowns.len() != self.nodes as usize {
            return Err(SimError::invalid_config(
                "slowdown vector length must match the node count (or be empty)",
            ));
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    /// The paper's 40-node × 8-slot testbed.
    fn default() -> Self {
        ClusterSpec::homogeneous(40, 8)
    }
}

/// JVM (container) launch-time model.
///
/// The paper's improved completion-time estimator exists precisely because
/// JVM startup is not negligible in contended clusters; the simulator models
/// it as a uniform delay in `[min_secs, max_secs]` between container
/// assignment and the first byte of useful work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JvmModel {
    /// Minimum launch delay in seconds.
    pub min_secs: f64,
    /// Maximum launch delay in seconds.
    pub max_secs: f64,
}

impl JvmModel {
    /// A fixed (deterministic) launch delay.
    #[must_use]
    pub fn fixed(secs: f64) -> Self {
        JvmModel {
            min_secs: secs,
            max_secs: secs,
        }
    }

    /// No launch delay at all; used when validating the closed forms, which
    /// ignore JVM startup.
    #[must_use]
    pub fn disabled() -> Self {
        JvmModel::fixed(0.0)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative, non-finite or
    /// reversed bounds.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.min_secs.is_finite() && self.max_secs.is_finite())
            || self.min_secs < 0.0
            || self.max_secs < self.min_secs
        {
            return Err(SimError::invalid_config(
                "JVM launch delay bounds must be finite, non-negative and ordered",
            ));
        }
        Ok(())
    }
}

impl Default for JvmModel {
    /// A 1–3 second launch window, in line with the contended-testbed
    /// observations that motivated Eq. 30.
    fn default() -> Self {
        JvmModel {
            min_secs: 1.0,
            max_secs: 3.0,
        }
    }
}

/// Which completion-time estimator the Application Master exposes to
/// policies (Section VI.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EstimatorKind {
    /// Hadoop's default estimator: elapsed time divided by progress score,
    /// which ignores JVM launch time and over-estimates badly early on.
    HadoopDefault,
    /// The Chronos estimator of Eq. 30, which separates launch overhead from
    /// processing rate using the first progress report.
    #[default]
    ChronosJvmAware,
}

/// Top-level simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster shape and per-node slowdowns.
    pub cluster: ClusterSpec,
    /// JVM launch delay model.
    pub jvm: JvmModel,
    /// Which estimator the AM uses when building policy views.
    pub estimator: EstimatorKind,
    /// Interval between task progress reports, seconds. The first report of
    /// an attempt defines `t_FP` in Eq. 30.
    pub progress_report_interval_secs: f64,
    /// RNG seed; identical seeds give identical simulations.
    pub seed: u64,
    /// Safety valve: the simulation aborts after this many events, guarding
    /// against runaway policies. `0` disables the limit.
    pub max_events: u64,
}

impl SimConfig {
    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any component is invalid or the
    /// progress-report interval is not positive.
    pub fn validate(&self) -> Result<(), SimError> {
        self.cluster.validate()?;
        self.jvm.validate()?;
        if !(self.progress_report_interval_secs.is_finite()
            && self.progress_report_interval_secs > 0.0)
        {
            return Err(SimError::invalid_config(
                "progress report interval must be a positive number of seconds",
            ));
        }
        Ok(())
    }

    /// Configuration used to validate the closed-form analysis: no JVM
    /// delay, a cluster large enough that containers are never the
    /// bottleneck, and the Chronos estimator.
    #[must_use]
    pub fn analysis_validation(seed: u64) -> Self {
        SimConfig {
            cluster: ClusterSpec::homogeneous(1_000, 8),
            jvm: JvmModel::disabled(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 1.0,
            seed,
            max_events: 0,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterSpec::default(),
            jvm: JvmModel::default(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 3.0,
            seed: 1,
            max_events: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let c = ClusterSpec::default();
        assert_eq!(c.nodes, 40);
        assert_eq!(c.slots_per_node, 8);
        assert_eq!(c.total_slots(), 320);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cluster_validation() {
        assert!(ClusterSpec::homogeneous(0, 8).validate().is_err());
        assert!(ClusterSpec::homogeneous(4, 0).validate().is_err());
        let mut c = ClusterSpec::homogeneous(2, 2);
        c.slowdowns = vec![1.0, 0.5];
        assert!(c.validate().is_err());
        c.slowdowns = vec![1.0];
        assert!(c.validate().is_err());
        c.slowdowns = vec![1.0, 2.0];
        assert!(c.validate().is_ok());
        assert_eq!(c.slowdown_of(1), 2.0);
        assert_eq!(c.slowdown_of(7), 1.0);
    }

    #[test]
    fn jvm_model_validation() {
        assert!(JvmModel::default().validate().is_ok());
        assert!(JvmModel::fixed(2.0).validate().is_ok());
        assert!(JvmModel::disabled().validate().is_ok());
        assert!(JvmModel {
            min_secs: 3.0,
            max_secs: 1.0
        }
        .validate()
        .is_err());
        assert!(JvmModel {
            min_secs: -1.0,
            max_secs: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sim_config_validation() {
        assert!(SimConfig::default().validate().is_ok());
        let cfg = SimConfig {
            progress_report_interval_secs: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let validation = SimConfig::analysis_validation(7);
        assert!(validation.validate().is_ok());
        assert_eq!(validation.jvm, JvmModel::disabled());
        assert_eq!(validation.seed, 7);
    }

    #[test]
    fn estimator_default_is_chronos() {
        assert_eq!(EstimatorKind::default(), EstimatorKind::ChronosJvmAware);
    }
}
