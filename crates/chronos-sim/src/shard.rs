//! Sharded multi-threaded execution of independent-job workloads.
//!
//! The Chronos evaluation validates its closed forms against trace-driven
//! simulations; pushing those to multi-million-job traces needs more than
//! one core, but must not give up the bit-for-bit reproducibility the test
//! pyramid is built on. This module threads that needle by making the
//! *partitioning* part of the experiment definition and the *thread pool* a
//! pure wall-clock optimization:
//!
//! # The determinism contract
//!
//! 1. **Shards are the unit of randomness.** A workload is split into
//!    `N = SimConfig::sharding.resolved_shards()` shards (or one shard per
//!    chunk when streaming). Shard `i` runs an ordinary [`Simulation`] whose
//!    seed is [`shard_seed`]`(config.seed, i)` — a splitmix64 mix of the
//!    base seed and the shard index. Because the mix's finalizer is a
//!    bijection on `u64`, distinct shard indices can never collide for a
//!    fixed base seed, so shards draw from provably disjoint deterministic
//!    RNG streams.
//! 2. **Workers are invisible.** Worker threads pull shard indices from a
//!    shared queue, so which thread runs which shard (and in what order) is
//!    scheduling-dependent — but shard inputs, seeds and simulations do not
//!    depend on the worker, and per-shard reports are merged **in shard
//!    index order** after all workers finish. Together with
//!    [`SimulationReport::merge`] being associative and commutative, the
//!    merged report is bit-identical for 1, 2 or 64 workers.
//! 3. **Changing the shard count is a different experiment.** Re-sharding
//!    re-partitions jobs over different RNG streams, so reports for
//!    different shard counts legitimately differ — exactly like changing
//!    the seed. Reproducibility is per `(workload, seed, shard count)`.
//!
//! # Example
//!
//! ```
//! use chronos_sim::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! let config = SimConfig::default().with_sharding(ShardSpec::new(4, 2));
//! let runner = ShardedRunner::new(config)?;
//! let jobs: Vec<JobSpec> = (0..100)
//!     .map(|i| JobSpec::new(JobId::new(i), SimTime::from_secs(i as f64), 300.0, 4))
//!     .collect();
//! let report = runner.run(jobs, |_shard| Box::new(NoSpeculation))?;
//! assert_eq!(report.job_count(), 100);
//! # Ok(())
//! # }
//! ```

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::error::SimError;
use crate::job::JobSpec;
use crate::metrics::SimulationReport;
use crate::policy::SpeculationPolicy;
use chronos_obs::{DecisionTrace, TraceEvent};
use chronos_plan::{CacheStats, PlanCache};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The splitmix64 output mix (Steele, Lea & Flood; the same finalizer the
/// reference `SplitMix64` generator applies to its counter). A bijection on
/// `u64` with strong avalanche behaviour, which is what makes the per-shard
/// seed derivation collision-free.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed of shard `shard` from the workload's base seed.
///
/// Defined as `splitmix64(base ^ splitmix64(shard))`: the inner mix spreads
/// consecutive shard indices across the whole `u64` space before they touch
/// the base seed, and the outer mix decorrelates the result from `base`.
/// For a fixed `base` the map `shard ↦ seed` is injective (both mixes are
/// bijections and XOR by a constant is a bijection), so two shards of one
/// run can never share a seed.
#[must_use]
pub fn shard_seed(base: u64, shard: u64) -> u64 {
    splitmix64(base ^ splitmix64(shard))
}

/// Error of a fallible chunked replay ([`ShardedRunner::run_chunked_fallible`]):
/// either the chunk *source* failed (a trace file stopped parsing, a
/// generator hit an invalid configuration) or the *simulation* of a shard
/// did. Source errors take precedence — once the source fails, any report
/// assembled from the prefix is discarded, so a truncated trace can never
/// masquerade as a completed replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError<E> {
    /// The chunk source yielded an error instead of a chunk.
    Source(E),
    /// A shard simulation (or the report merge) failed.
    Sim(SimError),
}

impl<E: std::fmt::Display> std::fmt::Display for ReplayError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Source(err) => write!(f, "chunk source error: {err}"),
            ReplayError::Sim(err) => write!(f, "{err}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ReplayError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Source(err) => Some(err),
            ReplayError::Sim(err) => Some(err),
        }
    }
}

/// Builds the policy instance for one shard. Each shard needs its own
/// instance because policies are stateful (`&mut self` callbacks); the
/// factory receives the shard index so heterogeneous-per-shard setups are
/// possible, though most callers ignore it.
pub type PolicyFactory<'a> = dyn Fn(u64) -> Box<dyn SpeculationPolicy> + Sync + 'a;

/// Runs a workload of independent jobs as per-shard [`Simulation`]s across a
/// fixed pool of worker threads, merging the per-shard reports into one
/// aggregate [`SimulationReport`].
///
/// See the [module docs](self) for the determinism contract. The shard and
/// worker counts come from [`SimConfig::sharding`].
#[derive(Debug, Clone)]
pub struct ShardedRunner {
    config: SimConfig,
}

impl ShardedRunner {
    /// Creates a runner for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(ShardedRunner { config })
    }

    /// The configuration shards run under (per-shard seeds are derived from
    /// its `seed`; its `sharding` decides the layout).
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Partitions `jobs` round-robin over the configured shard count and
    /// runs them to completion.
    ///
    /// Round-robin (job `i` goes to shard `i % shards`) keeps arrival-time
    /// ordering roughly balanced across shards for the common case of
    /// arrival-sorted workloads. The partition depends only on the job
    /// order and the shard count, never on the worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error in shard-index order
    /// (deterministic even when several shards fail), or a
    /// [`SimError::MergeConflict`] when two shards report the same job id
    /// (possible only if the input contained duplicates).
    pub fn run<F>(&self, jobs: Vec<JobSpec>, build_policy: F) -> Result<SimulationReport, SimError>
    where
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let shards = self.config.sharding.resolved_shards() as usize;
        let mut partitions: Vec<Vec<JobSpec>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            partitions.push(Vec::new());
        }
        for (index, job) in jobs.into_iter().enumerate() {
            partitions[index % shards].push(job);
        }
        // The shard count is known here, so the worker count can honour
        // ShardSpec's documented clamp (extra threads would only idle).
        let workers = self.config.sharding.resolved_workers() as usize;
        self.run_chunks_with(workers, partitions, &build_policy)
    }

    /// Runs a workload delivered as chunks, one shard per chunk.
    ///
    /// This is the streaming entry point: the iterator is pulled lazily
    /// (under a lock, so chunk `k` is always the iterator's `k`-th yield no
    /// matter which worker pulls it), which lets generators like
    /// `chronos-trace`'s chunked workload stream produce million-job traces
    /// without ever materializing the whole spec list. The configured shard
    /// count is ignored — the chunk structure *is* the shard structure —
    /// and the worker count is therefore taken unclamped
    /// ([`crate::config::ShardSpec::requested_workers`]): a 64-chunk stream
    /// under a `ShardSpec::new(2, 8)` config still runs on 8 threads.
    /// Workers beyond the actual chunk count simply find the queue empty
    /// and exit.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error in shard-index order, or a
    /// [`SimError::MergeConflict`] on duplicate job ids across chunks.
    pub fn run_chunked<I, F>(
        &self,
        chunks: I,
        build_policy: F,
    ) -> Result<SimulationReport, SimError>
    where
        I: IntoIterator<Item = Vec<JobSpec>>,
        I::IntoIter: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let workers = self.config.sharding.requested_workers() as usize;
        self.run_chunks_with(workers, chunks, &build_policy)
    }

    /// The planner-backed variant of [`ShardedRunner::run_chunked`]: every
    /// shard's policy is built around one shared `chronos-plan`
    /// [`PlanCache`], so a job profile solved by any shard is a cache hit
    /// in every other shard — across the whole replay, each distinct
    /// profile pays the closed-form optimization exactly once.
    ///
    /// The factory receives the shard index and a handle to the shared
    /// cache (clone it into the policy). Returns the merged report together
    /// with the [`CacheStats`] delta accumulated by this run; the report
    /// itself is **bit-identical** to the unplanned path — memoization only
    /// changes where the time goes, never a decision.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRunner::run_chunked`].
    pub fn run_chunked_planned<I, F>(
        &self,
        cache: &Arc<PlanCache>,
        chunks: I,
        build_policy: F,
    ) -> Result<(SimulationReport, CacheStats), SimError>
    where
        I: IntoIterator<Item = Vec<JobSpec>>,
        I::IntoIter: Send,
        F: Fn(u64, Arc<PlanCache>) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let before = cache.stats();
        let report = self.run_chunked(chunks, |shard| build_policy(shard, Arc::clone(cache)))?;
        Ok((report, cache.stats().since(&before)))
    }

    /// The observed variant of [`ShardedRunner::run_chunked`]: every shard
    /// records a [`DecisionTrace`] (bounded to `trace_capacity` records
    /// per shard, `None` = unbounded), and the per-shard traces are merged
    /// in **shard-index order** — exactly like the reports — so the
    /// returned trace, its rendered decision log and its digest are
    /// bit-identical no matter how many worker threads ran the shards.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRunner::run_chunked`].
    pub fn run_chunked_observed<I, F>(
        &self,
        chunks: I,
        build_policy: F,
        trace_capacity: Option<usize>,
    ) -> Result<(SimulationReport, DecisionTrace), SimError>
    where
        I: IntoIterator<Item = Vec<JobSpec>>,
        I::IntoIter: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let workers = self.config.sharding.requested_workers() as usize;
        let (report, trace) =
            self.run_chunks_observed_with(workers, chunks, &build_policy, Some(trace_capacity))?;
        Ok((report, trace.unwrap_or_default()))
    }

    /// The observed variant of [`ShardedRunner::run_chunked_fallible`];
    /// see [`ShardedRunner::run_chunked_observed`] for the trace contract.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRunner::run_chunked_fallible`].
    pub fn run_chunked_fallible_observed<I, E, F>(
        &self,
        chunks: I,
        build_policy: F,
        trace_capacity: Option<usize>,
    ) -> Result<(SimulationReport, DecisionTrace), ReplayError<E>>
    where
        I: IntoIterator<Item = Result<Vec<JobSpec>, E>>,
        I::IntoIter: Send,
        E: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let source_error: Mutex<Option<E>> = Mutex::new(None);
        let adapter = FallibleChunks {
            inner: chunks.into_iter(),
            slot: &source_error,
            done: false,
        };
        let workers = self.config.sharding.requested_workers() as usize;
        let outcome =
            self.run_chunks_observed_with(workers, adapter, &build_policy, Some(trace_capacity));
        if let Some(err) = source_error
            .into_inner()
            .expect("source error lock poisoned")
        {
            return Err(ReplayError::Source(err));
        }
        outcome
            .map(|(report, trace)| (report, trace.unwrap_or_default()))
            .map_err(ReplayError::Sim)
    }

    /// The observed variant of
    /// [`ShardedRunner::run_chunked_fallible_planned`]: shared plan cache,
    /// cache-stats delta *and* merged decision trace, with an aggregate
    /// [`TraceEvent::PlanCacheReport`] appended. The cache totals are
    /// worker-count-invariant for the single-flight cache (each distinct
    /// profile misses exactly once), so the appended event — like the rest
    /// of the trace — keeps the digest invariant.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRunner::run_chunked_fallible`].
    pub fn run_chunked_fallible_planned_observed<I, E, F>(
        &self,
        cache: &Arc<PlanCache>,
        chunks: I,
        build_policy: F,
        trace_capacity: Option<usize>,
    ) -> Result<(SimulationReport, CacheStats, DecisionTrace), ReplayError<E>>
    where
        I: IntoIterator<Item = Result<Vec<JobSpec>, E>>,
        I::IntoIter: Send,
        E: Send,
        F: Fn(u64, Arc<PlanCache>) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let before = cache.stats();
        let (report, mut trace) = self.run_chunked_fallible_observed(
            chunks,
            |shard| build_policy(shard, Arc::clone(cache)),
            trace_capacity,
        )?;
        let stats = cache.stats().since(&before);
        trace.record(
            report.ended_at.as_micros(),
            TraceEvent::PlanCacheReport {
                hits: stats.hits,
                misses: stats.misses,
                evictions: stats.evictions,
                entries: stats.entries,
            },
        );
        Ok((report, stats, trace))
    }

    /// The planner-backed variant of
    /// [`ShardedRunner::run_chunked_fallible`]; see
    /// [`ShardedRunner::run_chunked_planned`] for the cache contract.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRunner::run_chunked_fallible`].
    pub fn run_chunked_fallible_planned<I, E, F>(
        &self,
        cache: &Arc<PlanCache>,
        chunks: I,
        build_policy: F,
    ) -> Result<(SimulationReport, CacheStats), ReplayError<E>>
    where
        I: IntoIterator<Item = Result<Vec<JobSpec>, E>>,
        I::IntoIter: Send,
        E: Send,
        F: Fn(u64, Arc<PlanCache>) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let before = cache.stats();
        let report =
            self.run_chunked_fallible(chunks, |shard| build_policy(shard, Arc::clone(cache)))?;
        Ok((report, cache.stats().since(&before)))
    }

    /// Runs a workload delivered as *fallible* chunks — the trace-replay
    /// entry point, fed by sources that can fail mid-stream, like
    /// `chronos-trace`'s file-backed `TraceStream`.
    ///
    /// Chunk-to-shard mapping, worker semantics and determinism are those
    /// of [`ShardedRunner::run_chunked`]. When the source yields `Err`, the
    /// stream ends there: workers stop pulling, shards already running
    /// finish, and the call returns [`ReplayError::Source`] — the partial
    /// report of the parsed prefix is discarded, never returned. A source
    /// that errors on its very first pull therefore costs no simulation
    /// work beyond the chunks pulled before the failure.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Source`] with the source's first error (it takes
    /// precedence over any simulation error), or [`ReplayError::Sim`]
    /// carrying the same failures [`ShardedRunner::run_chunked`] produces.
    pub fn run_chunked_fallible<I, E, F>(
        &self,
        chunks: I,
        build_policy: F,
    ) -> Result<SimulationReport, ReplayError<E>>
    where
        I: IntoIterator<Item = Result<Vec<JobSpec>, E>>,
        I::IntoIter: Send,
        E: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        let source_error: Mutex<Option<E>> = Mutex::new(None);
        let adapter = FallibleChunks {
            inner: chunks.into_iter(),
            slot: &source_error,
            done: false,
        };
        let workers = self.config.sharding.requested_workers() as usize;
        let outcome = self.run_chunks_with(workers, adapter, &build_policy);
        if let Some(err) = source_error
            .into_inner()
            .expect("source error lock poisoned")
        {
            return Err(ReplayError::Source(err));
        }
        outcome.map_err(ReplayError::Sim)
    }

    /// Shared worker-pool core of [`ShardedRunner::run`] (which clamps
    /// `workers` to its known shard count) and
    /// [`ShardedRunner::run_chunked`] (which cannot, the chunk count being
    /// unknown for a lazy iterator).
    fn run_chunks_with<I, F>(
        &self,
        workers: usize,
        chunks: I,
        build_policy: &F,
    ) -> Result<SimulationReport, SimError>
    where
        I: IntoIterator<Item = Vec<JobSpec>>,
        I::IntoIter: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        self.run_chunks_observed_with(workers, chunks, build_policy, None)
            .map(|(report, _)| report)
    }

    /// [`ShardedRunner::run_chunks_with`] plus optional per-shard decision
    /// tracing. `trace` is `None` to leave recording off (the engine's
    /// zero-cost default) or `Some(capacity)` to record with the given
    /// per-shard ring bound. Traces are folded in the same sorted
    /// shard-index order as the reports, so the merged trace inherits the
    /// reports' worker-count invariance.
    fn run_chunks_observed_with<I, F>(
        &self,
        workers: usize,
        chunks: I,
        build_policy: &F,
        trace: Option<Option<usize>>,
    ) -> Result<(SimulationReport, Option<DecisionTrace>), SimError>
    where
        I: IntoIterator<Item = Vec<JobSpec>>,
        I::IntoIter: Send,
        F: Fn(u64) -> Box<dyn SpeculationPolicy> + Sync,
    {
        type ShardOutcome = Result<(SimulationReport, Option<DecisionTrace>), SimError>;
        let queue = Mutex::new(chunks.into_iter().enumerate());
        let results: Mutex<Vec<(usize, ShardOutcome)>> = Mutex::new(Vec::new());
        // Once any shard fails, stop pulling new chunks: a million-job run
        // should not simulate 63 healthy shards to report shard 0's invalid
        // spec. Shards already running finish normally, which keeps error
        // selection deterministic (see below).
        let abort = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while !abort.load(Ordering::Relaxed) {
                        // Hold the queue lock only for the pull: chunk k is
                        // the iterator's k-th yield regardless of the
                        // pulling worker.
                        let next = queue.lock().expect("queue lock poisoned").next();
                        let Some((index, jobs)) = next else {
                            break;
                        };
                        let outcome = self.run_shard(index as u64, jobs, build_policy, trace);
                        if outcome.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        results
                            .lock()
                            .expect("result lock poisoned")
                            .push((index, outcome));
                    }
                });
            }
        });

        let mut outcomes = results.into_inner().expect("result lock poisoned");
        // Shard-index order makes error selection deterministic even with
        // the abort flag: chunks are pulled in index order, so every shard
        // with an index at or below the first *finishing* failure was
        // already pulled and runs to completion — the lowest-index error
        // therefore always reaches this sort, while skipped shards all have
        // strictly larger indices. The merge would be order-insensitive
        // anyway; sorted folding keeps failures reproducible too.
        outcomes.sort_by_key(|(index, _)| *index);
        let mut aggregate = SimulationReport::default();
        let mut merged_trace = trace.map(|capacity| match capacity {
            Some(capacity) => DecisionTrace::bounded(capacity),
            None => DecisionTrace::new(),
        });
        for (index, outcome) in outcomes {
            let (report, shard_trace) =
                outcome.map_err(|err| err.with_context(format_args!("shard {index}")))?;
            aggregate
                .merge(report)
                .map_err(|err| err.with_context(format_args!("merging shard {index}")))?;
            if let (Some(merged), Some(shard_trace)) = (merged_trace.as_mut(), shard_trace) {
                merged.merge(shard_trace);
            }
        }
        Ok((aggregate, merged_trace))
    }

    /// Runs one shard: an ordinary simulation under the shared config with
    /// the shard's derived seed, optionally recording a decision trace.
    fn run_shard(
        &self,
        shard: u64,
        jobs: Vec<JobSpec>,
        build_policy: &PolicyFactory<'_>,
        trace: Option<Option<usize>>,
    ) -> Result<(SimulationReport, Option<DecisionTrace>), SimError> {
        let mut config = self.config.clone();
        config.seed = shard_seed(self.config.seed, shard);
        let mut sim = Simulation::new(config, build_policy(shard))?;
        if let Some(capacity) = trace {
            sim.enable_decision_trace(capacity);
        }
        sim.submit_all(jobs)?;
        let report = sim.run()?;
        Ok((report, sim.take_decision_trace()))
    }
}

/// Adapter that feeds a fallible chunk source into the infallible
/// worker-pool core: the first `Err` ends the stream (workers see a plain
/// end-of-queue, stop pulling, and drain) and is parked in `slot` for
/// [`ShardedRunner::run_chunked_fallible`] to surface once the pool joins.
struct FallibleChunks<'a, I, E> {
    inner: I,
    slot: &'a Mutex<Option<E>>,
    /// Set on the first `Err` so a non-fused source is never polled again.
    done: bool,
}

impl<I, E> Iterator for FallibleChunks<'_, I, E>
where
    I: Iterator<Item = Result<Vec<JobSpec>, E>>,
{
    type Item = Vec<JobSpec>;

    fn next(&mut self) -> Option<Vec<JobSpec>> {
        if self.done {
            return None;
        }
        match self.inner.next() {
            Some(Ok(chunk)) => Some(chunk),
            Some(Err(err)) => {
                self.done = true;
                let mut slot = self.slot.lock().expect("source error lock poisoned");
                // Keep the first error: the queue lock serializes pulls, so
                // this branch runs at most once anyway, but belt and braces.
                slot.get_or_insert(err);
                None
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterSpec, EstimatorKind, JvmModel, ShardSpec};
    use crate::ids::JobId;
    use crate::policy::NoSpeculation;
    use crate::time::SimTime;
    use chronos_core::Pareto;
    use chronos_obs::TraceRecord;
    use std::sync::atomic::AtomicUsize;

    fn config(seed: u64, shards: u32, workers: u32) -> SimConfig {
        SimConfig {
            cluster: ClusterSpec::homogeneous(8, 2),
            jvm: JvmModel::disabled(),
            estimator: EstimatorKind::ChronosJvmAware,
            progress_report_interval_secs: 1.0,
            seed,
            max_events: 0,
            sharding: ShardSpec::new(shards, workers),
        }
    }

    fn jobs(count: u64) -> Vec<JobSpec> {
        (0..count)
            .map(|i| {
                JobSpec::new(JobId::new(i), SimTime::from_secs(i as f64 * 2.0), 400.0, 3)
                    .with_profile(Pareto::new(10.0, 1.5).unwrap())
            })
            .collect()
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference outputs of the SplitMix64 generator seeded with 0 and
        // 1234567 (first outputs of the Vigna reference implementation).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1_234_567), 0x599E_D017_FB08_FC85);
    }

    #[test]
    fn shard_seeds_differ_from_base_and_each_other() {
        let base = 42;
        let s0 = shard_seed(base, 0);
        let s1 = shard_seed(base, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, base);
        // Different base seeds move every shard's seed.
        assert_ne!(shard_seed(43, 0), s0);
    }

    #[test]
    fn runner_covers_all_jobs_exactly_once() {
        let runner = ShardedRunner::new(config(7, 4, 2)).unwrap();
        let report = runner.run(jobs(30), |_| Box::new(NoSpeculation)).unwrap();
        assert_eq!(report.job_count(), 30);
        assert_eq!(report.latency.total(), 30);
        let ids: Vec<u64> = report.jobs.keys().map(|id| id.raw()).collect();
        assert_eq!(ids, (0..30).collect::<Vec<u64>>());
        assert!(report.unfinished_fraction() < 1e-12);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let run = |workers| {
            ShardedRunner::new(config(11, 6, workers))
                .unwrap()
                .run(jobs(24), |_| Box::new(NoSpeculation))
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(6);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn shard_count_is_part_of_the_experiment() {
        let run = |shards| {
            ShardedRunner::new(config(11, shards, 2))
                .unwrap()
                .run(jobs(24), |_| Box::new(NoSpeculation))
                .unwrap()
        };
        // Different shard counts = different RNG streams = different draws.
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn single_shard_matches_plain_simulation_with_derived_seed() {
        let runner = ShardedRunner::new(config(5, 1, 1)).unwrap();
        let sharded = runner.run(jobs(10), |_| Box::new(NoSpeculation)).unwrap();

        let mut plain_config = config(5, 1, 1);
        plain_config.seed = shard_seed(5, 0);
        let mut sim = Simulation::new(plain_config, Box::new(NoSpeculation)).unwrap();
        sim.submit_all(jobs(10)).unwrap();
        let plain = sim.run().unwrap();
        assert_eq!(sharded, plain);
    }

    #[test]
    fn chunked_and_round_robin_differ_only_in_partitioning() {
        // Same jobs fed as explicit chunks matching the round-robin layout
        // must give the same report as `run`.
        let runner = ShardedRunner::new(config(9, 3, 2)).unwrap();
        let via_run = runner.run(jobs(12), |_| Box::new(NoSpeculation)).unwrap();

        let mut chunks = vec![Vec::new(), Vec::new(), Vec::new()];
        for (index, job) in jobs(12).into_iter().enumerate() {
            chunks[index % 3].push(job);
        }
        let via_chunks = runner
            .run_chunked(chunks, |_| Box::new(NoSpeculation))
            .unwrap();
        assert_eq!(via_run, via_chunks);
    }

    #[test]
    fn shard_errors_are_deterministic_and_contextualized() {
        // Job indices 0 and 1 round-robin onto shards 0 and 1; giving them
        // the same id puts the duplicate in *different* shards, so each
        // shard runs cleanly and the conflict only surfaces at the merge.
        let runner = ShardedRunner::new(config(3, 2, 2)).unwrap();
        let mut workload = jobs(4);
        workload[1].id = JobId::new(0);
        let err = runner
            .run(workload, |_| Box::new(NoSpeculation))
            .unwrap_err();
        assert!(matches!(err, SimError::MergeConflict { .. }), "{err}");
        assert!(err.to_string().contains("merging shard"), "{err}");

        // An in-shard failure carries the shard index instead.
        let runner = ShardedRunner::new(config(3, 2, 2)).unwrap();
        let mut workload = jobs(4);
        workload[3].tasks.clear(); // invalid: lands in shard 1
        let err = runner
            .run(workload, |_| Box::new(NoSpeculation))
            .unwrap_err();
        assert!(err.to_string().contains("shard 1"), "{err}");
    }

    #[test]
    fn event_budget_errors_name_their_shard() {
        // `max_events` applies per shard; the error must say which shard
        // tripped it even though the variant carries no free-form detail.
        let mut cfg = config(3, 2, 1);
        cfg.max_events = 1;
        let runner = ShardedRunner::new(cfg).unwrap();
        let err = runner
            .run(jobs(4), |_| Box::new(NoSpeculation))
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("shard 0"), "{message}");
        assert!(message.contains("event budget"), "{message}");
    }

    #[test]
    fn failing_shard_stops_the_chunk_stream_early() {
        // With one worker the pull order is fully deterministic: chunk 0
        // fails, the abort flag trips, and none of the 99 remaining chunks
        // may even be generated — a million-job stream must not be
        // simulated to the end just to report a shard-0 error.
        let generated = AtomicUsize::new(0);
        let chunks = (0..100u64).map(|index| {
            generated.fetch_add(1, Ordering::Relaxed);
            let mut job = JobSpec::new(JobId::new(index), SimTime::ZERO, 100.0, 1);
            if index == 0 {
                job.tasks.clear(); // invalid: no tasks
            }
            vec![job]
        });
        let runner = ShardedRunner::new(config(1, 4, 1)).unwrap();
        let err = runner
            .run_chunked(chunks, |_| Box::new(NoSpeculation))
            .unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");
        assert_eq!(generated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fallible_chunks_match_infallible_when_clean() {
        let runner = ShardedRunner::new(config(9, 3, 2)).unwrap();
        let mut chunks = vec![Vec::new(), Vec::new(), Vec::new()];
        for (index, job) in jobs(12).into_iter().enumerate() {
            chunks[index % 3].push(job);
        }
        let infallible = runner
            .run_chunked(chunks.clone(), |_| Box::new(NoSpeculation))
            .unwrap();
        let fallible = runner
            .run_chunked_fallible(chunks.into_iter().map(Ok::<_, SimError>), |_| {
                Box::new(NoSpeculation)
            })
            .unwrap();
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn source_error_stops_the_replay_and_takes_precedence() {
        // Chunk 2 is a source error; with one worker the pull order is
        // deterministic, so chunks 3.. must never be generated and the
        // source error must surface even though chunks 0-1 simulated fine.
        let generated = AtomicUsize::new(0);
        let chunks = (0..100u64).map(|index| {
            generated.fetch_add(1, Ordering::Relaxed);
            if index == 2 {
                Err(format!("parse failure at chunk {index}"))
            } else {
                Ok(vec![JobSpec::new(
                    JobId::new(index),
                    SimTime::ZERO,
                    100.0,
                    1,
                )])
            }
        });
        let runner = ShardedRunner::new(config(1, 4, 1)).unwrap();
        let err = runner
            .run_chunked_fallible(chunks, |_| Box::new(NoSpeculation))
            .unwrap_err();
        assert_eq!(
            err,
            ReplayError::Source("parse failure at chunk 2".to_string())
        );
        assert!(err.to_string().contains("chunk source error"), "{err}");
        assert_eq!(generated.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn fallible_replay_reports_sim_errors() {
        let mut bad = vec![JobSpec::new(JobId::new(0), SimTime::ZERO, 100.0, 1)];
        bad[0].tasks.clear();
        let runner = ShardedRunner::new(config(1, 4, 1)).unwrap();
        let err = runner
            .run_chunked_fallible([Ok::<_, String>(bad)], |_| Box::new(NoSpeculation))
            .unwrap_err();
        assert!(
            matches!(err, ReplayError::Sim(SimError::InvalidConfig { .. })),
            "{err}"
        );
        assert!(err.to_string().contains("shard 0"), "{err}");
    }

    /// A minimal optimizing policy for the planned-path tests: batches its
    /// planning through a `chronos-plan` planner and clones `r` extra
    /// attempts per task from the memoized plan.
    #[derive(Debug)]
    struct PlanningProbe {
        planner: chronos_plan::Planner,
    }

    impl PlanningProbe {
        fn new(cache: std::sync::Arc<chronos_plan::PlanCache>) -> Self {
            PlanningProbe {
                planner: chronos_plan::Planner::with_cache(
                    chronos_core::Optimizer::new(chronos_core::UtilityModel::default()),
                    cache,
                ),
            }
        }

        fn request_of(view: &crate::policy::JobSubmitView) -> Option<chronos_plan::PlanRequest> {
            let job = chronos_core::JobProfile::builder()
                .tasks(view.task_count.max(1))
                .t_min(view.profile.t_min())
                .beta(view.profile.beta())
                .deadline(view.deadline_secs)
                .price(view.price)
                .build()
                .ok()?;
            Some(chronos_plan::PlanRequest::new(
                job,
                chronos_core::StrategyParams::clone_strategy(0.5 * view.profile.t_min()),
            ))
        }
    }

    impl SpeculationPolicy for PlanningProbe {
        fn name(&self) -> &str {
            "planning-probe"
        }

        fn on_job_batch(
            &mut self,
            jobs: &[crate::policy::JobSubmitView],
        ) -> Result<crate::policy::BatchPlan, SimError> {
            let requests: Vec<chronos_plan::PlanRequest> =
                jobs.iter().filter_map(Self::request_of).collect();
            let _ = self.planner.plan_batch(&requests, 1);
            Ok(crate::policy::BatchPlan::default())
        }

        fn on_job_submit(
            &mut self,
            job: &crate::policy::JobSubmitView,
        ) -> crate::policy::SubmitDecision {
            let r = Self::request_of(job)
                .and_then(|request| self.planner.plan_request(&request).ok())
                .map_or(0, |plan| plan.outcome.r);
            crate::policy::SubmitDecision {
                extra_clones_per_task: r,
                reported_r: Some(r),
            }
        }

        fn check_schedule(
            &self,
            _job: &crate::policy::JobSubmitView,
        ) -> crate::policy::CheckSchedule {
            crate::policy::CheckSchedule::Never
        }

        fn on_check(&mut self, _view: &crate::policy::JobView) -> Vec<crate::policy::PolicyAction> {
            Vec::new()
        }
    }

    fn chunks_of(jobs: Vec<JobSpec>, shards: usize) -> Vec<Vec<JobSpec>> {
        let mut chunks = vec![Vec::new(); shards];
        for (index, job) in jobs.into_iter().enumerate() {
            chunks[index % shards].push(job);
        }
        chunks
    }

    #[test]
    fn planned_replay_is_bit_identical_and_shares_plans_across_shards() {
        let runner = ShardedRunner::new(config(13, 3, 2)).unwrap();
        // Unplanned reference: each shard plans into its own private cache.
        let reference = runner
            .run_chunked(chunks_of(jobs(30), 3), |_| {
                Box::new(PlanningProbe::new(chronos_plan::PlanCache::shared()))
            })
            .unwrap();

        for workers in [1u32, 8] {
            let runner = ShardedRunner::new(config(13, 3, workers)).unwrap();
            let cache = chronos_plan::PlanCache::shared();
            let (report, stats) = runner
                .run_chunked_planned(&cache, chunks_of(jobs(30), 3), |_, cache| {
                    Box::new(PlanningProbe::new(cache))
                })
                .unwrap();
            assert_eq!(report, reference, "workers = {workers}");
            // All 30 jobs share one profile: one solve for the whole
            // replay, and the counters are worker-count invariant (batch
            // hook + per-submit lookup = 2 lookups per job).
            assert_eq!(stats.misses, 1, "workers = {workers}");
            assert_eq!(stats.lookups(), 60, "workers = {workers}");
        }
    }

    #[test]
    fn planned_fallible_replay_matches_and_reuses_a_warm_cache() {
        let runner = ShardedRunner::new(config(13, 3, 2)).unwrap();
        let cache = chronos_plan::PlanCache::shared();
        let build = |_shard: u64, cache: std::sync::Arc<chronos_plan::PlanCache>| {
            Box::new(PlanningProbe::new(cache)) as Box<dyn SpeculationPolicy>
        };
        let (first, first_stats) = runner
            .run_chunked_fallible_planned(
                &cache,
                chunks_of(jobs(30), 3).into_iter().map(Ok::<_, SimError>),
                build,
            )
            .unwrap();
        assert_eq!(first_stats.misses, 1);

        // A second replay over the same cache is all hits, and the stats
        // delta (not the lifetime totals) says so.
        let (second, second_stats) = runner
            .run_chunked_fallible_planned(
                &cache,
                chunks_of(jobs(30), 3).into_iter().map(Ok::<_, SimError>),
                build,
            )
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(second_stats.misses, 0);
        assert_eq!(second_stats.hits, 60);

        // Source errors still take precedence on the planned path.
        let err = runner
            .run_chunked_fallible_planned(
                &cache,
                [Err::<Vec<JobSpec>, String>("broken source".into())],
                |_, cache| Box::new(PlanningProbe::new(cache)),
            )
            .unwrap_err();
        assert_eq!(err, ReplayError::Source("broken source".to_string()));
    }

    #[test]
    fn observed_replay_preserves_the_report_and_is_worker_count_invariant() {
        // Tight deadlines: some jobs miss, so the trace carries
        // `DeadlineMissed` events, not just the per-shard phase spans.
        let workload = || {
            (0..24u64)
                .map(|i| {
                    JobSpec::new(JobId::new(i), SimTime::from_secs(i as f64), 12.0, 3)
                        .with_profile(Pareto::new(10.0, 1.5).unwrap())
                })
                .collect::<Vec<JobSpec>>()
        };
        let reference = ShardedRunner::new(config(11, 4, 2))
            .unwrap()
            .run_chunked(chunks_of(workload(), 4), |_| Box::new(NoSpeculation))
            .unwrap();
        let missed = reference
            .jobs
            .values()
            .filter(|job| !job.met_deadline)
            .count();
        assert!(missed > 0, "workload must exercise DeadlineMissed events");

        let mut digests = Vec::new();
        for workers in [1u32, 8] {
            let runner = ShardedRunner::new(config(11, 4, workers)).unwrap();
            let (report, trace) = runner
                .run_chunked_observed(chunks_of(workload(), 4), |_| Box::new(NoSpeculation), None)
                .unwrap();
            // Recording is observation only: the report stays bit-identical
            // to the unobserved replay.
            assert_eq!(report, reference, "workers = {workers}");
            // One `simulate` phase span per shard, merged in shard order,
            // and one DeadlineMissed per missed job.
            let phases = trace
                .records()
                .filter(|record| matches!(record.event, TraceEvent::Phase { .. }))
                .count();
            assert_eq!(phases, 4, "workers = {workers}");
            let deadline_events = trace
                .records()
                .filter(|record| matches!(record.event, TraceEvent::DeadlineMissed { .. }))
                .count();
            assert_eq!(deadline_events, missed, "workers = {workers}");
            digests.push(trace.digest());
        }
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn planned_observed_replay_appends_one_aggregate_cache_report() {
        let runner = ShardedRunner::new(config(13, 3, 2)).unwrap();
        let cache = chronos_plan::PlanCache::shared();
        let (report, stats, trace) = runner
            .run_chunked_fallible_planned_observed(
                &cache,
                chunks_of(jobs(30), 3).into_iter().map(Ok::<_, SimError>),
                |_, cache| Box::new(PlanningProbe::new(cache)) as Box<dyn SpeculationPolicy>,
                None,
            )
            .unwrap();
        assert_eq!(report.job_count(), 30);
        // Per-access cache events would be scheduling-dependent (whichever
        // shard reaches a profile first takes the miss); the trace instead
        // carries exactly one aggregate report with the run's stats delta.
        let cache_reports: Vec<&TraceRecord> = trace
            .records()
            .filter(|record| matches!(record.event, TraceEvent::PlanCacheReport { .. }))
            .collect();
        assert_eq!(cache_reports.len(), 1);
        match cache_reports[0].event {
            TraceEvent::PlanCacheReport { hits, misses, .. } => {
                assert_eq!(hits, stats.hits);
                assert_eq!(misses, stats.misses);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_workload_yields_identity_report() {
        let runner = ShardedRunner::new(config(1, 4, 4)).unwrap();
        let report = runner.run(Vec::new(), |_| Box::new(NoSpeculation)).unwrap();
        assert_eq!(report.job_count(), 0);
        assert_eq!(report.policy, "hadoop-ns");
        assert_eq!(report.events_dispatched, 0);
        assert_eq!(report.events_stale, 0);
    }
}
