//! Completion-time estimation and the Speculative-Resume offset estimator.
//!
//! Section VI of the paper observes that Hadoop's default completion-time
//! estimate — elapsed time divided by progress score — is badly biased in
//! contended clusters because it folds the JVM launch time into the
//! processing rate. Chronos' estimator (Eq. 30) separates the two by using
//! the first progress report:
//!
//! ```text
//! t_ect = t_lau + (t_FP − t_lau) + (t_now − t_FP) / (CP − FP)
//! ```
//!
//! where `t_FP`/`FP` are the time and value of the first progress report and
//! `CP` the current progress. Eq. 31 extends the same idea to predict the
//! byte offset a resumed attempt should start from, so that the original and
//! speculative attempts hand over seamlessly despite JVM startup.

use crate::attempt::Attempt;
use crate::config::EstimatorKind;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A progress report visible to the Application Master.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressReport {
    /// When the report was taken.
    pub at: SimTime,
    /// The reported progress score in `[0, 1]`.
    pub progress: f64,
}

/// The first progress report an attempt would deliver, given the reporting
/// interval: one interval after useful work begins.
///
/// Returns `None` if the attempt has not started.
#[must_use]
pub fn first_progress_report(
    attempt: &Attempt,
    report_interval_secs: f64,
) -> Option<ProgressReport> {
    let work_start = attempt.work_start()?;
    let at = work_start + crate::time::SimDuration::from_secs(report_interval_secs.max(0.0));
    Some(ProgressReport {
        at,
        progress: attempt.progress_at(at),
    })
}

/// Hadoop's default estimate of the attempt's completion instant at `now`:
/// `t_lau + (now − t_lau) / progress`.
///
/// Returns `None` when the attempt has not started or has made no progress
/// yet (Hadoop cannot produce an estimate either in that case).
#[must_use]
pub fn estimate_completion_hadoop(attempt: &Attempt, now: SimTime) -> Option<SimTime> {
    let launched = attempt.launched_at?;
    let progress = attempt.progress_at(now);
    if progress <= 0.0 {
        return None;
    }
    if progress >= 1.0 {
        return attempt.completion_time();
    }
    let elapsed = (now.saturating_since(launched)).as_secs();
    let estimated_total = elapsed / progress;
    Some(launched + crate::time::SimDuration::from_secs(estimated_total))
}

/// The Chronos estimate of Eq. 30, which accounts for the JVM launch time.
///
/// Returns `None` when the attempt has not started, or before the first
/// progress report exists, or when no progress has accrued since that first
/// report (the processing rate is then unobservable).
#[must_use]
pub fn estimate_completion_chronos(
    attempt: &Attempt,
    now: SimTime,
    report_interval_secs: f64,
) -> Option<SimTime> {
    let launched = attempt.launched_at?;
    let first = first_progress_report(attempt, report_interval_secs)?;
    if now <= first.at {
        return None;
    }
    let current = attempt.progress_at(now);
    if current >= 1.0 {
        return attempt.completion_time();
    }
    let delta_progress = current - first.progress;
    if delta_progress <= 0.0 {
        return None;
    }
    // Eq. 30 literally: t_lau + (t_FP − t_lau) + (t_now − t_FP)/(CP − FP).
    // The last term is the workload-processing time extrapolated from the
    // observed rate; the launch overhead (t_FP − t_lau) is added separately
    // instead of being smeared into the rate as Hadoop's estimator does.
    let launch_overhead = (first.at.saturating_since(launched)).as_secs();
    let elapsed_since_first = (now.saturating_since(first.at)).as_secs();
    let processing_time = elapsed_since_first / delta_progress;
    Some(
        launched
            + crate::time::SimDuration::from_secs(launch_overhead)
            + crate::time::SimDuration::from_secs(processing_time),
    )
}

/// Estimates completion with the estimator selected in the configuration.
#[must_use]
pub fn estimate_completion(
    kind: EstimatorKind,
    attempt: &Attempt,
    now: SimTime,
    report_interval_secs: f64,
) -> Option<SimTime> {
    match kind {
        EstimatorKind::HadoopDefault => estimate_completion_hadoop(attempt, now),
        EstimatorKind::ChronosJvmAware => {
            estimate_completion_chronos(attempt, now, report_interval_secs)
        }
    }
}

/// Eq. 31: the split fraction a resumed attempt should start from, given the
/// original attempt's progress at `now` (= `τ_est`).
///
/// The original will keep processing while the replacement's JVM launches;
/// Chronos estimates that extra progress from the observed rate and the
/// launch overhead of the original attempt (`t_FP − t_lau`), and skips past
/// it. The result is clamped to `[current progress, 0.999]`.
#[must_use]
pub fn estimate_resume_offset(attempt: &Attempt, now: SimTime, report_interval_secs: f64) -> f64 {
    let current = attempt.progress_at(now);
    let Some(launched) = attempt.launched_at else {
        return current;
    };
    let Some(first) = first_progress_report(attempt, report_interval_secs) else {
        return current;
    };
    if now <= first.at {
        return current;
    }
    let processed_since_start = current - attempt.start_fraction;
    let observation_window = (now.saturating_since(first.at)).as_secs();
    if processed_since_start <= 0.0 || observation_window <= 0.0 {
        return current;
    }
    // b_extra = b_est / (τ_est − t_FP) · (t_FP − t_lau)
    if current >= 0.999 {
        // Nothing meaningful remains to hand off; cap below 1 so a resumed
        // attempt still has a non-empty split.
        return 0.999;
    }
    let launch_overhead = (first.at.saturating_since(launched)).as_secs();
    let rate = processed_since_start / observation_window;
    let extra = rate * launch_overhead;
    (current + extra).clamp(current, 0.999)
}

/// Absolute estimation error (in seconds) of an estimator against the true
/// completion time of a started attempt; `None` when either side is
/// unavailable. Used by the estimator-accuracy ablation.
#[must_use]
pub fn estimation_error_secs(
    kind: EstimatorKind,
    attempt: &Attempt,
    now: SimTime,
    report_interval_secs: f64,
) -> Option<f64> {
    let estimate = estimate_completion(kind, attempt, now, report_interval_secs)?;
    let actual = attempt.completion_time()?;
    Some((estimate.as_secs() - actual.as_secs()).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttemptId, JobId, NodeId, TaskId};

    fn attempt(jvm: f64, work: f64, offset: f64) -> Attempt {
        let mut a = Attempt::pending(
            AttemptId::new(0),
            TaskId::new(0),
            JobId::new(0),
            SimTime::ZERO,
            offset,
        );
        a.start(NodeId::new(0), SimTime::from_secs(0.0), jvm, work);
        a
    }

    #[test]
    fn first_report_one_interval_after_work_starts() {
        let a = attempt(5.0, 100.0, 0.0);
        let r = first_progress_report(&a, 2.0).unwrap();
        assert_eq!(r.at, SimTime::from_secs(7.0));
        assert!((r.progress - 0.02).abs() < 1e-9);
    }

    #[test]
    fn unstarted_attempt_has_no_estimates() {
        let a = Attempt::pending(
            AttemptId::new(0),
            TaskId::new(0),
            JobId::new(0),
            SimTime::ZERO,
            0.0,
        );
        assert!(first_progress_report(&a, 1.0).is_none());
        assert!(estimate_completion_hadoop(&a, SimTime::from_secs(10.0)).is_none());
        assert!(estimate_completion_chronos(&a, SimTime::from_secs(10.0), 1.0).is_none());
    }

    #[test]
    fn hadoop_estimator_inflated_by_jvm_time() {
        // True completion: 10 s JVM + 100 s work = 110 s. At t = 30 the
        // attempt has processed 20 % of its split; Hadoop estimates
        // 30 / 0.2 = 150 s — a 40-second over-estimate caused by the launch
        // overhead.
        let a = attempt(10.0, 100.0, 0.0);
        let est = estimate_completion_hadoop(&a, SimTime::from_secs(30.0)).unwrap();
        assert!((est.as_secs() - 150.0).abs() < 1e-6);
        assert_eq!(a.completion_time(), Some(SimTime::from_secs(110.0)));
    }

    #[test]
    fn chronos_estimator_error_bounded_by_report_interval() {
        // True completion is 110 s; Eq. 30 charges the first reporting
        // interval into the launch overhead, so its estimate is off by at
        // most that interval (here 1 s) instead of the ~40 s Hadoop error.
        let a = attempt(10.0, 100.0, 0.0);
        let est = estimate_completion_chronos(&a, SimTime::from_secs(30.0), 1.0).unwrap();
        assert!(
            (est.as_secs() - 110.0).abs() <= 1.0 + 1e-9,
            "estimate {}",
            est.as_secs()
        );
    }

    #[test]
    fn chronos_estimator_waits_for_observations() {
        let a = attempt(10.0, 100.0, 0.0);
        // Before the first report (t = 11) there is nothing to extrapolate.
        assert!(estimate_completion_chronos(&a, SimTime::from_secs(10.5), 1.0).is_none());
        assert!(estimate_completion_chronos(&a, SimTime::from_secs(11.0), 1.0).is_none());
        assert!(estimate_completion_chronos(&a, SimTime::from_secs(12.0), 1.0).is_some());
    }

    #[test]
    fn estimator_error_comparison_favours_chronos() {
        let a = attempt(8.0, 60.0, 0.0);
        let now = SimTime::from_secs(20.0);
        let hadoop = estimation_error_secs(EstimatorKind::HadoopDefault, &a, now, 1.0).unwrap();
        let chronos = estimation_error_secs(EstimatorKind::ChronosJvmAware, &a, now, 1.0).unwrap();
        assert!(
            chronos < hadoop,
            "chronos error {chronos} should beat hadoop error {hadoop}"
        );
        assert!(chronos <= 1.0 + 1e-9, "chronos error {chronos}");
    }

    #[test]
    fn completed_attempts_report_their_true_completion() {
        let a = attempt(2.0, 10.0, 0.0);
        let done = SimTime::from_secs(50.0);
        let est_h = estimate_completion_hadoop(&a, done).unwrap();
        let est_c = estimate_completion_chronos(&a, done, 1.0).unwrap();
        assert_eq!(est_h, a.completion_time().unwrap());
        assert_eq!(est_c, a.completion_time().unwrap());
    }

    #[test]
    fn dispatch_respects_estimator_kind() {
        let a = attempt(10.0, 100.0, 0.0);
        let now = SimTime::from_secs(30.0);
        let h = estimate_completion(EstimatorKind::HadoopDefault, &a, now, 1.0).unwrap();
        let c = estimate_completion(EstimatorKind::ChronosJvmAware, &a, now, 1.0).unwrap();
        assert!(h > c);
    }

    #[test]
    fn resume_offset_skips_launch_overhead() {
        // Original: 10 s JVM, 100 s work. At τ_est = 40 it has processed 30 %.
        // Observed rate uses the first report at t = 11 (progress 1 %), so
        // rate ≈ 1 %/s and the 11 s launch overhead maps to ≈ 11 % extra.
        let a = attempt(10.0, 100.0, 0.0);
        let offset = estimate_resume_offset(&a, SimTime::from_secs(40.0), 1.0);
        let progress_now = a.progress_at(SimTime::from_secs(40.0));
        assert!(offset > progress_now);
        assert!(
            (offset - (progress_now + 0.11)).abs() < 0.02,
            "offset {offset}"
        );
        assert!(offset < 1.0);
    }

    #[test]
    fn resume_offset_degenerates_gracefully() {
        // Unstarted attempt: offset equals current (zero) progress.
        let pending = Attempt::pending(
            AttemptId::new(0),
            TaskId::new(0),
            JobId::new(0),
            SimTime::ZERO,
            0.0,
        );
        assert_eq!(
            estimate_resume_offset(&pending, SimTime::from_secs(5.0), 1.0),
            0.0
        );
        // Query before the first report: no extrapolation.
        let a = attempt(10.0, 100.0, 0.0);
        let early = estimate_resume_offset(&a, SimTime::from_secs(10.5), 1.0);
        assert_eq!(early, a.progress_at(SimTime::from_secs(10.5)));
    }

    #[test]
    fn resume_offset_is_capped_below_one() {
        // An attempt that is nearly done cannot hand off an offset >= 1.
        let a = attempt(50.0, 10.0, 0.0);
        let offset = estimate_resume_offset(&a, SimTime::from_secs(59.9), 1.0);
        assert!(offset <= 0.999);
    }
}
