//! Simulation clock types.
//!
//! The simulator uses an integer microsecond clock so that event ordering is
//! total and runs are bit-for-bit reproducible under a fixed seed, while all
//! public analytical interfaces speak in `f64` seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

const MICROS_PER_SEC: f64 = 1_000_000.0;

impl SimTime {
    /// The simulation origin (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds a time from (possibly fractional) seconds. Negative or
    /// non-finite inputs saturate to zero.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * MICROS_PER_SEC).round() as u64)
    }

    /// This instant expressed in microseconds.
    #[must_use]
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    #[must_use]
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a duration from (possibly fractional) seconds. Negative or
    /// non-finite inputs saturate to zero.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * MICROS_PER_SEC).round() as u64)
    }

    /// This duration expressed in microseconds.
    #[must_use]
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// This duration expressed in seconds.
    #[must_use]
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// True when the duration is exactly zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs(12.5);
        assert_eq!(t.as_micros(), 12_500_000);
        assert!((t.as_secs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_secs(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        let d = SimTime::from_secs(15.0) - SimTime::from_secs(10.0);
        assert_eq!(d, SimDuration::from_secs(5.0));
        // Subtraction saturates rather than underflowing.
        let z = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
        assert_eq!(z, SimDuration::ZERO);
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(2.0);
        assert_eq!(t, SimTime::from_secs(2.0));
        assert_eq!(
            SimDuration::from_secs(1.0) + SimDuration::from_secs(2.0),
            SimDuration::from_secs(3.0)
        );
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(8.0);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(5.0));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_secs(5.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(3.0),
        ];
        times.sort();
        assert_eq!(times[0], SimTime::from_secs(1.0));
        assert_eq!(times[2], SimTime::from_secs(5.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
        assert!(SimDuration::ZERO.is_zero());
    }
}
