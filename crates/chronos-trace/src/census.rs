//! Distinct-profile census of a workload: how much a plan cache can help.
//!
//! The planner subsystem (`chronos-plan`) memoizes one optimization per
//! distinct job profile, so its best-case hit rate on a trace is fixed by
//! the trace alone: `(plannable − distinct_profiles) / jobs`, where
//! `plannable` excludes the jobs no profile can be built for — those never
//! reach the cache, so they can never hit (see
//! [`ProfileCensus::max_hit_rate`]). A [`ProfileCensus`]
//! computes that bound in one streaming pass over a workload — before any
//! replay is paid — so users can predict whether the planner-backed paths
//! (`trace_tool replay`, the `fig3`/`fig4`/`fig5 --trace` runs) will
//! benefit. The `trace_tool stats` subcommand is the command-line front
//! end.

use chronos_core::JobProfile;
use chronos_plan::JobProfileKey;
use chronos_sim::prelude::JobSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary of a [`ProfileCensus`], in serializable form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CensusSummary {
    /// Jobs observed.
    pub jobs: u64,
    /// Distinct analytical job profiles among the plannable jobs.
    pub distinct_profiles: u64,
    /// Jobs whose profile cannot be planned at all (e.g. a deadline at or
    /// below `t_min`); these always cost zero optimizer work.
    pub unplannable_jobs: u64,
    /// Jobs in the largest profile class.
    pub largest_class: u64,
    /// The best hit rate any plan cache can reach on this workload:
    /// `(plannable − distinct) / jobs`.
    pub max_hit_rate: f64,
}

/// Streaming census of the distinct job profiles in a workload.
///
/// # Examples
///
/// ```
/// use chronos_trace::prelude::*;
///
/// # fn main() -> Result<(), chronos_core::ChronosError> {
/// // Every testbed job shares one profile: a cache would hit on all but
/// // the first job.
/// let jobs = TestbedWorkload::paper_setup(Benchmark::Sort, 7).with_jobs(50).generate()?;
/// let mut census = ProfileCensus::new();
/// census.observe_all(&jobs);
/// let summary = census.summary();
/// assert_eq!(summary.jobs, 50);
/// assert_eq!(summary.distinct_profiles, 1);
/// assert!((summary.max_hit_rate - 49.0 / 50.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileCensus {
    classes: HashMap<JobProfileKey, u64>,
    jobs: u64,
    unplannable: u64,
}

impl ProfileCensus {
    /// An empty census.
    #[must_use]
    pub fn new() -> Self {
        ProfileCensus::default()
    }

    /// The analytical profile of a job spec, as the optimizing policies
    /// derive it at submission time (`None` when the spec cannot be
    /// planned, e.g. a deadline not exceeding `t_min`).
    #[must_use]
    pub fn profile_of(spec: &JobSpec) -> Option<JobProfile> {
        JobProfile::builder()
            .tasks((spec.task_count() as u32).max(1))
            .t_min(spec.profile.t_min())
            .beta(spec.profile.beta())
            .deadline(spec.deadline_secs)
            .price(spec.price)
            .build()
            .ok()
    }

    /// Counts one job.
    pub fn observe(&mut self, spec: &JobSpec) {
        self.jobs += 1;
        match Self::profile_of(spec) {
            Some(profile) => *self.classes.entry(JobProfileKey::of(&profile)).or_insert(0) += 1,
            None => self.unplannable += 1,
        }
    }

    /// Counts every job of a chunk.
    pub fn observe_all(&mut self, specs: &[JobSpec]) {
        for spec in specs {
            self.observe(spec);
        }
    }

    /// Jobs observed so far.
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Distinct plannable profiles observed so far.
    #[must_use]
    pub fn distinct_profiles(&self) -> u64 {
        self.classes.len() as u64
    }

    /// The upper bound on any plan cache's hit rate for this workload:
    /// `(plannable − distinct_profiles) / jobs`. Every plannable job beyond
    /// the first of its class can hit, nothing else can — in particular an
    /// unplannable job never reaches the cache, so the naive
    /// `1 − distinct_profiles / jobs` overstates the bound whenever
    /// unplannable jobs exist. Zero for an empty census.
    ///
    /// # Examples
    ///
    /// ```
    /// use chronos_core::Pareto;
    /// use chronos_sim::prelude::{JobId, JobSpec, SimTime};
    /// use chronos_trace::census::ProfileCensus;
    ///
    /// let profile = Pareto::new(20.0, 1.5).unwrap();
    /// let mut census = ProfileCensus::new();
    /// census.observe_all(&[
    ///     // Two plannable jobs sharing one profile...
    ///     JobSpec::new(JobId::new(0), SimTime::ZERO, 100.0, 4).with_profile(profile),
    ///     JobSpec::new(JobId::new(1), SimTime::ZERO, 100.0, 4).with_profile(profile),
    ///     // ...and one whose 10 s deadline is below t_min: unplannable.
    ///     JobSpec::new(JobId::new(2), SimTime::ZERO, 10.0, 4).with_profile(profile),
    /// ]);
    /// let summary = census.summary();
    /// assert_eq!(summary.unplannable_jobs, 1);
    /// // plannable = 2, distinct = 1, jobs = 3: the bound is 1/3 —
    /// // the naive 1 − distinct/jobs would claim 2/3.
    /// assert_eq!(census.max_hit_rate(), (2.0 - 1.0) / 3.0);
    /// ```
    #[must_use]
    pub fn max_hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        let plannable = self.jobs - self.unplannable;
        (plannable - self.distinct_profiles()) as f64 / self.jobs as f64
    }

    /// The summary in serializable form.
    #[must_use]
    pub fn summary(&self) -> CensusSummary {
        CensusSummary {
            jobs: self.jobs,
            distinct_profiles: self.distinct_profiles(),
            unplannable_jobs: self.unplannable,
            largest_class: self.classes.values().copied().max().unwrap_or(0),
            max_hit_rate: self.max_hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::Pareto;
    use chronos_sim::prelude::{JobId, SimTime};

    fn spec(id: u64, deadline: f64, tasks: usize) -> JobSpec {
        JobSpec::new(
            JobId::new(id),
            SimTime::from_secs(id as f64),
            deadline,
            tasks,
        )
        .with_profile(Pareto::new(20.0, 1.5).unwrap())
    }

    #[test]
    fn counts_distinct_profiles_and_classes() {
        let mut census = ProfileCensus::new();
        census.observe_all(&[
            spec(0, 100.0, 4),
            spec(1, 100.0, 4),
            spec(2, 100.0, 4),
            spec(3, 150.0, 4), // different deadline: new class
            spec(4, 100.0, 8), // different task count: new class
        ]);
        let summary = census.summary();
        assert_eq!(summary.jobs, 5);
        assert_eq!(summary.distinct_profiles, 3);
        assert_eq!(summary.largest_class, 3);
        assert_eq!(summary.unplannable_jobs, 0);
        assert!((summary.max_hit_rate - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn unplannable_jobs_are_counted_separately() {
        let mut census = ProfileCensus::new();
        // Deadline 10 s against t_min 20 s: no profile can be built.
        census.observe_all(&[spec(0, 10.0, 4), spec(1, 100.0, 4)]);
        let summary = census.summary();
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.unplannable_jobs, 1);
        assert_eq!(summary.distinct_profiles, 1);
        assert_eq!(summary.max_hit_rate, 0.0);
    }

    #[test]
    fn empty_census_is_well_defined() {
        let summary = ProfileCensus::new().summary();
        assert_eq!(summary.jobs, 0);
        assert_eq!(summary.max_hit_rate, 0.0);
        assert_eq!(summary.largest_class, 0);
    }

    #[test]
    fn google_trace_profiles_are_mostly_unique() {
        // The synthetic Google generator samples per-job t_min values, so
        // a census must (honestly) predict little planner benefit there.
        let jobs = crate::google::GoogleTraceConfig::scaled(100, 3)
            .generate()
            .unwrap()
            .into_jobs();
        let mut census = ProfileCensus::new();
        census.observe_all(&jobs);
        assert_eq!(census.jobs(), 100);
        assert!(census.distinct_profiles() > 90);
        assert!(census.max_hit_rate() < 0.1);
    }
}
