//! # chronos-trace
//!
//! Workload and environment models for the Chronos evaluation:
//!
//! * [`workload`] — the four testbed benchmarks (Sort, SecondarySort,
//!   TeraSort, WordCount) and the Figure 2 job mix,
//! * [`google`] — a synthetic Google-cluster-trace-style generator standing
//!   in for the 30-hour, 2 700-job trace of Figures 3–5,
//! * [`loader`] — the `chronos-trace` v1 on-disk trace format: a streaming
//!   [`loader::TraceLoader`] that parses trace files into validated
//!   [`chronos_sim::prelude::JobSpec`] chunks (with typed errors naming the
//!   offending line/column, duplicate job ids included) and a
//!   [`loader::TraceWriter`] that round-trips any workload to disk
//!   bit-exactly (see the module docs for the format specification),
//! * [`convert`] — foreign-format ingestion: the streaming
//!   [`convert::TraceConverter`] trait and the
//!   [`convert::GoogleClusterTraceConverter`] for the 2011 Google
//!   cluster-trace `task_events` CSV schema, fitting per-job Pareto
//!   profiles by method of moments and emitting validated v1 through the
//!   writer (see the module docs for the schema and the fit),
//! * [`pricing`] — fixed and EC2-spot-like price models,
//! * [`contention`] — the background-load model that produces the heavy
//!   (Pareto, `β < 2`) task-time tails and persistent slow nodes,
//! * [`census`] — a streaming distinct-profile census that predicts how
//!   much the `chronos-plan` cache can help on a given trace.
//!
//! Each substitution for data the paper used but which cannot be
//! redistributed (EC2 spot history, the Google trace, Stress-injected noise)
//! is documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use chronos_trace::prelude::*;
//!
//! # fn main() -> Result<(), chronos_core::ChronosError> {
//! let workload = TestbedWorkload::paper_setup(Benchmark::Sort, 42).with_jobs(5);
//! let jobs = workload.generate()?;
//! assert_eq!(jobs.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod census;
pub mod contention;
pub mod convert;
pub mod google;
pub mod loader;
pub mod pricing;
pub mod workload;

pub mod prelude;

pub use census::{CensusSummary, ProfileCensus};
pub use contention::{ContentionLevel, ContentionModel};
pub use convert::{
    converter_for, ConvertError, ConvertSummary, GoogleClusterTraceConverter, TraceConverter,
};
pub use google::{GoogleTraceConfig, GoogleTraceStream, SyntheticTrace};
pub use loader::{
    write_trace, TraceHeader, TraceLoader, TraceParseError, TraceStream, TraceWriteError,
    TraceWriter,
};
pub use pricing::{PriceModel, PricePath};
pub use workload::{Benchmark, TestbedWorkload};
