//! Google-cluster-trace-style synthetic workload (Figures 3, 4 and 5).
//!
//! The paper's large-scale evaluation replays 30 hours of the public 2011
//! Google cluster trace — 2 700 MapReduce jobs totalling about one million
//! tasks — and draws each job's task execution times from a Pareto
//! distribution fitted to the per-job duration statistics in the trace.
//! The raw trace is too large to redistribute here, so this module generates
//! a synthetic trace that reproduces its documented shape:
//!
//! * job arrivals form a Poisson process over the trace horizon,
//! * per-job task counts are heavy-tailed (most jobs are small, a few are
//!   very large), drawn from a bounded log-normal,
//! * per-job minimum task times vary across jobs (log-normal around a
//!   configurable median),
//! * deadlines are a configurable multiple of the job's mean task time,
//!   matching the "deadline = 2× average execution time" setting of
//!   Figure 4,
//! * per-job prices come from the spot-price model in [`crate::pricing`].

use crate::pricing::PriceModel;
use chronos_core::{ChronosError, Pareto};
use chronos_sim::prelude::{JobId, JobSpec, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Google-style trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoogleTraceConfig {
    /// Number of jobs in the trace (the paper replays 2 700; scale down for
    /// quick runs).
    pub jobs: u32,
    /// Trace horizon in hours over which arrivals are spread (30 h in the
    /// paper).
    pub horizon_hours: f64,
    /// Median task count per job.
    pub median_tasks_per_job: u32,
    /// Log-normal sigma of the task-count distribution (heavier = more
    /// skew).
    pub task_count_sigma: f64,
    /// Hard cap on tasks per job (keeps synthetic traces tractable).
    pub max_tasks_per_job: u32,
    /// Median minimum task time `t_min` across jobs, seconds.
    pub median_t_min_secs: f64,
    /// Log-normal sigma of the per-job `t_min`.
    pub t_min_sigma: f64,
    /// Pareto tail index of task times within a job.
    pub beta: f64,
    /// Deadline expressed as a multiple of the job's mean task time.
    pub deadline_factor: f64,
    /// Per-unit-time VM price source.
    pub price: PriceModel,
    /// RNG seed.
    pub seed: u64,
}

impl GoogleTraceConfig {
    /// The paper-scale configuration: 2 700 jobs over 30 hours, roughly one
    /// million tasks in expectation.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        GoogleTraceConfig {
            jobs: 2_700,
            horizon_hours: 30.0,
            median_tasks_per_job: 150,
            task_count_sigma: 1.2,
            max_tasks_per_job: 5_000,
            median_t_min_secs: 20.0,
            t_min_sigma: 0.4,
            beta: 1.5,
            deadline_factor: 2.0,
            price: PriceModel::ec2_like(1.0, seed ^ 0x5757),
            seed,
        }
    }

    /// A scaled-down configuration suitable for CI and the examples: a few
    /// hundred jobs, same statistical shape.
    #[must_use]
    pub fn scaled(jobs: u32, seed: u64) -> Self {
        GoogleTraceConfig {
            jobs,
            horizon_hours: 30.0 * f64::from(jobs) / 2_700.0,
            median_tasks_per_job: 20,
            max_tasks_per_job: 400,
            ..GoogleTraceConfig::paper_scale(seed)
        }
    }

    /// Replaces the tail index (the Figure 4 sweep variable).
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Replaces the deadline factor.
    #[must_use]
    pub fn with_deadline_factor(mut self, factor: f64) -> Self {
        self.deadline_factor = factor;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] for out-of-domain values.
    pub fn validate(&self) -> Result<(), ChronosError> {
        if self.jobs == 0 {
            return Err(ChronosError::invalid("jobs", 0.0, "at least one job"));
        }
        if !(self.horizon_hours.is_finite() && self.horizon_hours > 0.0) {
            return Err(ChronosError::invalid(
                "horizon_hours",
                self.horizon_hours,
                "a finite value > 0",
            ));
        }
        if self.median_tasks_per_job == 0 || self.max_tasks_per_job == 0 {
            return Err(ChronosError::invalid(
                "median_tasks_per_job",
                f64::from(self.median_tasks_per_job.min(self.max_tasks_per_job)),
                "at least one task",
            ));
        }
        if !(self.task_count_sigma.is_finite() && self.task_count_sigma >= 0.0) {
            return Err(ChronosError::invalid(
                "task_count_sigma",
                self.task_count_sigma,
                "a finite value >= 0",
            ));
        }
        if !(self.median_t_min_secs.is_finite() && self.median_t_min_secs > 0.0) {
            return Err(ChronosError::invalid(
                "median_t_min_secs",
                self.median_t_min_secs,
                "a finite value > 0",
            ));
        }
        if !(self.t_min_sigma.is_finite() && self.t_min_sigma >= 0.0) {
            return Err(ChronosError::invalid(
                "t_min_sigma",
                self.t_min_sigma,
                "a finite value >= 0",
            ));
        }
        if !(self.beta.is_finite() && self.beta > 1.0) {
            return Err(ChronosError::invalid(
                "beta",
                self.beta,
                "a finite value > 1 (finite mean task time)",
            ));
        }
        if !(self.deadline_factor.is_finite() && self.deadline_factor > 1.0) {
            return Err(ChronosError::invalid(
                "deadline_factor",
                self.deadline_factor,
                "a finite value > 1",
            ));
        }
        self.price.validate()
    }

    /// Generates the synthetic trace.
    ///
    /// Equivalent to draining [`GoogleTraceConfig::stream`] into one vector;
    /// for replays large enough that materializing every spec at once
    /// matters, feed the stream to the sharded runner directly.
    ///
    /// # Errors
    ///
    /// Propagates validation failures and distribution-construction errors.
    pub fn generate(&self) -> Result<SyntheticTrace, ChronosError> {
        Ok(SyntheticTrace {
            jobs: self.stream(self.jobs.max(1))?.flatten().collect(),
        })
    }

    /// Streams the trace as chunks of at most `chunk_size` job specs.
    ///
    /// The stream carries the generator RNG forward from chunk to chunk, so
    /// the concatenation of all chunks is **exactly** the
    /// [`GoogleTraceConfig::generate`] output for any chunk size — only peak
    /// memory changes: the stream holds the arrival instants (8 bytes per
    /// job) and the spot-price path, never the job specs themselves. Chunks
    /// double as shard inputs for
    /// `chronos_sim::shard::ShardedRunner::run_chunked`, which is how
    /// million-job Google-style replays reach the simulator without the
    /// trace ever existing as one giant `Vec` — the same shape the
    /// file-backed `crate::loader::TraceStream` produces.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; additionally rejects a zero
    /// `chunk_size`.
    pub fn stream(&self, chunk_size: u32) -> Result<GoogleTraceStream, ChronosError> {
        self.validate()?;
        if chunk_size == 0 {
            return Err(ChronosError::invalid(
                "chunk_size",
                0.0,
                "at least one job per chunk",
            ));
        }
        let horizon_secs = self.horizon_hours * 3_600.0;
        let price_path = self.price.sample_path(horizon_secs)?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        let task_count_dist = LogNormal::new(
            f64::from(self.median_tasks_per_job).ln(),
            self.task_count_sigma.max(1e-9),
        )
        .map_err(|e| ChronosError::numerical(format!("task count distribution: {e}")))?;
        let t_min_dist = LogNormal::new(self.median_t_min_secs.ln(), self.t_min_sigma.max(1e-9))
            .map_err(|e| ChronosError::numerical(format!("t_min distribution: {e}")))?;

        // Poisson arrivals: sort uniform arrival instants over the horizon.
        let mut arrivals: Vec<f64> = (0..self.jobs)
            .map(|_| rng.gen_range(0.0..horizon_secs))
            .collect();
        arrivals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(first) = arrivals.first_mut() {
            *first = 0.0;
        }

        Ok(GoogleTraceStream {
            arrivals,
            price_path,
            rng,
            task_count_dist,
            t_min_dist,
            beta: self.beta,
            deadline_factor: self.deadline_factor,
            max_tasks_per_job: self.max_tasks_per_job,
            next_index: 0,
            chunk_size,
        })
    }
}

impl Default for GoogleTraceConfig {
    fn default() -> Self {
        GoogleTraceConfig::scaled(300, 1)
    }
}

/// Chunked iterator over a [`GoogleTraceConfig`]'s job specifications.
///
/// Yields `Vec<JobSpec>` chunks (each of `chunk_size` jobs, the final one
/// possibly shorter) in submission order. Created by
/// [`GoogleTraceConfig::stream`].
#[derive(Debug, Clone)]
pub struct GoogleTraceStream {
    /// Sorted arrival instants, seconds (first pinned to zero).
    arrivals: Vec<f64>,
    price_path: crate::pricing::PricePath,
    rng: StdRng,
    task_count_dist: LogNormal,
    t_min_dist: LogNormal,
    beta: f64,
    deadline_factor: f64,
    max_tasks_per_job: u32,
    next_index: u32,
    chunk_size: u32,
}

impl GoogleTraceStream {
    /// Number of jobs not yet yielded.
    #[must_use]
    pub fn remaining_jobs(&self) -> u32 {
        self.arrivals.len() as u32 - self.next_index
    }

    /// Generates the next single job spec, advancing the RNG exactly as
    /// [`GoogleTraceConfig::generate`]'s per-job loop would.
    fn next_spec(&mut self) -> JobSpec {
        let index = self.next_index as usize;
        let arrival = self.arrivals[index];
        let tasks = (self.task_count_dist.sample(&mut self.rng).round() as u64)
            .clamp(1, u64::from(self.max_tasks_per_job)) as usize;
        let t_min = self.t_min_dist.sample(&mut self.rng).max(1.0);
        let profile = Pareto::new(t_min, self.beta)
            .expect("beta was validated and the sampled t_min is >= 1");
        let mean_task = profile
            .mean()
            .expect("beta > 1 guarantees a finite mean task time");
        let deadline = self.deadline_factor * mean_task;
        let price = self.price_path.price_at(arrival);
        self.next_index += 1;
        JobSpec::new(
            JobId::new(index as u64),
            SimTime::from_secs(arrival),
            deadline,
            tasks,
        )
        .with_profile(profile)
        .with_price(price)
    }
}

impl Iterator for GoogleTraceStream {
    type Item = Vec<JobSpec>;

    fn next(&mut self) -> Option<Vec<JobSpec>> {
        let remaining = self.remaining_jobs();
        if remaining == 0 {
            return None;
        }
        let size = remaining.min(self.chunk_size) as usize;
        let mut chunk = Vec::with_capacity(size);
        for _ in 0..size {
            chunk.push(self.next_spec());
        }
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let chunks = self.remaining_jobs().div_ceil(self.chunk_size) as usize;
        (chunks, Some(chunks))
    }
}

impl ExactSizeIterator for GoogleTraceStream {}

/// A generated synthetic trace, plus summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticTrace {
    /// The job specifications, sorted by submission time.
    pub jobs: Vec<JobSpec>,
}

impl SyntheticTrace {
    /// Number of jobs in the trace.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Total number of tasks across all jobs.
    #[must_use]
    pub fn task_count(&self) -> u64 {
        self.jobs.iter().map(|j| j.task_count() as u64).sum()
    }

    /// Trace span in hours (first to last submission).
    #[must_use]
    pub fn span_hours(&self) -> f64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(first), Some(last)) => {
                (last.submit_time.saturating_since(first.submit_time)).as_secs() / 3_600.0
            }
            _ => 0.0,
        }
    }

    /// Consumes the trace, yielding the job specifications.
    #[must_use]
    pub fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_trace_has_expected_shape() {
        let trace = GoogleTraceConfig::scaled(200, 7).generate().unwrap();
        assert_eq!(trace.job_count(), 200);
        assert!(trace.task_count() > 200);
        // Arrivals sorted.
        for pair in trace.jobs.windows(2) {
            assert!(pair[1].submit_time >= pair[0].submit_time);
        }
        // Every job has a valid spec.
        for job in &trace.jobs {
            assert!(job.validate().is_ok());
            assert!(job.deadline_secs > job.profile.t_min());
            assert!(job.price > 0.0);
        }
    }

    #[test]
    fn task_counts_are_heavy_tailed() {
        let trace = GoogleTraceConfig::scaled(400, 11).generate().unwrap();
        let counts: Vec<usize> = trace.jobs.iter().map(|j| j.task_count()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        // A heavy-tailed distribution has a maximum far above the mean.
        assert!(max > 3.0 * mean, "max {max}, mean {mean}");
        let min = *counts.iter().min().unwrap();
        assert!(min >= 1);
    }

    #[test]
    fn deadline_scales_with_mean_task_time() {
        let config = GoogleTraceConfig::scaled(50, 3).with_deadline_factor(2.0);
        let trace = config.generate().unwrap();
        for job in &trace.jobs {
            let mean = job.profile.mean().unwrap();
            assert!((job.deadline_secs - 2.0 * mean).abs() < 1e-6);
        }
    }

    #[test]
    fn beta_override_applies_to_every_job() {
        let trace = GoogleTraceConfig::scaled(30, 5)
            .with_beta(1.1)
            .generate()
            .unwrap();
        assert!(trace
            .jobs
            .iter()
            .all(|j| (j.profile.beta() - 1.1).abs() < 1e-12));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GoogleTraceConfig::scaled(100, 21).generate().unwrap();
        let b = GoogleTraceConfig::scaled(100, 21).generate().unwrap();
        let c = GoogleTraceConfig::scaled(100, 22).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_scale_parameters() {
        let config = GoogleTraceConfig::paper_scale(1);
        assert_eq!(config.jobs, 2_700);
        assert_eq!(config.horizon_hours, 30.0);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut config = GoogleTraceConfig::scaled(10, 0);
        config.jobs = 0;
        assert!(config.validate().is_err());
        let config = GoogleTraceConfig::scaled(10, 0).with_beta(0.9);
        assert!(config.validate().is_err());
        let config = GoogleTraceConfig::scaled(10, 0).with_deadline_factor(0.5);
        assert!(config.validate().is_err());
        let mut config = GoogleTraceConfig::scaled(10, 0);
        config.median_t_min_secs = 0.0;
        assert!(config.validate().is_err());
        let mut config = GoogleTraceConfig::scaled(10, 0);
        config.horizon_hours = -1.0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn stream_concatenation_equals_generate() {
        let config = GoogleTraceConfig::scaled(60, 19);
        let batch = config.generate().unwrap().into_jobs();
        // Any chunk size — including ones that do not divide the job count
        // and a single-chunk stream — reproduces the batch output exactly.
        for chunk_size in [1u32, 7, 13, 60, 1000] {
            let streamed: Vec<JobSpec> = config.stream(chunk_size).unwrap().flatten().collect();
            assert_eq!(streamed, batch, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn stream_chunk_shapes() {
        let config = GoogleTraceConfig::scaled(10, 19);
        let mut stream = config.stream(4).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.remaining_jobs(), 10);
        let sizes: Vec<usize> = stream.by_ref().map(|chunk| chunk.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(stream.remaining_jobs(), 0);
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_rejects_zero_chunk_size_and_invalid_configs() {
        let config = GoogleTraceConfig::scaled(10, 19);
        assert!(config.stream(0).is_err());
        assert!(config.with_beta(0.5).stream(4).is_err());
    }

    #[test]
    fn span_and_into_jobs() {
        let trace = GoogleTraceConfig::scaled(50, 2).generate().unwrap();
        assert!(trace.span_hours() > 0.0);
        let jobs = trace.into_jobs();
        assert_eq!(jobs.len(), 50);
        assert_eq!(SyntheticTrace { jobs: Vec::new() }.span_hours(), 0.0);
    }
}
