//! Spot-price models.
//!
//! The paper prices machine time with "a fixed price per unit VM time that
//! is obtained by Amazon EC2 average spot price" for the testbed runs and
//! uses "spot instance price history from Amazon EC2" for the trace-driven
//! simulation. Spot-price history is not redistributable, so this module
//! provides two substitutes documented in DESIGN.md:
//!
//! * [`PriceModel::Fixed`] — a constant price, matching the testbed usage,
//! * [`PriceModel::MeanReverting`] — a clamped AR(1) (discrete
//!   Ornstein–Uhlenbeck) process whose mean, volatility and reversion rate
//!   are configurable, reproducing the qualitative behaviour of EC2 spot
//!   prices (fluctuation around a long-run mean with occasional spikes).

use chronos_core::ChronosError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A per-unit-time VM price source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PriceModel {
    /// A constant price (the paper's testbed setting).
    Fixed {
        /// Price per unit VM time.
        price: f64,
    },
    /// A mean-reverting stochastic price path sampled on a fixed grid.
    MeanReverting {
        /// Long-run mean price.
        mean: f64,
        /// Reversion rate per step, in `(0, 1]`.
        reversion: f64,
        /// Per-step volatility (standard deviation of the shock).
        volatility: f64,
        /// Grid resolution in seconds.
        step_secs: f64,
        /// Seed for the price path.
        seed: u64,
    },
}

impl PriceModel {
    /// The fixed price used throughout the testbed experiments.
    #[must_use]
    pub fn fixed(price: f64) -> Self {
        PriceModel::Fixed { price }
    }

    /// An EC2-like spot price path around `mean`.
    #[must_use]
    pub fn ec2_like(mean: f64, seed: u64) -> Self {
        PriceModel::MeanReverting {
            mean,
            reversion: 0.1,
            volatility: 0.05 * mean,
            step_secs: 300.0,
            seed,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] for non-positive prices,
    /// volatilities, steps or a reversion rate outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ChronosError> {
        match self {
            PriceModel::Fixed { price } => {
                if !(price.is_finite() && *price >= 0.0) {
                    return Err(ChronosError::invalid(
                        "price",
                        *price,
                        "a finite value >= 0",
                    ));
                }
            }
            PriceModel::MeanReverting {
                mean,
                reversion,
                volatility,
                step_secs,
                ..
            } => {
                if !(mean.is_finite() && *mean > 0.0) {
                    return Err(ChronosError::invalid("mean", *mean, "a finite value > 0"));
                }
                if !(*reversion > 0.0 && *reversion <= 1.0) {
                    return Err(ChronosError::invalid(
                        "reversion",
                        *reversion,
                        "a value in (0, 1]",
                    ));
                }
                if !(volatility.is_finite() && *volatility >= 0.0) {
                    return Err(ChronosError::invalid(
                        "volatility",
                        *volatility,
                        "a finite value >= 0",
                    ));
                }
                if !(step_secs.is_finite() && *step_secs > 0.0) {
                    return Err(ChronosError::invalid(
                        "step_secs",
                        *step_secs,
                        "a finite value > 0",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Materializes the price path over `[0, horizon_secs]`.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](Self::validate) failures.
    pub fn sample_path(&self, horizon_secs: f64) -> Result<PricePath, ChronosError> {
        self.validate()?;
        match self {
            PriceModel::Fixed { price } => Ok(PricePath {
                step_secs: horizon_secs.max(1.0),
                prices: vec![*price],
            }),
            PriceModel::MeanReverting {
                mean,
                reversion,
                volatility,
                step_secs,
                seed,
            } => {
                let steps = (horizon_secs / step_secs).ceil().max(1.0) as usize + 1;
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut prices = Vec::with_capacity(steps);
                let mut current = *mean;
                let floor = 0.1 * mean;
                for _ in 0..steps {
                    prices.push(current);
                    // Symmetric triangular-ish shock from two uniforms keeps
                    // the path bounded without needing a Gaussian sampler.
                    let shock: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                    current += reversion * (mean - current) + volatility * shock * 0.5;
                    if current < floor {
                        current = floor;
                    }
                }
                Ok(PricePath {
                    step_secs: *step_secs,
                    prices,
                })
            }
        }
    }
}

impl Default for PriceModel {
    /// A unit fixed price, so cost equals machine time unless configured
    /// otherwise.
    fn default() -> Self {
        PriceModel::fixed(1.0)
    }
}

/// A materialized price path sampled on a regular grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricePath {
    step_secs: f64,
    prices: Vec<f64>,
}

impl PricePath {
    /// The price in effect at `t_secs` (clamped to the path's range).
    #[must_use]
    pub fn price_at(&self, t_secs: f64) -> f64 {
        if self.prices.is_empty() {
            return 0.0;
        }
        let index = if t_secs <= 0.0 {
            0
        } else {
            ((t_secs / self.step_secs) as usize).min(self.prices.len() - 1)
        };
        self.prices[index]
    }

    /// Mean price over the whole path.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.prices.is_empty() {
            return 0.0;
        }
        self.prices.iter().sum::<f64>() / self.prices.len() as f64
    }

    /// Minimum and maximum price over the path.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        let min = self.prices.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .prices
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// True when the path has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_price_is_constant() {
        let path = PriceModel::fixed(0.05).sample_path(10_000.0).unwrap();
        assert_eq!(path.price_at(0.0), 0.05);
        assert_eq!(path.price_at(9_999.0), 0.05);
        assert_eq!(path.mean(), 0.05);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(PriceModel::fixed(-1.0).validate().is_err());
        assert!(PriceModel::MeanReverting {
            mean: 0.0,
            reversion: 0.1,
            volatility: 0.1,
            step_secs: 60.0,
            seed: 0,
        }
        .validate()
        .is_err());
        assert!(PriceModel::MeanReverting {
            mean: 1.0,
            reversion: 0.0,
            volatility: 0.1,
            step_secs: 60.0,
            seed: 0,
        }
        .validate()
        .is_err());
        assert!(PriceModel::MeanReverting {
            mean: 1.0,
            reversion: 0.5,
            volatility: -0.1,
            step_secs: 60.0,
            seed: 0,
        }
        .validate()
        .is_err());
        assert!(PriceModel::MeanReverting {
            mean: 1.0,
            reversion: 0.5,
            volatility: 0.1,
            step_secs: 0.0,
            seed: 0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mean_reverting_path_stays_near_mean() {
        let model = PriceModel::ec2_like(0.1, 7);
        let path = model.sample_path(3600.0 * 30.0).unwrap();
        assert!(path.len() > 100);
        let (min, max) = path.range();
        assert!(min > 0.0);
        assert!(max < 0.5, "max {max}");
        assert!((path.mean() - 0.1).abs() < 0.05, "mean {}", path.mean());
    }

    #[test]
    fn path_is_deterministic_per_seed() {
        let a = PriceModel::ec2_like(0.1, 3).sample_path(10_000.0).unwrap();
        let b = PriceModel::ec2_like(0.1, 3).sample_path(10_000.0).unwrap();
        let c = PriceModel::ec2_like(0.1, 4).sample_path(10_000.0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn price_lookup_clamps_to_range() {
        let path = PriceModel::ec2_like(0.2, 1).sample_path(1_000.0).unwrap();
        assert_eq!(path.price_at(-5.0), path.price_at(0.0));
        // Far beyond the horizon: last grid point.
        let last = path.price_at(1e9);
        assert!(last > 0.0);
        assert!(!path.is_empty());
    }
}
