//! Convenience re-exports for workload construction.

pub use crate::census::{CensusSummary, ProfileCensus};
pub use crate::contention::{ContentionLevel, ContentionModel};
pub use crate::convert::{
    converter_for, ConvertError, ConvertSummary, GoogleClusterTraceConverter, TraceConverter,
};
pub use crate::google::{GoogleTraceConfig, GoogleTraceStream, SyntheticTrace};
pub use crate::loader::{
    write_trace, TraceHeader, TraceLoader, TraceParseError, TraceStream, TraceWriteError,
    TraceWriter,
};
pub use crate::pricing::{PriceModel, PricePath};
pub use crate::workload::{Benchmark, TestbedWorkload, WorkloadStream};
