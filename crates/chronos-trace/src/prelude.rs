//! Convenience re-exports for workload construction.

pub use crate::contention::{ContentionLevel, ContentionModel};
pub use crate::google::{GoogleTraceConfig, SyntheticTrace};
pub use crate::pricing::{PriceModel, PricePath};
pub use crate::workload::{Benchmark, TestbedWorkload, WorkloadStream};
