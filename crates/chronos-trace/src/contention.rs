//! Background contention / straggler-cause model.
//!
//! The testbed experiments of Section VII.A inject background load with the
//! Stress utility so that task execution times exhibit the heavy (Pareto,
//! `β < 2`) tail the analysis assumes. The real mechanism behind stragglers
//! is a mix of heterogeneous hardware, co-scheduled tenants and transient
//! hot spots; this module reproduces that effect in two ways that compose:
//!
//! * a **tail effect**: higher contention lowers the effective Pareto tail
//!   index `β`, making extreme task times more likely, and
//! * a **placement effect**: a configurable fraction of nodes is persistently
//!   slow by a multiplicative factor (the `slowdowns` vector consumed by the
//!   simulator's cluster spec).

use chronos_core::{ChronosError, Pareto};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Intensity of background contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ContentionLevel {
    /// No background load: light-tailed behaviour (`β ≈ 1.9`).
    None,
    /// Moderate background load, the default testbed emulation (`β ≈ 1.5`).
    #[default]
    Moderate,
    /// Heavy background load (`β ≈ 1.2`), stressing every strategy.
    Heavy,
}

impl ContentionLevel {
    /// The effective Pareto tail index under this contention level.
    #[must_use]
    pub fn tail_index(&self) -> f64 {
        match self {
            ContentionLevel::None => 1.9,
            ContentionLevel::Moderate => 1.5,
            ContentionLevel::Heavy => 1.2,
        }
    }

    /// The fraction of cluster nodes that are persistently slow.
    #[must_use]
    pub fn slow_node_fraction(&self) -> f64 {
        match self {
            ContentionLevel::None => 0.0,
            ContentionLevel::Moderate => 0.1,
            ContentionLevel::Heavy => 0.25,
        }
    }
}

/// The contention model: turns a contention level into the concrete
/// parameters the simulator and workload generators consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Intensity of the background load.
    pub level: ContentionLevel,
    /// Multiplicative slowdown applied to slow nodes.
    pub slow_factor: f64,
    /// Seed used to place the slow nodes.
    pub seed: u64,
}

impl ContentionModel {
    /// Creates the model for a given level with the default slow factor.
    #[must_use]
    pub fn new(level: ContentionLevel, seed: u64) -> Self {
        ContentionModel {
            level,
            slow_factor: 2.5,
            seed,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] when the slow factor is
    /// not at least 1.
    pub fn validate(&self) -> Result<(), ChronosError> {
        if !(self.slow_factor.is_finite() && self.slow_factor >= 1.0) {
            return Err(ChronosError::invalid(
                "slow_factor",
                self.slow_factor,
                "a finite value >= 1",
            ));
        }
        Ok(())
    }

    /// The task-time distribution a workload with minimum task time `t_min`
    /// exhibits under this contention level.
    ///
    /// # Errors
    ///
    /// Propagates invalid `t_min` values.
    pub fn task_time_distribution(&self, t_min: f64) -> Result<Pareto, ChronosError> {
        Pareto::new(t_min, self.level.tail_index())
    }

    /// Per-node slowdown factors for a cluster of `nodes` machines: slow
    /// nodes get `slow_factor`, the rest 1.0. Placement is deterministic in
    /// the seed.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](Self::validate) failures.
    pub fn node_slowdowns(&self, nodes: u32) -> Result<Vec<f64>, ChronosError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let fraction = self.level.slow_node_fraction();
        Ok((0..nodes)
            .map(|_| {
                if rng.gen_bool(fraction) {
                    self.slow_factor
                } else {
                    1.0
                }
            })
            .collect())
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::new(ContentionLevel::Moderate, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_index_decreases_with_contention() {
        assert!(ContentionLevel::None.tail_index() > ContentionLevel::Moderate.tail_index());
        assert!(ContentionLevel::Moderate.tail_index() > ContentionLevel::Heavy.tail_index());
        // All levels are in the β < 2 regime the paper observes.
        for level in [
            ContentionLevel::None,
            ContentionLevel::Moderate,
            ContentionLevel::Heavy,
        ] {
            assert!(level.tail_index() < 2.0);
            assert!(level.tail_index() > 1.0);
        }
    }

    #[test]
    fn distribution_uses_level_tail() {
        let model = ContentionModel::new(ContentionLevel::Heavy, 1);
        let dist = model.task_time_distribution(20.0).unwrap();
        assert_eq!(dist.beta(), 1.2);
        assert_eq!(dist.t_min(), 20.0);
        assert!(model.task_time_distribution(0.0).is_err());
    }

    #[test]
    fn slowdowns_match_level_fraction() {
        let model = ContentionModel::new(ContentionLevel::Heavy, 3);
        let slowdowns = model.node_slowdowns(2_000).unwrap();
        assert_eq!(slowdowns.len(), 2_000);
        let slow = slowdowns.iter().filter(|s| **s > 1.0).count() as f64 / 2_000.0;
        assert!((slow - 0.25).abs() < 0.05, "slow fraction {slow}");
        assert!(slowdowns.iter().all(|s| *s == 1.0 || *s == 2.5));
    }

    #[test]
    fn no_contention_means_no_slow_nodes() {
        let model = ContentionModel::new(ContentionLevel::None, 3);
        let slowdowns = model.node_slowdowns(500).unwrap();
        assert!(slowdowns.iter().all(|s| *s == 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ContentionModel::new(ContentionLevel::Moderate, 9)
            .node_slowdowns(100)
            .unwrap();
        let b = ContentionModel::new(ContentionLevel::Moderate, 9)
            .node_slowdowns(100)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_sub_unit_slowdown() {
        let model = ContentionModel {
            slow_factor: 0.5,
            ..Default::default()
        };
        assert!(model.validate().is_err());
        assert!(model.node_slowdowns(10).is_err());
    }
}
