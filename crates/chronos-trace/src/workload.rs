//! Benchmark workload models for the testbed experiments (Figure 2).
//!
//! The paper evaluates the map phases of four classic MapReduce benchmarks
//! on 1.2 GB inputs: **Sort** and **SecondarySort** (I/O bound) and
//! **TeraSort** and **WordCount** (CPU bound in the map phase). Deadlines
//! are 100 s for Sort/TeraSort and 150 s for SecondarySort/WordCount. This
//! module models each benchmark as a per-task service profile (minimum task
//! time and split-size spread) and generates the 100-job, 10-task workload
//! used in Figure 2.

use crate::contention::ContentionModel;
use chronos_core::{ChronosError, Pareto};
use chronos_sim::prelude::{JobId, JobSpec, SimTime, TaskSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four benchmarks of Section VII.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Sort — I/O bound, RandomWriter-generated input.
    Sort,
    /// SecondarySort — I/O bound, random number-pair input.
    SecondarySort,
    /// TeraSort — CPU-bound map phase, TeraGen-generated input.
    TeraSort,
    /// WordCount — CPU bound.
    WordCount,
}

impl Benchmark {
    /// All four benchmarks in the order the paper plots them.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Sort,
        Benchmark::SecondarySort,
        Benchmark::TeraSort,
        Benchmark::WordCount,
    ];

    /// Short label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::Sort => "sort",
            Benchmark::SecondarySort => "secondary-sort",
            Benchmark::TeraSort => "terasort",
            Benchmark::WordCount => "wordcount",
        }
    }

    /// Whether the benchmark's map phase is I/O bound (as opposed to CPU
    /// bound).
    #[must_use]
    pub fn io_bound(&self) -> bool {
        matches!(self, Benchmark::Sort | Benchmark::SecondarySort)
    }

    /// The deadline the paper assigns to this benchmark's jobs (seconds).
    #[must_use]
    pub fn deadline_secs(&self) -> f64 {
        match self {
            Benchmark::Sort | Benchmark::TeraSort => 100.0,
            Benchmark::SecondarySort | Benchmark::WordCount => 150.0,
        }
    }

    /// Minimum map-task execution time (seconds) on an uncontended container
    /// for the 1.2 GB / 10-split configuration. I/O-bound benchmarks stream
    /// their splits faster than the CPU-bound ones; SecondarySort and
    /// WordCount carry more per-record work, which is why the paper gives
    /// them the looser 150 s deadline.
    #[must_use]
    pub fn t_min_secs(&self) -> f64 {
        match self {
            Benchmark::Sort => 20.0,
            Benchmark::TeraSort => 24.0,
            Benchmark::SecondarySort => 32.0,
            Benchmark::WordCount => 36.0,
        }
    }

    /// Relative spread of split sizes (± fraction around the nominal split):
    /// synthetic inputs (RandomWriter/TeraGen) are uniform, text inputs less
    /// so.
    #[must_use]
    pub fn split_spread(&self) -> f64 {
        match self {
            Benchmark::Sort | Benchmark::TeraSort | Benchmark::SecondarySort => 0.02,
            Benchmark::WordCount => 0.10,
        }
    }
}

/// Configuration of the Figure 2 testbed workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedWorkload {
    /// The benchmark being run.
    pub benchmark: Benchmark,
    /// Number of jobs (the paper executes 100).
    pub jobs: u32,
    /// Tasks per job (the paper uses 10).
    pub tasks_per_job: u32,
    /// Mean inter-arrival gap between consecutive jobs, seconds.
    pub mean_interarrival_secs: f64,
    /// Per-unit-time VM price.
    pub price: f64,
    /// Background contention model (sets the Pareto tail index).
    pub contention: ContentionModel,
    /// Seed for arrivals and split-size jitter.
    pub seed: u64,
}

impl TestbedWorkload {
    /// The paper's setup for a benchmark: 100 jobs of 10 tasks.
    #[must_use]
    pub fn paper_setup(benchmark: Benchmark, seed: u64) -> Self {
        TestbedWorkload {
            benchmark,
            jobs: 100,
            tasks_per_job: 10,
            mean_interarrival_secs: 30.0,
            price: 1.0,
            contention: ContentionModel::default(),
            seed,
        }
    }

    /// Scales the number of jobs (useful for quick smoke runs).
    #[must_use]
    pub fn with_jobs(mut self, jobs: u32) -> Self {
        self.jobs = jobs;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChronosError::InvalidParameter`] for empty workloads or
    /// non-positive arrival gaps or prices.
    pub fn validate(&self) -> Result<(), ChronosError> {
        if self.jobs == 0 {
            return Err(ChronosError::invalid("jobs", 0.0, "at least one job"));
        }
        if self.tasks_per_job == 0 {
            return Err(ChronosError::invalid(
                "tasks_per_job",
                0.0,
                "at least one task",
            ));
        }
        if !(self.mean_interarrival_secs.is_finite() && self.mean_interarrival_secs >= 0.0) {
            return Err(ChronosError::invalid(
                "mean_interarrival_secs",
                self.mean_interarrival_secs,
                "a finite value >= 0",
            ));
        }
        if !(self.price.is_finite() && self.price >= 0.0) {
            return Err(ChronosError::invalid(
                "price",
                self.price,
                "a finite value >= 0",
            ));
        }
        self.contention.validate()
    }

    /// Generates the job specifications for this workload, with job ids
    /// starting at `first_job_id`.
    ///
    /// Equivalent to draining [`TestbedWorkload::stream_from`] into one
    /// vector; for workloads large enough that materializing every spec at
    /// once matters (the sharded runner's multi-million-job traces), use
    /// the stream directly.
    ///
    /// # Errors
    ///
    /// Propagates validation and distribution-construction failures.
    pub fn generate_from(&self, first_job_id: u64) -> Result<Vec<JobSpec>, ChronosError> {
        // One chunk covering the whole workload; `jobs == 0` is already
        // rejected by validation inside `stream_from`.
        Ok(self
            .stream_from(first_job_id, self.jobs)?
            .flatten()
            .collect())
    }

    /// Generates the job specifications with ids starting at zero.
    ///
    /// # Errors
    ///
    /// Propagates validation and distribution-construction failures.
    pub fn generate(&self) -> Result<Vec<JobSpec>, ChronosError> {
        self.generate_from(0)
    }

    /// Streams the workload as chunks of at most `chunk_size` job specs,
    /// with ids starting at zero.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; additionally rejects a zero
    /// `chunk_size`.
    pub fn stream(&self, chunk_size: u32) -> Result<WorkloadStream, ChronosError> {
        self.stream_from(0, chunk_size)
    }

    /// Streams the workload as chunks of at most `chunk_size` job specs,
    /// with ids starting at `first_job_id`.
    ///
    /// The stream carries the arrival clock and RNG forward from chunk to
    /// chunk, so the concatenation of all chunks is **exactly** the
    /// [`TestbedWorkload::generate_from`] output for any chunk size — only
    /// peak memory changes. Chunks double as shard inputs for
    /// `chronos_sim::shard::ShardedRunner::run_chunked`, which is how
    /// million-job traces reach the simulator without ever existing as one
    /// giant `Vec`.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; additionally rejects a zero
    /// `chunk_size`.
    pub fn stream_from(
        &self,
        first_job_id: u64,
        chunk_size: u32,
    ) -> Result<WorkloadStream, ChronosError> {
        self.validate()?;
        if chunk_size == 0 {
            return Err(ChronosError::invalid(
                "chunk_size",
                0.0,
                "at least one job per chunk",
            ));
        }
        let profile = self
            .contention
            .task_time_distribution(self.benchmark.t_min_secs())?;
        Ok(WorkloadStream {
            workload: *self,
            profile,
            rng: StdRng::seed_from_u64(self.seed),
            arrival: 0.0,
            next_index: 0,
            chunk_size,
            first_job_id,
        })
    }
}

/// Chunked iterator over a [`TestbedWorkload`]'s job specifications.
///
/// Yields `Vec<JobSpec>` chunks (each of `chunk_size` jobs, the final one
/// possibly shorter) in submission order, keeping only one chunk in memory
/// at a time. Created by [`TestbedWorkload::stream`] /
/// [`TestbedWorkload::stream_from`].
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    workload: TestbedWorkload,
    profile: Pareto,
    rng: StdRng,
    arrival: f64,
    next_index: u32,
    chunk_size: u32,
    first_job_id: u64,
}

impl WorkloadStream {
    /// Number of jobs not yet yielded.
    #[must_use]
    pub fn remaining_jobs(&self) -> u32 {
        self.workload.jobs - self.next_index
    }

    /// Generates the next single job spec, advancing the arrival clock and
    /// the RNG exactly as the batch generator would.
    fn next_spec(&mut self) -> JobSpec {
        let workload = &self.workload;
        // Exponential inter-arrivals via inverse CDF keeps the generator
        // dependency-light and deterministic.
        if self.next_index > 0 && workload.mean_interarrival_secs > 0.0 {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.arrival += -workload.mean_interarrival_secs * u.ln();
        }
        let spread = workload.benchmark.split_spread();
        let tasks = (0..workload.tasks_per_job)
            .map(|_| {
                let jitter = if spread > 0.0 {
                    self.rng.gen_range(-spread..=spread)
                } else {
                    0.0
                };
                TaskSpec::sized(1.0 + jitter)
            })
            .collect();
        let spec = JobSpec::new(
            JobId::new(self.first_job_id + u64::from(self.next_index)),
            SimTime::from_secs(self.arrival),
            workload.benchmark.deadline_secs(),
            workload.tasks_per_job as usize,
        )
        .with_profile(self.profile)
        .with_price(workload.price)
        .with_tasks(tasks);
        self.next_index += 1;
        spec
    }
}

impl Iterator for WorkloadStream {
    type Item = Vec<JobSpec>;

    fn next(&mut self) -> Option<Vec<JobSpec>> {
        let remaining = self.remaining_jobs();
        if remaining == 0 {
            return None;
        }
        let size = remaining.min(self.chunk_size) as usize;
        let mut chunk = Vec::with_capacity(size);
        for _ in 0..size {
            chunk.push(self.next_spec());
        }
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let chunks = self.remaining_jobs().div_ceil(self.chunk_size) as usize;
        (chunks, Some(chunks))
    }
}

impl ExactSizeIterator for WorkloadStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionLevel;

    #[test]
    fn benchmark_properties_match_paper() {
        assert_eq!(Benchmark::Sort.deadline_secs(), 100.0);
        assert_eq!(Benchmark::TeraSort.deadline_secs(), 100.0);
        assert_eq!(Benchmark::SecondarySort.deadline_secs(), 150.0);
        assert_eq!(Benchmark::WordCount.deadline_secs(), 150.0);
        assert!(Benchmark::Sort.io_bound());
        assert!(Benchmark::SecondarySort.io_bound());
        assert!(!Benchmark::TeraSort.io_bound());
        assert!(!Benchmark::WordCount.io_bound());
        assert_eq!(Benchmark::ALL.len(), 4);
        let labels: std::collections::HashSet<&str> =
            Benchmark::ALL.iter().map(Benchmark::label).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn paper_setup_generates_100_jobs_of_10_tasks() {
        let workload = TestbedWorkload::paper_setup(Benchmark::Sort, 1);
        let specs = workload.generate().unwrap();
        assert_eq!(specs.len(), 100);
        assert!(specs.iter().all(|s| s.task_count() == 10));
        assert!(specs.iter().all(|s| s.deadline_secs == 100.0));
        // Arrivals are sorted and start at zero.
        assert_eq!(specs[0].submit_time, SimTime::ZERO);
        for pair in specs.windows(2) {
            assert!(pair[1].submit_time >= pair[0].submit_time);
        }
    }

    #[test]
    fn job_ids_are_unique_and_offset() {
        let workload = TestbedWorkload::paper_setup(Benchmark::WordCount, 2).with_jobs(10);
        let specs = workload.generate_from(500).unwrap();
        let ids: std::collections::HashSet<u64> = specs.iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids.len(), 10);
        assert!(ids.contains(&500));
        assert!(ids.contains(&509));
    }

    #[test]
    fn contention_sets_tail_index() {
        let mut workload = TestbedWorkload::paper_setup(Benchmark::Sort, 3).with_jobs(1);
        workload.contention = ContentionModel::new(ContentionLevel::Heavy, 0);
        let specs = workload.generate().unwrap();
        assert_eq!(specs[0].profile.beta(), 1.2);
        assert_eq!(specs[0].profile.t_min(), Benchmark::Sort.t_min_secs());
    }

    #[test]
    fn split_jitter_respects_spread() {
        let workload = TestbedWorkload::paper_setup(Benchmark::WordCount, 4).with_jobs(5);
        let specs = workload.generate().unwrap();
        for spec in &specs {
            for task in &spec.tasks {
                assert!(task.size_factor >= 0.9 - 1e-9);
                assert!(task.size_factor <= 1.1 + 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TestbedWorkload::paper_setup(Benchmark::TeraSort, 5)
            .generate()
            .unwrap();
        let b = TestbedWorkload::paper_setup(Benchmark::TeraSort, 5)
            .generate()
            .unwrap();
        let c = TestbedWorkload::paper_setup(Benchmark::TeraSort, 6)
            .generate()
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_concatenation_equals_generate() {
        let workload = TestbedWorkload::paper_setup(Benchmark::Sort, 9).with_jobs(25);
        let batch = workload.generate_from(100).unwrap();
        // Any chunk size — including ones that do not divide the job count
        // and a single-chunk stream — reproduces the batch output exactly.
        for chunk_size in [1, 4, 7, 25, 1000] {
            let streamed: Vec<_> = workload
                .stream_from(100, chunk_size)
                .unwrap()
                .flatten()
                .collect();
            assert_eq!(streamed, batch, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn stream_chunk_shapes() {
        let workload = TestbedWorkload::paper_setup(Benchmark::Sort, 9).with_jobs(10);
        let mut stream = workload.stream(4).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.remaining_jobs(), 10);
        let sizes: Vec<usize> = stream.by_ref().map(|chunk| chunk.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(stream.remaining_jobs(), 0);
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_rejects_zero_chunk_size() {
        let workload = TestbedWorkload::paper_setup(Benchmark::Sort, 9);
        assert!(workload.stream(0).is_err());
        assert!(workload.stream(1).is_ok());
    }

    #[test]
    fn validation_failures() {
        let mut workload = TestbedWorkload::paper_setup(Benchmark::Sort, 0);
        workload.jobs = 0;
        assert!(workload.generate().is_err());
        let mut workload = TestbedWorkload::paper_setup(Benchmark::Sort, 0);
        workload.tasks_per_job = 0;
        assert!(workload.validate().is_err());
        let mut workload = TestbedWorkload::paper_setup(Benchmark::Sort, 0);
        workload.price = -1.0;
        assert!(workload.validate().is_err());
        let mut workload = TestbedWorkload::paper_setup(Benchmark::Sort, 0);
        workload.mean_interarrival_secs = f64::NAN;
        assert!(workload.validate().is_err());
    }
}
