//! Foreign trace ingestion: streaming converters that turn other systems'
//! trace files into validated `chronos-trace` v1.
//!
//! The paper's large-scale evaluation (Figures 3–5) replays 30 hours of the
//! public 2011 Google cluster trace with per-job Pareto fits. The
//! [`crate::loader`] module defines our own on-disk format; this module is
//! how traces recorded by *other* systems reach it. A [`TraceConverter`]
//! reads a foreign file front to back, aggregates it in bounded memory and
//! emits a v1 trace through [`TraceWriter`] — so the converted file
//! inherits every loader guarantee for free: validated [`JobSpec`]s, unique
//! job ids, submission-sorted rows, and a bit-exact write → load round
//! trip that replays identically at any worker count.
//!
//! # The `google-2011` schema
//!
//! [`GoogleClusterTraceConverter`] ingests the `task_events` table of the
//! 2011 Google cluster trace (the `clusterdata-2011` format): one CSV row
//! per task state transition, no header line, with at least the six
//! leading fields
//!
//! ```text
//! timestamp_us, missing_info, job_id, task_index, machine_id, event_type, ...
//! ```
//!
//! where `timestamp_us` is microseconds since trace start and `event_type`
//! is `0` SUBMIT, `1` SCHEDULE, `2` EVICT, `3` FAIL, `4` FINISH, `5` KILL,
//! `6` LOST, `7`/`8` UPDATE. Fields beyond the sixth (user, scheduling
//! class, priority, resource requests) are carried by the real trace but
//! not consumed here; `missing_info` and `machine_id` may be empty. The
//! `job_events` table adds nothing the simulator needs — a job's
//! submission instant is the earliest SUBMIT among its tasks.
//!
//! # Aggregation and the Pareto fit
//!
//! Events are grouped per job in one pass (memory is `O(jobs + tasks)`,
//! never `O(events)`): SUBMIT registers a task and keeps the job's
//! earliest submission, SCHEDULE starts an attempt, EVICT/FAIL/KILL/LOST
//! abandon it, and the first FINISH of each task contributes one duration
//! `finish − schedule`. A job with no completed task (e.g. killed outright)
//! is skipped and counted in [`ConvertSummary::skipped_jobs`].
//!
//! Each surviving job is then fitted the way [`crate::google`] documents —
//! a Pareto distribution matched to the per-job duration statistics, with
//! the deadline a configurable multiple of the mean task time (2× by
//! default, the Figure 4 setting). The fit is by method of moments:
//!
//! * `t_min` = the job's minimum observed task duration,
//! * `β` = `mean / (mean − t_min)`, which makes the fitted mean
//!   `t_min·β/(β−1)` reproduce the observed mean exactly,
//! * a degenerate sample (a single completed task, or zero spread) falls
//!   back to the tight tail index [`DEGENERATE_BETA`].
//!
//! Submission times are rebased so the earliest emitted job submits at
//! `0 s`; jobs keep their original Google job ids (unique because the
//! aggregation groups by id) and are emitted sorted by submission time
//! with ties broken by id. Special boundary timestamps (`0` for "before
//! trace start", `2⁶³−1` for "after trace end") receive no special
//! treatment — a checked-in excerpt should be trimmed to whole jobs.
//!
//! # Errors
//!
//! Every malformed input is a typed [`ConvertError`] naming the 1-based
//! line of the offending event row (and the column for field-level
//! failures), mirroring [`crate::loader::TraceParseError`].
//!
//! # Example
//!
//! ```
//! use chronos_trace::convert::{GoogleClusterTraceConverter, TraceConverter};
//! use chronos_trace::loader::TraceLoader;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One job (id 42), two tasks, durations 8 s and 12 s.
//! let raw = "\
//! 0,,42,0,,0,user,0,0,,,,\n\
//! 0,,42,1,,0,user,0,0,,,,\n\
//! 1000000,,42,0,5,1,user,0,0,0.1,0.1,0.01,0\n\
//! 2000000,,42,1,6,1,user,0,0,0.1,0.1,0.01,0\n\
//! 9000000,,42,0,5,4,user,0,0,,,,\n\
//! 14000000,,42,1,6,4,user,0,0,,,,\n";
//! let mut v1 = Vec::new();
//! let summary = GoogleClusterTraceConverter::new().convert(&mut raw.as_bytes(), &mut v1)?;
//! assert_eq!((summary.jobs, summary.tasks, summary.skipped_jobs), (1, 2, 0));
//!
//! // The emitted file is validated chronos-trace v1: load it back and
//! // check the method-of-moments fit (min 8 s, mean 10 s).
//! let spec = &TraceLoader::from_reader(v1.as_slice())?.load()?[0];
//! assert_eq!(spec.id.raw(), 42);
//! assert_eq!(spec.profile.t_min(), 8.0); // observed minimum
//! assert_eq!(spec.profile.beta(), 5.0); // mean/(mean − t_min) = 10/2
//! assert_eq!(spec.deadline_secs, 20.0); // 2 × fitted mean
//! # Ok(())
//! # }
//! ```

use crate::loader::{TraceWriteError, TraceWriter};
use chronos_core::{ChronosError, Pareto};
use chronos_sim::prelude::{JobId, JobSpec, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The command-line label of the 2011 Google cluster-trace format.
pub const GOOGLE_2011_FORMAT: &str = "google-2011";

/// Every foreign format label a [`converter_for`] call recognises.
pub const FORMATS: &[&str] = &[GOOGLE_2011_FORMAT];

/// Tail index assigned when a job's duration sample is degenerate (a
/// single completed task, or all durations equal): a tight Pareto whose
/// mean is only `8/7 ≈ 1.14×` its `t_min`.
pub const DEGENERATE_BETA: f64 = 8.0;

/// The leading `task_events` fields every row must carry (through
/// `event_type`); the real trace appends seven more that are not consumed.
const TASK_EVENT_MIN_FIELDS: usize = 6;

/// Microseconds per second: `task_events` timestamps are integer µs.
const US_PER_SEC: f64 = 1_000_000.0;

/// A typed foreign-trace conversion failure, naming the offending 1-based
/// input line (and 1-based column for field-level failures).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConvertError {
    /// An underlying I/O failure (message form of [`std::io::Error`]).
    Io {
        /// Line being read when the failure occurred.
        line: usize,
        /// The I/O error's message.
        message: String,
    },
    /// A row does not have the shape the foreign schema requires.
    Row {
        /// Offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A field is missing, unparsable or out of its domain.
    Field {
        /// Offending line.
        line: usize,
        /// 1-based column index of the field.
        column: usize,
        /// Field name in the foreign schema.
        name: String,
        /// What was wrong (includes the raw text where useful).
        message: String,
    },
    /// An event type code outside the foreign schema's enumeration.
    UnknownEventType {
        /// Offending line.
        line: usize,
        /// The unrecognised code.
        event_type: u32,
    },
    /// An event referencing a job or task that was never submitted, or a
    /// FINISH without a pending SCHEDULE.
    OrphanEvent {
        /// Offending line.
        line: usize,
        /// The event's job id.
        job_id: u64,
        /// The event's task index.
        task_index: u64,
        /// Why the event cannot be applied.
        message: String,
    },
    /// A task finished at or before the instant it was scheduled: no
    /// positive duration can be derived.
    NonPositiveDuration {
        /// Offending line.
        line: usize,
        /// The task's job id.
        job_id: u64,
        /// The task's index.
        task_index: u64,
    },
    /// A job carries more tasks than the v1 format's `u32` column holds.
    TooManyTasks {
        /// The oversized job.
        job_id: u64,
        /// Its task count.
        tasks: u64,
    },
    /// Emitting the converted rows failed (the wrapped
    /// [`TraceWriteError`]).
    Write(TraceWriteError),
}

impl ConvertError {
    /// The 1-based input line the error points at (0 for failures that
    /// have no single line, like write-side errors).
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            ConvertError::TooManyTasks { .. } | ConvertError::Write(_) => 0,
            ConvertError::Io { line, .. }
            | ConvertError::Row { line, .. }
            | ConvertError::Field { line, .. }
            | ConvertError::UnknownEventType { line, .. }
            | ConvertError::OrphanEvent { line, .. }
            | ConvertError::NonPositiveDuration { line, .. } => *line,
        }
    }
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Line 0 means "no single input line" (file open/rename
            // failures): naming it would send users hunting for a line
            // that does not exist.
            ConvertError::Io { line: 0, message } => write!(f, "I/O error: {message}"),
            ConvertError::Io { line, message } => {
                write!(f, "line {line}: I/O error: {message}")
            }
            ConvertError::Row { line, message } => {
                write!(f, "line {line}: malformed event row: {message}")
            }
            ConvertError::Field {
                line,
                column,
                name,
                message,
            } => write!(f, "line {line}, column {column} (`{name}`): {message}"),
            ConvertError::UnknownEventType { line, event_type } => write!(
                f,
                "line {line}: unknown event type {event_type} (the task_events schema defines 0..=8)"
            ),
            ConvertError::OrphanEvent {
                line,
                job_id,
                task_index,
                message,
            } => write!(
                f,
                "line {line}: orphan event for job {job_id} task {task_index}: {message}"
            ),
            ConvertError::NonPositiveDuration {
                line,
                job_id,
                task_index,
            } => write!(
                f,
                "line {line}: job {job_id} task {task_index} finished at or before its schedule instant: no positive duration can be derived"
            ),
            ConvertError::TooManyTasks { job_id, tasks } => write!(
                f,
                "job {job_id} has {tasks} tasks, more than the v1 map_tasks column holds"
            ),
            ConvertError::Write(err) => write!(f, "writing converted trace: {err}"),
        }
    }
}

impl std::error::Error for ConvertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvertError::Write(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TraceWriteError> for ConvertError {
    fn from(err: TraceWriteError) -> Self {
        ConvertError::Write(err)
    }
}

/// What a conversion produced, in serializable form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvertSummary {
    /// Foreign event rows consumed (blank lines excluded).
    pub events: u64,
    /// Jobs emitted into the v1 trace.
    pub jobs: u64,
    /// Map tasks across the emitted jobs.
    pub tasks: u64,
    /// Jobs dropped because no task of theirs ever finished (killed or
    /// lost outright) — they carry no duration statistics to fit.
    pub skipped_jobs: u64,
    /// First-to-last submission span of the emitted trace, seconds.
    pub span_secs: f64,
}

/// A streaming, bounded-memory converter from one foreign trace format
/// into validated `chronos-trace` v1.
///
/// Implementations read the foreign file front to back (never holding the
/// raw events), emit through [`TraceWriter`] (inheriting its validation
/// and bit-exact round trip), and report typed [`ConvertError`]s naming
/// the offending input line. The trait is object-safe so front ends like
/// `trace_tool convert` can dispatch on a format label via
/// [`converter_for`].
pub trait TraceConverter {
    /// The format label this converter accepts (e.g. `google-2011`).
    fn format(&self) -> &'static str;

    /// One-line human description of the foreign schema.
    fn description(&self) -> &'static str;

    /// Converts `input` (a foreign trace) into a v1 trace on `output`.
    ///
    /// # Errors
    ///
    /// A [`ConvertError`] naming the first offending input line, or
    /// wrapping the first write-side failure.
    fn convert(
        &self,
        input: &mut dyn BufRead,
        output: &mut dyn Write,
    ) -> Result<ConvertSummary, ConvertError>;

    /// Converts the file at `input` into a v1 trace file at `output`,
    /// buffering both ends. The conversion is staged through an
    /// `<output>.partial` sibling and renamed over `output` only on
    /// success, so a failed conversion never clobbers (or leaves a
    /// half-written file at) an existing path — mirroring the replay
    /// path's "no report on failure" contract.
    ///
    /// # Errors
    ///
    /// [`ConvertError::Io`] when either file cannot be opened (or the
    /// staging file cannot be renamed into place), plus every
    /// [`TraceConverter::convert`] failure.
    fn convert_files(&self, input: &Path, output: &Path) -> Result<ConvertSummary, ConvertError> {
        let source = File::open(input).map_err(|err| ConvertError::Io {
            line: 0,
            message: format!("{}: {err}", input.display()),
        })?;
        let file_name = output.file_name().unwrap_or_default().to_string_lossy();
        let staging = output.with_file_name(format!("{file_name}.partial"));
        let staged = (|| {
            let sink = File::create(&staging).map_err(|err| ConvertError::Io {
                line: 0,
                message: format!("{}: {err}", staging.display()),
            })?;
            let mut reader = BufReader::new(source);
            let mut writer = BufWriter::new(sink);
            let summary = self.convert(&mut reader, &mut writer)?;
            writer.flush().map_err(|err| ConvertError::Io {
                line: 0,
                message: format!("{}: {err}", staging.display()),
            })?;
            Ok(summary)
        })();
        match staged {
            Ok(summary) => {
                std::fs::rename(&staging, output).map_err(|err| ConvertError::Io {
                    line: 0,
                    message: format!(
                        "renaming {} -> {}: {err}",
                        staging.display(),
                        output.display()
                    ),
                })?;
                Ok(summary)
            }
            Err(err) => {
                let _ = std::fs::remove_file(&staging);
                Err(err)
            }
        }
    }
}

/// Looks up the converter registered under a format label (see
/// [`FORMATS`]), configured with its defaults.
#[must_use]
pub fn converter_for(format: &str) -> Option<Box<dyn TraceConverter>> {
    match format {
        GOOGLE_2011_FORMAT => Some(Box::new(GoogleClusterTraceConverter::new())),
        _ => None,
    }
}

/// The `task_events` state-transition codes of the 2011 trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventType {
    Submit,
    Schedule,
    Evict,
    Fail,
    Finish,
    Kill,
    Lost,
    UpdatePending,
    UpdateRunning,
}

impl EventType {
    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(EventType::Submit),
            1 => Some(EventType::Schedule),
            2 => Some(EventType::Evict),
            3 => Some(EventType::Fail),
            4 => Some(EventType::Finish),
            5 => Some(EventType::Kill),
            6 => Some(EventType::Lost),
            7 => Some(EventType::UpdatePending),
            8 => Some(EventType::UpdateRunning),
            _ => None,
        }
    }
}

/// Per-task aggregation state: the in-flight attempt and whether a
/// duration was already collected (only the first completion counts).
#[derive(Debug, Default)]
struct TaskAgg {
    scheduled_at_us: Option<u64>,
    completed: bool,
}

/// Per-job aggregation state: everything the fit needs, nothing more.
#[derive(Debug)]
struct JobAgg {
    first_submit_us: u64,
    tasks: HashMap<u64, TaskAgg>,
    completed: u64,
    sum_duration_us: u64,
    min_duration_us: u64,
}

/// Converter for the 2011 Google cluster-trace `task_events` CSV schema.
/// See the [module docs](self) for the schema, the aggregation rules and
/// the Pareto fit.
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleClusterTraceConverter {
    deadline_factor: f64,
}

impl GoogleClusterTraceConverter {
    /// A converter with the paper's Figure 4 deadline setting: each job's
    /// deadline is twice its fitted mean task time.
    #[must_use]
    pub fn new() -> Self {
        GoogleClusterTraceConverter {
            deadline_factor: 2.0,
        }
    }

    /// Replaces the deadline factor (the multiple of the fitted mean task
    /// time each emitted job gets as its deadline).
    ///
    /// # Errors
    ///
    /// [`ChronosError::InvalidParameter`] unless `factor` is finite and
    /// greater than 1 (a deadline at or below the mean leaves no room for
    /// any strategy).
    pub fn with_deadline_factor(mut self, factor: f64) -> Result<Self, ChronosError> {
        if !(factor.is_finite() && factor > 1.0) {
            return Err(ChronosError::invalid(
                "deadline_factor",
                factor,
                "a finite value > 1",
            ));
        }
        self.deadline_factor = factor;
        Ok(self)
    }

    /// The configured deadline factor.
    #[must_use]
    pub fn deadline_factor(&self) -> f64 {
        self.deadline_factor
    }

    /// Applies one event row to the aggregation state.
    fn consume_event(
        &self,
        text: &str,
        line: usize,
        jobs: &mut HashMap<u64, JobAgg>,
    ) -> Result<(), ConvertError> {
        // Only the first six fields are consumed; splitting lazily into a
        // fixed array keeps the per-event hot loop allocation-free (the
        // real 30-hour trace has ~10⁸ rows).
        let mut split = text.split(',');
        let mut fields = [""; TASK_EVENT_MIN_FIELDS];
        for (index, slot) in fields.iter_mut().enumerate() {
            match split.next() {
                Some(raw) => *slot = raw.trim(),
                None => {
                    return Err(ConvertError::Row {
                        line,
                        message: format!(
                            "row has {index} fields; the task_events schema carries at least \
                             {TASK_EVENT_MIN_FIELDS} (timestamp, missing_info, job_id, task_index, \
                             machine_id, event_type)",
                        ),
                    })
                }
            }
        }
        let parse_u64 = |column: usize, name: &str| -> Result<u64, ConvertError> {
            fields[column]
                .parse::<u64>()
                .map_err(|_| ConvertError::Field {
                    line,
                    column: column + 1,
                    name: name.to_string(),
                    message: format!("`{}` is not a u64", fields[column]),
                })
        };
        let timestamp_us = parse_u64(0, "timestamp")?;
        let job_id = parse_u64(2, "job_id")?;
        let task_index = parse_u64(3, "task_index")?;
        let event_code =
            u32::try_from(parse_u64(5, "event_type")?).map_err(|_| ConvertError::Field {
                line,
                column: 6,
                name: "event_type".to_string(),
                message: format!("`{}` is not a u32", fields[5]),
            })?;
        let event = EventType::from_code(event_code).ok_or(ConvertError::UnknownEventType {
            line,
            event_type: event_code,
        })?;

        if event == EventType::Submit {
            let job = jobs.entry(job_id).or_insert_with(|| JobAgg {
                first_submit_us: timestamp_us,
                tasks: HashMap::new(),
                completed: 0,
                sum_duration_us: 0,
                min_duration_us: u64::MAX,
            });
            job.first_submit_us = job.first_submit_us.min(timestamp_us);
            job.tasks.entry(task_index).or_default();
            return Ok(());
        }

        let orphan = |message: &str| ConvertError::OrphanEvent {
            line,
            job_id,
            task_index,
            message: message.to_string(),
        };
        let job = jobs
            .get_mut(&job_id)
            .ok_or_else(|| orphan("no SUBMIT for this job was seen"))?;
        let task = job
            .tasks
            .get_mut(&task_index)
            .ok_or_else(|| orphan("no SUBMIT for this task was seen"))?;
        match event {
            EventType::Schedule => task.scheduled_at_us = Some(timestamp_us),
            EventType::Evict | EventType::Fail | EventType::Kill | EventType::Lost => {
                // The in-flight attempt is abandoned; a later SCHEDULE may
                // start a fresh one without re-submission.
                task.scheduled_at_us = None;
            }
            EventType::Finish => {
                let started_us = task
                    .scheduled_at_us
                    .take()
                    .ok_or_else(|| orphan("FINISH without a pending SCHEDULE"))?;
                if timestamp_us <= started_us {
                    return Err(ConvertError::NonPositiveDuration {
                        line,
                        job_id,
                        task_index,
                    });
                }
                let first_completion = !task.completed;
                task.completed = true;
                if first_completion {
                    let duration_us = timestamp_us - started_us;
                    job.completed += 1;
                    job.sum_duration_us += duration_us;
                    job.min_duration_us = job.min_duration_us.min(duration_us);
                }
            }
            EventType::UpdatePending | EventType::UpdateRunning => {}
            EventType::Submit => unreachable!("handled before the lookup"),
        }
        Ok(())
    }

    /// Fits, sorts and writes the aggregated jobs; returns the summary.
    fn finalize(
        &self,
        jobs: HashMap<u64, JobAgg>,
        events: u64,
        output: &mut dyn Write,
    ) -> Result<ConvertSummary, ConvertError> {
        let mut skipped = 0u64;
        // (submit_us, job_id, task_count, t_min_secs, beta)
        let mut rows: Vec<(u64, u64, u32, f64, f64)> = Vec::with_capacity(jobs.len());
        for (job_id, agg) in jobs {
            if agg.completed == 0 {
                skipped += 1;
                continue;
            }
            let task_count =
                u32::try_from(agg.tasks.len()).map_err(|_| ConvertError::TooManyTasks {
                    job_id,
                    tasks: agg.tasks.len() as u64,
                })?;
            let (t_min, beta) = fit_pareto(agg.min_duration_us, agg.sum_duration_us, agg.completed);
            rows.push((agg.first_submit_us, job_id, task_count, t_min, beta));
        }
        rows.sort_unstable_by_key(|&(submit_us, job_id, ..)| (submit_us, job_id));

        let base_us = rows.first().map_or(0, |row| row.0);
        let span_secs = rows
            .last()
            .map_or(0.0, |row| (row.0 - base_us) as f64 / US_PER_SEC);
        let mut writer = TraceWriter::new(output, Some(rows.len() as u64))?;
        let mut tasks = 0u64;
        let jobs_written = rows.len() as u64;
        for (submit_us, job_id, task_count, t_min, beta) in rows {
            let profile = Pareto::new(t_min, beta)
                .expect("fit is valid by construction: t_min > 0 and 1 < beta < inf");
            let mean = profile.mean().expect("beta > 1 has a finite mean");
            let spec = JobSpec::new(
                JobId::new(job_id),
                SimTime::from_secs((submit_us - base_us) as f64 / US_PER_SEC),
                self.deadline_factor * mean,
                task_count as usize,
            )
            .with_profile(profile);
            writer.write_job(&spec)?;
            tasks += u64::from(task_count);
        }
        writer.finish()?;
        Ok(ConvertSummary {
            events,
            jobs: jobs_written,
            tasks,
            skipped_jobs: skipped,
            span_secs,
        })
    }
}

impl Default for GoogleClusterTraceConverter {
    fn default() -> Self {
        GoogleClusterTraceConverter::new()
    }
}

impl TraceConverter for GoogleClusterTraceConverter {
    fn format(&self) -> &'static str {
        GOOGLE_2011_FORMAT
    }

    fn description(&self) -> &'static str {
        "2011 Google cluster-trace task_events CSV (one row per task state transition)"
    }

    fn convert(
        &self,
        input: &mut dyn BufRead,
        output: &mut dyn Write,
    ) -> Result<ConvertSummary, ConvertError> {
        let mut jobs: HashMap<u64, JobAgg> = HashMap::new();
        let mut line = 0usize;
        let mut events = 0u64;
        let mut buffer = String::new();
        loop {
            buffer.clear();
            let read = input
                .read_line(&mut buffer)
                .map_err(|err| ConvertError::Io {
                    line: line + 1,
                    message: err.to_string(),
                })?;
            if read == 0 {
                break;
            }
            line += 1;
            let text = buffer.trim();
            if text.is_empty() {
                continue;
            }
            events += 1;
            self.consume_event(text, line, &mut jobs)?;
        }
        self.finalize(jobs, events, output)
    }
}

/// Method-of-moments Pareto fit from a job's duration statistics (see the
/// [module docs](self)): `t_min` is the observed minimum, `β` makes the
/// fitted mean reproduce the observed mean, and a degenerate or
/// numerically collapsing sample falls back to [`DEGENERATE_BETA`].
fn fit_pareto(min_duration_us: u64, sum_duration_us: u64, completed: u64) -> (f64, f64) {
    let t_min = min_duration_us as f64 / US_PER_SEC;
    let mean = (sum_duration_us as f64 / completed as f64) / US_PER_SEC;
    let beta = if mean > t_min {
        let fitted = mean / (mean - t_min);
        if fitted.is_finite() {
            fitted
        } else {
            DEGENERATE_BETA
        }
    } else {
        DEGENERATE_BETA
    };
    (t_min, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::TraceLoader;

    /// Builds a task_events row with the full 13-column shape.
    fn row(timestamp_us: u64, job: u64, task: u64, event: u32) -> String {
        format!("{timestamp_us},,{job},{task},,{event},user,0,0,0.1,0.1,0.01,0")
    }

    fn convert_str(raw: &str) -> Result<(Vec<u8>, ConvertSummary), ConvertError> {
        let mut out = Vec::new();
        let summary = GoogleClusterTraceConverter::new().convert(&mut raw.as_bytes(), &mut out)?;
        Ok((out, summary))
    }

    #[test]
    fn two_jobs_are_fitted_sorted_and_rebased() {
        // Job 9 submits *later* in the input but earlier in time; job 4's
        // durations are 30 s and 60 s (min 30, mean 45, beta = 45/15 = 3).
        let raw = [
            row(5_000_000, 4, 0, 0),
            row(6_000_000, 4, 0, 1),
            row(2_000_000, 9, 0, 0),
            row(3_000_000, 9, 0, 1),
            row(5_000_000, 4, 1, 0),
            row(7_000_000, 4, 1, 1),
            row(36_000_000, 4, 0, 4),
            row(13_000_000, 9, 0, 4), // 10 s, single task: degenerate
            row(67_000_000, 4, 1, 4),
        ]
        .join("\n");
        let (out, summary) = convert_str(&raw).unwrap();
        assert_eq!(
            (summary.jobs, summary.tasks, summary.skipped_jobs),
            (2, 3, 0)
        );
        assert_eq!(summary.events, 9);
        assert_eq!(summary.span_secs, 3.0);

        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(specs.len(), 2);
        // Sorted by submission, rebased to 0: job 9 first.
        assert_eq!(specs[0].id.raw(), 9);
        assert_eq!(specs[0].submit_time, SimTime::ZERO);
        assert_eq!(specs[0].profile.t_min(), 10.0);
        assert_eq!(specs[0].profile.beta(), DEGENERATE_BETA);
        assert_eq!(specs[1].id.raw(), 4);
        assert_eq!(specs[1].submit_time, SimTime::from_secs(3.0));
        assert_eq!(specs[1].profile.t_min(), 30.0);
        assert_eq!(specs[1].profile.beta(), 3.0);
        // Deadline = 2 x fitted mean = 2 x 45 s.
        assert_eq!(specs[1].deadline_secs, 90.0);
    }

    #[test]
    fn eviction_resets_the_attempt_and_resubmits_are_harmless() {
        // Task scheduled, evicted, rescheduled: only the second attempt's
        // 25 s duration counts. A fresh SUBMIT of the same task is a no-op.
        let raw = [
            row(0, 7, 0, 0),
            row(1_000_000, 7, 0, 1),
            row(5_000_000, 7, 0, 2),
            row(2_000_000, 7, 0, 0), // re-submit keeps earliest submit (0)
            row(10_000_000, 7, 0, 1),
            row(35_000_000, 7, 0, 4),
        ]
        .join("\n");
        let (out, summary) = convert_str(&raw).unwrap();
        assert_eq!((summary.jobs, summary.tasks), (1, 1));
        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(specs[0].profile.t_min(), 25.0);
    }

    #[test]
    fn jobs_without_a_completed_task_are_skipped() {
        let raw = [
            row(0, 1, 0, 0),
            row(1_000_000, 1, 0, 1),
            row(2_000_000, 1, 0, 5), // killed
            row(0, 2, 0, 0),
            row(1_000_000, 2, 0, 1),
            row(9_000_000, 2, 0, 4),
        ]
        .join("\n");
        let (out, summary) = convert_str(&raw).unwrap();
        assert_eq!((summary.jobs, summary.skipped_jobs), (1, 1));
        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(specs[0].id.raw(), 2);
    }

    #[test]
    fn only_the_first_completion_of_a_task_counts() {
        // The task finishes (8 s), is resubmitted, runs again (100 s): the
        // second completion must not skew the statistics.
        let raw = [
            row(0, 3, 0, 0),
            row(1_000_000, 3, 0, 1),
            row(9_000_000, 3, 0, 4),
            row(10_000_000, 3, 0, 0),
            row(11_000_000, 3, 0, 1),
            row(111_000_000, 3, 0, 4),
        ]
        .join("\n");
        let (out, summary) = convert_str(&raw).unwrap();
        assert_eq!(summary.tasks, 1);
        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(specs[0].profile.t_min(), 8.0);
    }

    #[test]
    fn empty_input_converts_to_a_header_only_trace() {
        let (out, summary) = convert_str("").unwrap();
        assert_eq!(
            summary,
            ConvertSummary {
                events: 0,
                jobs: 0,
                tasks: 0,
                skipped_jobs: 0,
                span_secs: 0.0,
            }
        );
        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        assert!(specs.is_empty());
    }

    #[test]
    fn blank_lines_are_skipped_but_counted_for_line_numbers() {
        let raw = format!("\n{}\n\nnot-a-row\n", row(0, 1, 0, 0));
        let err = convert_str(&raw).unwrap_err();
        assert_eq!(err.line(), 4);
        assert!(matches!(err, ConvertError::Row { .. }), "{err}");
    }

    #[test]
    fn short_rows_and_bad_fields_name_line_and_column() {
        let err = convert_str("1,2,3\n").unwrap_err();
        assert!(matches!(err, ConvertError::Row { line: 1, .. }), "{err}");

        let err = convert_str("abc,,1,0,,0,u,0,0,,,,\n").unwrap_err();
        assert_eq!(
            err,
            ConvertError::Field {
                line: 1,
                column: 1,
                name: "timestamp".into(),
                message: "`abc` is not a u64".into(),
            }
        );
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(err.to_string().contains("column 1"), "{err}");

        let err = convert_str("0,,x,0,,0,u,0,0,,,,\n").unwrap_err();
        assert!(
            matches!(
                err,
                ConvertError::Field {
                    line: 1,
                    column: 3,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn unknown_event_types_are_rejected() {
        let err = convert_str(&row(0, 1, 0, 9)).unwrap_err();
        assert_eq!(
            err,
            ConvertError::UnknownEventType {
                line: 1,
                event_type: 9
            }
        );
    }

    #[test]
    fn orphan_events_name_the_line_and_reason() {
        // SCHEDULE for a job never submitted.
        let err = convert_str(&row(0, 1, 0, 1)).unwrap_err();
        assert!(
            matches!(
                err,
                ConvertError::OrphanEvent {
                    line: 1,
                    job_id: 1,
                    ..
                }
            ),
            "{err}"
        );
        // SCHEDULE for a task never submitted (job known through task 0).
        let raw = [row(0, 1, 0, 0), row(1_000_000, 1, 5, 1)].join("\n");
        let err = convert_str(&raw).unwrap_err();
        assert!(
            matches!(
                err,
                ConvertError::OrphanEvent {
                    line: 2,
                    task_index: 5,
                    ..
                }
            ),
            "{err}"
        );
        // FINISH without a pending SCHEDULE.
        let raw = [row(0, 1, 0, 0), row(1_000_000, 1, 0, 4)].join("\n");
        let err = convert_str(&raw).unwrap_err();
        assert!(err.to_string().contains("FINISH without"), "{err}");
    }

    #[test]
    fn zero_duration_tasks_are_rejected() {
        let raw = [
            row(0, 1, 0, 0),
            row(1_000_000, 1, 0, 1),
            row(1_000_000, 1, 0, 4),
        ]
        .join("\n");
        let err = convert_str(&raw).unwrap_err();
        assert_eq!(
            err,
            ConvertError::NonPositiveDuration {
                line: 3,
                job_id: 1,
                task_index: 0
            }
        );
    }

    #[test]
    fn deadline_factor_is_validated_and_applied() {
        assert!(GoogleClusterTraceConverter::new()
            .with_deadline_factor(1.0)
            .is_err());
        assert!(GoogleClusterTraceConverter::new()
            .with_deadline_factor(f64::NAN)
            .is_err());
        let converter = GoogleClusterTraceConverter::new()
            .with_deadline_factor(3.0)
            .unwrap();
        assert_eq!(converter.deadline_factor(), 3.0);

        let raw = [
            row(0, 1, 0, 0),
            row(1_000_000, 1, 0, 1),
            row(11_000_000, 1, 0, 4),
        ]
        .join("\n");
        let mut out = Vec::new();
        converter.convert(&mut raw.as_bytes(), &mut out).unwrap();
        let specs = TraceLoader::from_reader(out.as_slice())
            .unwrap()
            .load()
            .unwrap();
        // Degenerate single task: mean = 10 * 8/7, deadline = 3x that.
        let mean = specs[0].profile.mean().unwrap();
        assert_eq!(specs[0].deadline_secs, 3.0 * mean);
    }

    #[test]
    fn fit_matches_the_observed_moments_exactly() {
        // min 30 s, mean 45 s: beta = 45/15 = 3, fitted mean = 30*3/2 = 45.
        let (t_min, beta) = fit_pareto(30_000_000, 90_000_000, 2);
        assert_eq!((t_min, beta), (30.0, 3.0));
        let fitted_mean = Pareto::new(t_min, beta).unwrap().mean().unwrap();
        assert_eq!(fitted_mean, 45.0);
        // Degenerate: all durations equal.
        let (t_min, beta) = fit_pareto(10_000_000, 40_000_000, 4);
        assert_eq!((t_min, beta), (10.0, DEGENERATE_BETA));
    }

    #[test]
    fn converter_registry_knows_its_formats() {
        let converter = converter_for(GOOGLE_2011_FORMAT).unwrap();
        assert_eq!(converter.format(), GOOGLE_2011_FORMAT);
        assert!(!converter.description().is_empty());
        assert!(converter_for("alibaba-2018").is_none());
        assert_eq!(FORMATS, &[GOOGLE_2011_FORMAT]);
    }

    #[test]
    fn convert_files_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("chronos-convert-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("raw.csv");
        let output = dir.join("converted.trace");
        let raw = [
            row(0, 5, 0, 0),
            row(1_000_000, 5, 0, 1),
            row(21_000_000, 5, 0, 4),
        ]
        .join("\n");
        std::fs::write(&input, raw).unwrap();
        let summary = GoogleClusterTraceConverter::new()
            .convert_files(&input, &output)
            .unwrap();
        assert_eq!(summary.jobs, 1);
        let specs = TraceLoader::open(&output).unwrap().load().unwrap();
        assert_eq!(specs[0].profile.t_min(), 20.0);
        std::fs::remove_dir_all(&dir).unwrap();

        let missing = GoogleClusterTraceConverter::new()
            .convert_files(Path::new("/nonexistent/raw.csv"), Path::new("/tmp/x.trace"));
        let err = missing.unwrap_err();
        assert!(matches!(err, ConvertError::Io { line: 0, .. }));
        // No input line to blame: the message must not invent a "line 0".
        assert!(!err.to_string().contains("line 0"), "{err}");
        assert!(err.to_string().contains("I/O error"), "{err}");
    }

    #[test]
    fn failed_conversion_preserves_an_existing_output_file() {
        let dir =
            std::env::temp_dir().join(format!("chronos-convert-stage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("raw.csv");
        let output = dir.join("converted.trace");

        // First conversion succeeds and lands a good trace at `output`.
        let good = [
            row(0, 5, 0, 0),
            row(1_000_000, 5, 0, 1),
            row(21_000_000, 5, 0, 4),
        ]
        .join("\n");
        std::fs::write(&input, good).unwrap();
        GoogleClusterTraceConverter::new()
            .convert_files(&input, &output)
            .unwrap();
        let good_bytes = std::fs::read(&output).unwrap();
        assert!(!good_bytes.is_empty());

        // A failed re-conversion must leave the good trace untouched and
        // clean up its staging file.
        std::fs::write(&input, "not,a,valid,row\n").unwrap();
        let err = GoogleClusterTraceConverter::new()
            .convert_files(&input, &output)
            .unwrap_err();
        assert!(matches!(err, ConvertError::Row { line: 1, .. }), "{err}");
        assert_eq!(std::fs::read(&output).unwrap(), good_bytes);
        assert!(!dir.join("converted.trace.partial").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
