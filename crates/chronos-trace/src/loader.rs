//! On-disk trace ingestion: the `chronos-trace` v1 file format, its
//! streaming loader and its round-tripping writer.
//!
//! The paper's large-scale evaluation (Figures 3–5) replays a real cluster
//! trace; this module is how such a trace reaches the simulator. A trace
//! file is loaded into validated [`JobSpec`]s either all at once
//! ([`TraceLoader::load`]) or as bounded-memory chunks
//! ([`TraceLoader::stream`]) that feed
//! `chronos_sim::shard::ShardedRunner::run_chunked_fallible` directly, so a
//! file of millions of jobs is replayed without ever materializing the full
//! spec list.
//!
//! # The v1 on-disk format
//!
//! A trace file is UTF-8 text with three sections:
//!
//! 1. **Line 1 — JSON header.** A single-line JSON object:
//!
//!    ```text
//!    {"format":"chronos-trace","version":1,"jobs":2700,"default_beta":1.5,"default_price":1.0}
//!    ```
//!
//!    `format` must be `"chronos-trace"` and `version` must be a supported
//!    [`FORMAT_VERSION`]. `jobs` (optional) declares the row count: when
//!    present, a file that ends early is rejected as truncated and extra
//!    rows are rejected as trailing. `default_beta` / `default_price`
//!    (optional) supply per-file fallbacks for rows of files that omit the
//!    corresponding optional columns.
//!
//! 2. **Line 2 — CSV column header.** The six **core columns**, required in
//!    exactly this order:
//!
//!    ```text
//!    job_id,submit_time_s,map_tasks,reduce_tasks,mean_task_duration_s,deadline_s
//!    ```
//!
//!    optionally followed (in any order) by the **extended columns**
//!    `price`, `beta`, `t_min_s` and `task_sizes`. Unknown column names are
//!    rejected, not skipped — a typo must not silently drop data.
//!
//! 3. **Lines 3… — one CSV row per job**, sorted by submission time
//!    (non-decreasing; ties allowed). Fields may carry surrounding spaces.
//!    Blank lines are ignored.
//!
//! Column semantics:
//!
//! | column | type | meaning |
//! |---|---|---|
//! | `job_id` | `u64` | caller-assigned id, unique within the trace (enforced on both ends: a repeated id is [`TraceParseError::DuplicateJobId`] on load and [`TraceWriteError::DuplicateJobId`] on write) |
//! | `submit_time_s` | `f64 ≥ 0` | absolute submission instant, seconds |
//! | `map_tasks` | `u32 ≥ 1` | number of map tasks |
//! | `reduce_tasks` | `u32` | carried for format fidelity; the simulator models the map phase (Section III), so this column is validated but not replayed |
//! | `mean_task_duration_s` | `f64 > 0` | mean task execution time `E[T] = t_min·β/(β−1)` |
//! | `deadline_s` | `f64 > 0` | deadline relative to submission, seconds |
//! | `price` | `f64 ≥ 0` | per-unit-time VM price (default: header `default_price`, else 1) |
//! | `beta` | `f64 > 1` | Pareto tail index (default: header `default_beta`; required one way or the other) |
//! | `t_min_s` | `f64 > 0` | Pareto scale; when present it must be consistent with the mean, when absent it is derived as `mean·(β−1)/β` |
//! | `task_sizes` | `;`-joined `f64 > 0` | per-task split-size factors; empty means all-nominal; count must equal `map_tasks` |
//!
//! # Round-trip guarantee
//!
//! [`TraceWriter`] emits every extended column with Rust's shortest
//! round-trip `f64` formatting, so **write → load is bit-exact**: the loaded
//! [`JobSpec`]s compare equal (`==`) to the written ones, down to the last
//! bit of every float and microsecond of every [`SimTime`] — which is what
//! lets CI diff a file-replayed simulation report against an in-memory one
//! byte for byte. `mean_task_duration_s` is recomputed from `t_min_s` and
//! `beta` on load and cross-checked against the stored column, so a
//! hand-edited file cannot smuggle in an inconsistent profile.
//!
//! # Errors
//!
//! Every parse failure is a typed [`TraceParseError`] naming the 1-based
//! line (and, for field-level failures, the 1-based column) of the offence.
//!
//! # Example
//!
//! ```
//! use chronos_trace::loader::{TraceLoader, TraceWriter};
//! use chronos_trace::prelude::GoogleTraceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let jobs = GoogleTraceConfig::scaled(50, 7).generate()?.into_jobs();
//! let mut file = Vec::new();
//! let mut writer = TraceWriter::new(&mut file, Some(jobs.len() as u64))?;
//! writer.write_all(&jobs)?;
//! writer.finish()?;
//!
//! let loaded = TraceLoader::from_reader(file.as_slice())?.load()?;
//! assert_eq!(loaded, jobs); // bit-exact round trip
//! # Ok(())
//! # }
//! ```

use chronos_core::Pareto;
use chronos_sim::prelude::{JobId, JobSpec, SimTime, TaskSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The `format` discriminator every header must carry.
pub const FORMAT_NAME: &str = "chronos-trace";

/// The newest (and currently only) supported on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// The six core columns, in the required order.
const CORE_COLUMNS: [&str; 6] = [
    "job_id",
    "submit_time_s",
    "map_tasks",
    "reduce_tasks",
    "mean_task_duration_s",
    "deadline_s",
];

/// The recognised extended columns (any order after the core ones).
const EXTENDED_COLUMNS: [&str; 4] = ["price", "beta", "t_min_s", "task_sizes"];

/// Relative tolerance of the `mean_task_duration_s` vs `t_min_s`/`beta`
/// consistency cross-check (absorbs the last-ulp skew of recomputing the
/// mean, still catches any hand-edit that changes a profile).
const MEAN_CONSISTENCY_RTOL: f64 = 1e-9;

/// A typed trace-file parse failure, naming the offending 1-based line (and
/// 1-based column for field-level failures).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceParseError {
    /// An underlying I/O failure (message form of [`std::io::Error`]).
    Io {
        /// Line being read when the failure occurred.
        line: usize,
        /// The I/O error's message.
        message: String,
    },
    /// The file is empty (no header line).
    EmptyFile,
    /// Line 1 is not a valid `chronos-trace` JSON header.
    MalformedHeader {
        /// Offending line (always 1).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The header's `version` is not supported by this build.
    UnsupportedVersion {
        /// Offending line (always 1).
        line: usize,
        /// The version the file declared.
        found: u32,
        /// The newest version this build reads.
        supported: u32,
    },
    /// Line 2 is not a valid column header.
    MalformedColumns {
        /// Offending line (always 2).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The column header names a column this version does not define.
    UnknownColumn {
        /// Offending line (always 2).
        line: usize,
        /// 1-based position of the unknown column.
        column: usize,
        /// The unrecognised name.
        name: String,
    },
    /// A data-row field is missing, unparsable or out of its domain.
    Field {
        /// Offending line.
        line: usize,
        /// 1-based column index of the field.
        column: usize,
        /// Column name.
        name: String,
        /// What was wrong (includes the raw text where useful).
        message: String,
    },
    /// A row's submission time is earlier than its predecessor's.
    NonMonotonicSubmit {
        /// Offending line.
        line: usize,
        /// The previous row's submission time, seconds.
        previous_secs: f64,
        /// This row's (earlier) submission time, seconds.
        found_secs: f64,
    },
    /// A row repeats a `job_id` an earlier row already used: the v1 format
    /// requires job ids unique within the trace.
    DuplicateJobId {
        /// Offending line (the second occurrence).
        line: usize,
        /// The repeated id.
        job_id: u64,
    },
    /// The file ended before yielding the job count the header declared.
    Truncated {
        /// Line at which the end of file was hit.
        line: usize,
        /// Declared job count.
        declared: u64,
        /// Rows actually found.
        found: u64,
    },
    /// The file carries more rows than the header declared.
    TrailingRow {
        /// Line of the first surplus row.
        line: usize,
        /// Declared job count.
        declared: u64,
    },
    /// The caller asked [`TraceLoader::stream`] for a zero chunk size.
    InvalidChunkSize,
    /// A row parsed but assembles into an invalid [`JobSpec`].
    InvalidSpec {
        /// Offending line.
        line: usize,
        /// The spec-level validation failure.
        message: String,
    },
}

impl TraceParseError {
    /// The 1-based line the error points at (0 for [`EmptyFile`], which has
    /// no line to point at).
    ///
    /// [`EmptyFile`]: TraceParseError::EmptyFile
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            TraceParseError::EmptyFile | TraceParseError::InvalidChunkSize => 0,
            TraceParseError::Io { line, .. }
            | TraceParseError::MalformedHeader { line, .. }
            | TraceParseError::UnsupportedVersion { line, .. }
            | TraceParseError::MalformedColumns { line, .. }
            | TraceParseError::UnknownColumn { line, .. }
            | TraceParseError::Field { line, .. }
            | TraceParseError::NonMonotonicSubmit { line, .. }
            | TraceParseError::DuplicateJobId { line, .. }
            | TraceParseError::Truncated { line, .. }
            | TraceParseError::TrailingRow { line, .. }
            | TraceParseError::InvalidSpec { line, .. } => *line,
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Io { line, message } => {
                write!(f, "line {line}: I/O error: {message}")
            }
            TraceParseError::EmptyFile => {
                write!(f, "empty trace file (expected a {FORMAT_NAME} JSON header)")
            }
            TraceParseError::MalformedHeader { line, message } => {
                write!(f, "line {line}: malformed trace header: {message}")
            }
            TraceParseError::UnsupportedVersion {
                line,
                found,
                supported,
            } => write!(
                f,
                "line {line}: unsupported {FORMAT_NAME} version {found} (this build reads up to version {supported})"
            ),
            TraceParseError::MalformedColumns { line, message } => {
                write!(f, "line {line}: malformed column header: {message}")
            }
            TraceParseError::UnknownColumn { line, column, name } => write!(
                f,
                "line {line}, column {column}: unknown column `{name}` (core columns: {}; extended: {})",
                CORE_COLUMNS.join(", "),
                EXTENDED_COLUMNS.join(", ")
            ),
            TraceParseError::Field {
                line,
                column,
                name,
                message,
            } => write!(f, "line {line}, column {column} (`{name}`): {message}"),
            TraceParseError::NonMonotonicSubmit {
                line,
                previous_secs,
                found_secs,
            } => write!(
                f,
                "line {line}: non-monotonic submit time: {found_secs} s is earlier than the previous row's {previous_secs} s"
            ),
            TraceParseError::DuplicateJobId { line, job_id } => write!(
                f,
                "line {line}: duplicate job_id {job_id} (v1 requires job ids unique within the trace)"
            ),
            TraceParseError::Truncated {
                line,
                declared,
                found,
            } => write!(
                f,
                "line {line}: truncated trace: header declared {declared} jobs but the file ends after {found}"
            ),
            TraceParseError::TrailingRow { line, declared } => write!(
                f,
                "line {line}: trailing row: header declared {declared} jobs but the file carries more"
            ),
            TraceParseError::InvalidChunkSize => {
                write!(f, "chunk_size must be at least one job per chunk")
            }
            TraceParseError::InvalidSpec { line, message } => {
                write!(f, "line {line}: invalid job specification: {message}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// A typed trace-file write failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceWriteError {
    /// An underlying I/O failure (message form of [`std::io::Error`]).
    Io {
        /// The I/O error's message.
        message: String,
    },
    /// A job's submission time precedes the previously written job's: the
    /// format requires rows sorted by submission time.
    NonMonotonicSubmit {
        /// The offending job.
        job: u64,
        /// The previously written job's submission time, seconds.
        previous_secs: f64,
        /// The offending (earlier) submission time, seconds.
        found_secs: f64,
    },
    /// A job repeats an id a previously written job already used: the v1
    /// format requires job ids unique within the trace, and a file
    /// violating that would be rejected by the loader.
    DuplicateJobId {
        /// The repeated id.
        job: u64,
    },
    /// A job's task-time profile has `β ≤ 1`: its mean task time is
    /// infinite, so the mandatory `mean_task_duration_s` column cannot be
    /// produced.
    InfiniteMean {
        /// The offending job.
        job: u64,
        /// Its tail index.
        beta: f64,
    },
    /// The job fails [`JobSpec::validate`]; writing it would produce a file
    /// the loader rejects.
    InvalidSpec {
        /// The offending job.
        job: u64,
        /// The spec-level validation failure.
        message: String,
    },
    /// [`TraceWriter::finish`] was reached with fewer or more jobs written
    /// than the header declared.
    DeclaredCountMismatch {
        /// Declared job count.
        declared: u64,
        /// Jobs actually written.
        written: u64,
    },
}

impl fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceWriteError::Io { message } => write!(f, "I/O error: {message}"),
            TraceWriteError::NonMonotonicSubmit {
                job,
                previous_secs,
                found_secs,
            } => write!(
                f,
                "job {job}: submit time {found_secs} s is earlier than the previously written row's {previous_secs} s (rows must be sorted by submission time)"
            ),
            TraceWriteError::DuplicateJobId { job } => write!(
                f,
                "job {job}: duplicate job_id (v1 requires job ids unique within the trace)"
            ),
            TraceWriteError::InfiniteMean { job, beta } => write!(
                f,
                "job {job}: tail index beta = {beta} has an infinite mean task time; the trace format requires beta > 1"
            ),
            TraceWriteError::InvalidSpec { job, message } => {
                write!(f, "job {job}: invalid job specification: {message}")
            }
            TraceWriteError::DeclaredCountMismatch { declared, written } => write!(
                f,
                "header declared {declared} jobs but {written} were written"
            ),
        }
    }
}

impl std::error::Error for TraceWriteError {}

impl From<std::io::Error> for TraceWriteError {
    fn from(err: std::io::Error) -> Self {
        TraceWriteError::Io {
            message: err.to_string(),
        }
    }
}

/// The raw JSON shape of header line 1 (absent optional keys deserialize to
/// `None` under the vendored serde).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawHeader {
    format: String,
    version: u32,
    jobs: Option<u64>,
    default_beta: Option<f64>,
    default_price: Option<f64>,
}

/// The validated, version-checked header of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Format version of the file (≤ [`FORMAT_VERSION`]).
    pub version: u32,
    /// Declared job count, when the producer knew it. Enforced: fewer rows
    /// is [`TraceParseError::Truncated`], more is
    /// [`TraceParseError::TrailingRow`].
    pub jobs: Option<u64>,
    /// Per-file fallback tail index for rows without a `beta` column.
    pub default_beta: Option<f64>,
    /// Per-file fallback price for rows without a `price` column.
    pub default_price: Option<f64>,
}

/// Resolved column layout of a trace file: the field index of each known
/// column, or `None` for absent extended columns.
#[derive(Debug, Clone)]
struct Columns {
    price: Option<usize>,
    beta: Option<usize>,
    t_min_s: Option<usize>,
    task_sizes: Option<usize>,
    /// Total column count (rows must match it exactly).
    count: usize,
}

/// Streaming reader of `chronos-trace` files.
///
/// Construction ([`TraceLoader::open`] / [`TraceLoader::from_reader`])
/// parses and validates the header and column lines; the rows are then
/// consumed either eagerly via [`TraceLoader::load`] or lazily via
/// [`TraceLoader::stream`].
#[derive(Debug)]
pub struct TraceLoader<R> {
    reader: R,
    header: TraceHeader,
    columns: Columns,
    /// 1-based number of the last line read.
    line: usize,
    /// Reused line buffer — row parsing never allocates per line.
    buf: String,
}

impl TraceLoader<BufReader<File>> {
    /// Opens a trace file from disk and validates its header.
    ///
    /// # Errors
    ///
    /// [`TraceParseError::Io`] when the file cannot be opened, plus every
    /// header-level failure of [`TraceLoader::from_reader`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceParseError> {
        let file = File::open(path.as_ref()).map_err(|err| TraceParseError::Io {
            line: 0,
            message: format!("{}: {err}", path.as_ref().display()),
        })?;
        // A generous buffer: traces are a few MB and row parsing is fast
        // enough that the default 8 KiB buffer's refill syscalls show up.
        TraceLoader::from_reader(BufReader::with_capacity(1 << 18, file))
    }
}

impl<R: BufRead> TraceLoader<R> {
    /// Wraps any buffered reader carrying trace-format text and validates
    /// its header and column lines.
    ///
    /// # Errors
    ///
    /// [`TraceParseError::EmptyFile`], [`TraceParseError::MalformedHeader`],
    /// [`TraceParseError::UnsupportedVersion`],
    /// [`TraceParseError::MalformedColumns`] or
    /// [`TraceParseError::UnknownColumn`].
    pub fn from_reader(mut reader: R) -> Result<Self, TraceParseError> {
        let mut line = 0usize;
        let mut buf = String::new();
        let header = match read_line(&mut reader, &mut line, &mut buf)? {
            Some(text) => parse_header(text, line)?,
            None => return Err(TraceParseError::EmptyFile),
        };
        let columns = match read_line(&mut reader, &mut line, &mut buf)? {
            Some(text) => parse_columns(text, line)?,
            None => {
                return Err(TraceParseError::MalformedColumns {
                    line: line + 1,
                    message: "file ends before the column header".into(),
                })
            }
        };
        if columns.beta.is_none() && header.default_beta.is_none() {
            return Err(TraceParseError::MalformedColumns {
                line,
                message: "no `beta` column and no `default_beta` in the header: \
                          task-time profiles cannot be reconstructed"
                    .into(),
            });
        }
        Ok(TraceLoader {
            reader,
            header,
            columns,
            line,
            buf,
        })
    }

    /// The validated file header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Streams the trace as chunks of at most `chunk_size` validated job
    /// specs, in file order, keeping one chunk in memory at a time (plus
    /// the set of job ids seen so far — 8 bytes per job — which enforces
    /// the format's id-uniqueness requirement across chunks).
    ///
    /// The returned iterator yields `Result` items and **fuses after the
    /// first error** — feed it to
    /// `ShardedRunner::run_chunked_fallible`, which stops pulling and
    /// surfaces the parse error deterministically.
    ///
    /// # Errors
    ///
    /// [`TraceParseError::InvalidChunkSize`] for a zero `chunk_size`;
    /// row-level failures surface through the iterator items instead.
    pub fn stream(self, chunk_size: u32) -> Result<TraceStream<R>, TraceParseError> {
        if chunk_size == 0 {
            return Err(TraceParseError::InvalidChunkSize);
        }
        Ok(TraceStream {
            loader: self,
            chunk_size,
            rows_yielded: 0,
            previous_submit_secs: None,
            seen_job_ids: std::collections::HashSet::with_hasher(SplitmixHash),
            done: false,
        })
    }

    /// Reads and validates the whole trace into one vector.
    ///
    /// # Errors
    ///
    /// The first row-level [`TraceParseError`], if any.
    pub fn load(self) -> Result<Vec<JobSpec>, TraceParseError> {
        let declared = self.header.jobs;
        let mut jobs = Vec::with_capacity(declared.unwrap_or(0).min(1 << 20) as usize);
        for chunk in self.stream(u32::MAX)? {
            jobs.extend(chunk?);
        }
        Ok(jobs)
    }
}

/// Chunked, fallible iterator over a trace file's job specs. Created by
/// [`TraceLoader::stream`]; yields `Ok(chunk)` items in file order and fuses
/// after the first `Err` (or the end of the file).
#[derive(Debug)]
pub struct TraceStream<R> {
    loader: TraceLoader<R>,
    chunk_size: u32,
    rows_yielded: u64,
    previous_submit_secs: Option<f64>,
    seen_job_ids: std::collections::HashSet<u64, SplitmixHash>,
    done: bool,
}

/// Splitmix64-finalizer hasher for the per-stream job-id set: ids are
/// already high-entropy integers, so a SipHash round per row is pure
/// overhead on the replay path.
#[derive(Debug, Default, Clone, Copy)]
struct SplitmixHash;

impl std::hash::BuildHasher for SplitmixHash {
    type Hasher = SplitmixHasher;

    #[inline]
    fn build_hasher(&self) -> SplitmixHasher {
        SplitmixHasher { state: 0 }
    }
}

#[derive(Debug, Default)]
struct SplitmixHasher {
    state: u64,
}

impl std::hash::Hasher for SplitmixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        let mut x = (self.state ^ value).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = x ^ (x >> 31);
    }
}

impl<R: BufRead> TraceStream<R> {
    /// Parses the next data row, tracking monotonicity and declared counts.
    /// `Ok(None)` is a clean end of file.
    fn next_spec(&mut self) -> Result<Option<JobSpec>, TraceParseError> {
        let loader = &mut self.loader;
        let text = match read_line(&mut loader.reader, &mut loader.line, &mut loader.buf)? {
            Some(text) => text,
            None => {
                if let Some(declared) = loader.header.jobs {
                    if self.rows_yielded < declared {
                        return Err(TraceParseError::Truncated {
                            line: loader.line + 1,
                            declared,
                            found: self.rows_yielded,
                        });
                    }
                }
                return Ok(None);
            }
        };
        if let Some(declared) = loader.header.jobs {
            if self.rows_yielded >= declared {
                return Err(TraceParseError::TrailingRow {
                    line: loader.line,
                    declared,
                });
            }
        }
        let spec = parse_row(text, loader.line, &loader.columns, &loader.header)?;
        let submit_secs = spec.submit_time.as_secs();
        if let Some(previous) = self.previous_submit_secs {
            if submit_secs < previous {
                return Err(TraceParseError::NonMonotonicSubmit {
                    line: loader.line,
                    previous_secs: previous,
                    found_secs: submit_secs,
                });
            }
        }
        if !self.seen_job_ids.insert(spec.id.raw()) {
            return Err(TraceParseError::DuplicateJobId {
                line: loader.line,
                job_id: spec.id.raw(),
            });
        }
        self.previous_submit_secs = Some(submit_secs);
        self.rows_yielded += 1;
        Ok(Some(spec))
    }
}

impl<R: BufRead> Iterator for TraceStream<R> {
    type Item = Result<Vec<JobSpec>, TraceParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut chunk = Vec::with_capacity(self.chunk_size.min(1 << 16) as usize);
        while (chunk.len() as u32) < self.chunk_size {
            match self.next_spec() {
                Ok(Some(spec)) => chunk.push(spec),
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(err) => {
                    self.done = true;
                    return Some(Err(err));
                }
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(Ok(chunk))
        }
    }
}

/// Reads the next non-blank line into the reused `buffer`, advancing the
/// 1-based line counter across skipped blanks, and returns the trimmed
/// slice. `Ok(None)` is end of file. Reusing one caller-owned buffer keeps
/// the row loop allocation-free.
fn read_line<'a, R: BufRead>(
    reader: &mut R,
    line: &mut usize,
    buffer: &'a mut String,
) -> Result<Option<&'a str>, TraceParseError> {
    loop {
        buffer.clear();
        let read = reader
            .read_line(buffer)
            .map_err(|err| TraceParseError::Io {
                line: *line + 1,
                message: err.to_string(),
            })?;
        if read == 0 {
            return Ok(None);
        }
        *line += 1;
        if !buffer.trim().is_empty() {
            break;
        }
    }
    Ok(Some(buffer.trim()))
}

/// Parses and validates header line 1.
fn parse_header(text: &str, line: usize) -> Result<TraceHeader, TraceParseError> {
    let raw: RawHeader =
        serde_json::from_str(text).map_err(|err| TraceParseError::MalformedHeader {
            line,
            message: err.to_string(),
        })?;
    if raw.format != FORMAT_NAME {
        return Err(TraceParseError::MalformedHeader {
            line,
            message: format!("format is `{}`, expected `{FORMAT_NAME}`", raw.format),
        });
    }
    if raw.version == 0 || raw.version > FORMAT_VERSION {
        return Err(TraceParseError::UnsupportedVersion {
            line,
            found: raw.version,
            supported: FORMAT_VERSION,
        });
    }
    for (name, value, requirement) in [
        ("default_beta", raw.default_beta, "a finite value > 1"),
        ("default_price", raw.default_price, "a finite value >= 0"),
    ] {
        if let Some(value) = value {
            let ok = value.is_finite()
                && if name == "default_beta" {
                    value > 1.0
                } else {
                    value >= 0.0
                };
            if !ok {
                return Err(TraceParseError::MalformedHeader {
                    line,
                    message: format!("`{name}` is {value}, expected {requirement}"),
                });
            }
        }
    }
    Ok(TraceHeader {
        version: raw.version,
        jobs: raw.jobs,
        default_beta: raw.default_beta,
        default_price: raw.default_price,
    })
}

/// Parses and validates column-header line 2.
fn parse_columns(text: &str, line: usize) -> Result<Columns, TraceParseError> {
    let names: Vec<&str> = text.split(',').map(str::trim).collect();
    if names.len() < CORE_COLUMNS.len() {
        return Err(TraceParseError::MalformedColumns {
            line,
            message: format!(
                "found {} columns, expected at least the {} core columns ({})",
                names.len(),
                CORE_COLUMNS.len(),
                CORE_COLUMNS.join(", ")
            ),
        });
    }
    for (index, expected) in CORE_COLUMNS.iter().enumerate() {
        if names[index] != *expected {
            return Err(TraceParseError::MalformedColumns {
                line,
                message: format!(
                    "column {} is `{}`, expected core column `{expected}` (core order is fixed: {})",
                    index + 1,
                    names[index],
                    CORE_COLUMNS.join(", ")
                ),
            });
        }
    }
    let mut columns = Columns {
        price: None,
        beta: None,
        t_min_s: None,
        task_sizes: None,
        count: names.len(),
    };
    for (index, name) in names.iter().enumerate().skip(CORE_COLUMNS.len()) {
        let slot = match *name {
            "price" => &mut columns.price,
            "beta" => &mut columns.beta,
            "t_min_s" => &mut columns.t_min_s,
            "task_sizes" => &mut columns.task_sizes,
            other => {
                return Err(TraceParseError::UnknownColumn {
                    line,
                    column: index + 1,
                    name: other.to_string(),
                })
            }
        };
        if slot.is_some() {
            return Err(TraceParseError::MalformedColumns {
                line,
                message: format!("duplicate column `{name}`"),
            });
        }
        *slot = Some(index);
    }
    Ok(columns)
}

/// Parses one data row into a validated [`JobSpec`].
fn parse_row(
    text: &str,
    line: usize,
    columns: &Columns,
    header: &TraceHeader,
) -> Result<JobSpec, TraceParseError> {
    // A validated column header has at most the 6 core + 4 extended
    // columns (`parse_columns` rejects unknowns and duplicates), so a row's
    // fields fit a fixed array — no per-row allocation.
    let mut fields: [&str; 10] = [""; 10];
    let mut field_count = 0usize;
    for field in text.split(',') {
        if field_count < fields.len() {
            fields[field_count] = field.trim();
        }
        field_count += 1;
    }
    if field_count != columns.count {
        return Err(TraceParseError::Field {
            line,
            column: field_count.min(columns.count),
            name: "(row)".into(),
            message: format!(
                "row has {field_count} fields, the column header declares {}",
                columns.count
            ),
        });
    }
    let field_err = |column: usize, name: &str, message: String| TraceParseError::Field {
        line,
        column: column + 1,
        name: name.to_string(),
        message,
    };

    let parse_u64 = |column: usize, name: &str| -> Result<u64, TraceParseError> {
        fields[column]
            .parse::<u64>()
            .map_err(|_| field_err(column, name, format!("`{}` is not a u64", fields[column])))
    };
    let parse_u32 = |column: usize, name: &str| -> Result<u32, TraceParseError> {
        fields[column]
            .parse::<u32>()
            .map_err(|_| field_err(column, name, format!("`{}` is not a u32", fields[column])))
    };
    let parse_f64 = |column: usize, name: &str| -> Result<f64, TraceParseError> {
        fields[column].parse::<f64>().map_err(|_| {
            field_err(
                column,
                name,
                format!("`{}` is not a number", fields[column]),
            )
        })
    };

    let job_id = parse_u64(0, "job_id")?;
    let submit_secs = parse_f64(1, "submit_time_s")?;
    if !(submit_secs.is_finite() && submit_secs >= 0.0) {
        return Err(field_err(
            1,
            "submit_time_s",
            format!("{submit_secs} is not a finite value >= 0"),
        ));
    }
    let map_tasks = parse_u32(2, "map_tasks")?;
    if map_tasks == 0 {
        return Err(field_err(
            2,
            "map_tasks",
            "a job needs at least one map task".into(),
        ));
    }
    // Validated but not replayed: the simulator models the map phase.
    let _reduce_tasks = parse_u32(3, "reduce_tasks")?;
    let mean_secs = parse_f64(4, "mean_task_duration_s")?;
    if !(mean_secs.is_finite() && mean_secs > 0.0) {
        return Err(field_err(
            4,
            "mean_task_duration_s",
            format!("{mean_secs} is not a finite value > 0"),
        ));
    }
    let deadline_secs = parse_f64(5, "deadline_s")?;
    if !(deadline_secs.is_finite() && deadline_secs > 0.0) {
        return Err(field_err(
            5,
            "deadline_s",
            format!("{deadline_secs} is not a finite value > 0"),
        ));
    }

    let price = match columns.price {
        Some(column) => {
            let price = parse_f64(column, "price")?;
            if !(price.is_finite() && price >= 0.0) {
                return Err(field_err(
                    column,
                    "price",
                    format!("{price} is not a finite value >= 0"),
                ));
            }
            price
        }
        None => header.default_price.unwrap_or(1.0),
    };
    let beta = match columns.beta {
        Some(column) => {
            let beta = parse_f64(column, "beta")?;
            if !(beta.is_finite() && beta > 1.0) {
                return Err(field_err(
                    column,
                    "beta",
                    format!("{beta} is not a finite value > 1 (finite mean task time)"),
                ));
            }
            beta
        }
        None => header
            .default_beta
            .expect("checked at open: beta column or default_beta"),
    };
    let t_min = match columns.t_min_s {
        Some(column) => {
            let t_min = parse_f64(column, "t_min_s")?;
            if !(t_min.is_finite() && t_min > 0.0) {
                return Err(field_err(
                    column,
                    "t_min_s",
                    format!("{t_min} is not a finite value > 0"),
                ));
            }
            // Cross-check: the mean column must agree with t_min and beta.
            let implied_mean = t_min * beta / (beta - 1.0);
            if (implied_mean - mean_secs).abs() > MEAN_CONSISTENCY_RTOL * mean_secs.abs() {
                return Err(field_err(
                    4,
                    "mean_task_duration_s",
                    format!(
                        "inconsistent profile: t_min_s {t_min} with beta {beta} implies a mean of {implied_mean}, the row says {mean_secs}"
                    ),
                ));
            }
            t_min
        }
        None => mean_secs * (beta - 1.0) / beta,
    };
    let profile = Pareto::new(t_min, beta).map_err(|err| TraceParseError::InvalidSpec {
        line,
        message: err.to_string(),
    })?;

    let tasks = match columns.task_sizes {
        Some(column) if !fields[column].is_empty() => {
            let mut tasks = Vec::with_capacity(map_tasks as usize);
            for raw in fields[column].split(';') {
                let factor = raw.trim().parse::<f64>().map_err(|_| {
                    field_err(
                        column,
                        "task_sizes",
                        format!("`{}` is not a number", raw.trim()),
                    )
                })?;
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(field_err(
                        column,
                        "task_sizes",
                        format!("size factor {factor} is not a finite value > 0"),
                    ));
                }
                tasks.push(TaskSpec::sized(factor));
            }
            if tasks.len() != map_tasks as usize {
                return Err(field_err(
                    column,
                    "task_sizes",
                    format!("{} size factors for {map_tasks} map tasks", tasks.len()),
                ));
            }
            tasks
        }
        _ => vec![TaskSpec::nominal(); map_tasks as usize],
    };

    let spec = JobSpec::new(
        JobId::new(job_id),
        SimTime::from_secs(submit_secs),
        deadline_secs,
        map_tasks as usize,
    )
    .with_profile(profile)
    .with_price(price)
    .with_tasks(tasks);
    spec.validate()
        .map_err(|err| TraceParseError::InvalidSpec {
            line,
            message: err.to_string(),
        })?;
    Ok(spec)
}

/// Streaming writer of `chronos-trace` files.
///
/// Emits the header and column lines on construction and one CSV row per
/// [`TraceWriter::write_job`] call, always with the full extended column set
/// (`price`, `beta`, `t_min_s`, `task_sizes`) so any [`JobSpec`] —
/// spot-priced, per-job-profiled, split-jittered — survives the round trip
/// bit-exactly. Floats are formatted with Rust's shortest round-trip
/// representation.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    declared_jobs: Option<u64>,
    written: u64,
    previous_submit_secs: Option<f64>,
    written_job_ids: std::collections::HashSet<u64>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file on disk and writes the header.
    ///
    /// # Errors
    ///
    /// [`TraceWriteError::Io`].
    pub fn create(
        path: impl AsRef<Path>,
        declared_jobs: Option<u64>,
    ) -> Result<Self, TraceWriteError> {
        let file = File::create(path.as_ref()).map_err(|err| TraceWriteError::Io {
            message: format!("{}: {err}", path.as_ref().display()),
        })?;
        TraceWriter::new(BufWriter::new(file), declared_jobs)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps any writer, immediately emitting the v1 header and column
    /// lines. Pass the job count as `declared_jobs` when it is known up
    /// front — it lets the loader detect truncated files.
    ///
    /// # Errors
    ///
    /// [`TraceWriteError::Io`].
    pub fn new(mut out: W, declared_jobs: Option<u64>) -> Result<Self, TraceWriteError> {
        match declared_jobs {
            Some(jobs) => writeln!(
                out,
                "{{\"format\":\"{FORMAT_NAME}\",\"version\":{FORMAT_VERSION},\"jobs\":{jobs}}}"
            )?,
            None => writeln!(
                out,
                "{{\"format\":\"{FORMAT_NAME}\",\"version\":{FORMAT_VERSION}}}"
            )?,
        }
        writeln!(
            out,
            "{},{}",
            CORE_COLUMNS.join(","),
            EXTENDED_COLUMNS.join(",")
        )?;
        Ok(TraceWriter {
            out,
            declared_jobs,
            written: 0,
            previous_submit_secs: None,
            written_job_ids: std::collections::HashSet::new(),
        })
    }

    /// Appends one job as a CSV row.
    ///
    /// # Errors
    ///
    /// [`TraceWriteError::InvalidSpec`] when the spec fails validation,
    /// [`TraceWriteError::DuplicateJobId`] when its id was already written
    /// (the loader would reject the file), [`TraceWriteError::NonMonotonicSubmit`]
    /// when it is out of submission order, [`TraceWriteError::InfiniteMean`]
    /// when its profile has `β ≤ 1`, and [`TraceWriteError::Io`] on write
    /// failures.
    pub fn write_job(&mut self, spec: &JobSpec) -> Result<(), TraceWriteError> {
        spec.validate()
            .map_err(|err| TraceWriteError::InvalidSpec {
                job: spec.id.raw(),
                message: err.to_string(),
            })?;
        if self.written_job_ids.contains(&spec.id.raw()) {
            return Err(TraceWriteError::DuplicateJobId { job: spec.id.raw() });
        }
        let submit_secs = spec.submit_time.as_secs();
        if let Some(previous) = self.previous_submit_secs {
            if submit_secs < previous {
                return Err(TraceWriteError::NonMonotonicSubmit {
                    job: spec.id.raw(),
                    previous_secs: previous,
                    found_secs: submit_secs,
                });
            }
        }
        let mean = spec
            .profile
            .mean()
            .ok_or_else(|| TraceWriteError::InfiniteMean {
                job: spec.id.raw(),
                beta: spec.profile.beta(),
            })?;
        let task_sizes = if spec.tasks.iter().all(|t| t.size_factor == 1.0) {
            String::new()
        } else {
            let factors: Vec<String> = spec
                .tasks
                .iter()
                .map(|t| t.size_factor.to_string())
                .collect();
            factors.join(";")
        };
        writeln!(
            self.out,
            "{},{},{},0,{},{},{},{},{},{}",
            spec.id.raw(),
            submit_secs,
            spec.task_count(),
            mean,
            spec.deadline_secs,
            spec.price,
            spec.profile.beta(),
            spec.profile.t_min(),
            task_sizes,
        )?;
        self.previous_submit_secs = Some(submit_secs);
        self.written_job_ids.insert(spec.id.raw());
        self.written += 1;
        Ok(())
    }

    /// Appends every job of an iterator, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TraceWriter::write_job`] failure.
    pub fn write_all<'a>(
        &mut self,
        jobs: impl IntoIterator<Item = &'a JobSpec>,
    ) -> Result<(), TraceWriteError> {
        for job in jobs {
            self.write_job(job)?;
        }
        Ok(())
    }

    /// Number of rows written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, verifying the declared
    /// job count was honoured.
    ///
    /// # Errors
    ///
    /// [`TraceWriteError::DeclaredCountMismatch`] or
    /// [`TraceWriteError::Io`].
    pub fn finish(mut self) -> Result<W, TraceWriteError> {
        if let Some(declared) = self.declared_jobs {
            if self.written != declared {
                return Err(TraceWriteError::DeclaredCountMismatch {
                    declared,
                    written: self.written,
                });
            }
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes a complete trace to `path` in one call, declaring the job count.
///
/// # Errors
///
/// Propagates [`TraceWriter`] failures.
pub fn write_trace(path: impl AsRef<Path>, jobs: &[JobSpec]) -> Result<(), TraceWriteError> {
    let mut writer = TraceWriter::create(path, Some(jobs.len() as u64))?;
    writer.write_all(jobs)?;
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::GoogleTraceConfig;
    use crate::workload::{Benchmark, TestbedWorkload};

    fn write_to_string(jobs: &[JobSpec]) -> String {
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, Some(jobs.len() as u64)).unwrap();
        writer.write_all(jobs).unwrap();
        writer.finish().unwrap();
        String::from_utf8(out).unwrap()
    }

    fn load_str(text: &str) -> Result<Vec<JobSpec>, TraceParseError> {
        TraceLoader::from_reader(text.as_bytes())?.load()
    }

    const HEADER: &str = r#"{"format":"chronos-trace","version":1,"default_beta":1.5}"#;
    const CORE: &str =
        "job_id,submit_time_s,map_tasks,reduce_tasks,mean_task_duration_s,deadline_s";

    #[test]
    fn google_trace_round_trips_bit_exactly() {
        let jobs = GoogleTraceConfig::scaled(200, 13)
            .generate()
            .unwrap()
            .into_jobs();
        let text = write_to_string(&jobs);
        let loaded = load_str(&text).unwrap();
        assert_eq!(loaded, jobs);
    }

    #[test]
    fn jittered_testbed_workload_round_trips_bit_exactly() {
        // WordCount has the widest split jitter: per-task size factors must
        // survive the task_sizes column bit-for-bit.
        let jobs = TestbedWorkload::paper_setup(Benchmark::WordCount, 5)
            .with_jobs(40)
            .generate()
            .unwrap();
        let text = write_to_string(&jobs);
        let loaded = load_str(&text).unwrap();
        assert_eq!(loaded, jobs);
    }

    #[test]
    fn round_trip_through_writer_twice_is_identical_text() {
        let jobs = GoogleTraceConfig::scaled(50, 3)
            .generate()
            .unwrap()
            .into_jobs();
        let text = write_to_string(&jobs);
        let reloaded = load_str(&text).unwrap();
        assert_eq!(write_to_string(&reloaded), text);
    }

    #[test]
    fn minimal_core_only_file_loads() {
        let text = format!("{HEADER}\n{CORE}\n7, 0.5, 3, 2, 60, 120\n8,1.5,1,0,30,90\n");
        let jobs = load_str(&text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id.raw(), 7);
        assert_eq!(jobs[0].task_count(), 3);
        assert_eq!(jobs[0].submit_time, SimTime::from_secs(0.5));
        assert_eq!(jobs[0].price, 1.0); // no default_price -> 1
        assert!((jobs[0].profile.beta() - 1.5).abs() < 1e-12);
        // t_min derived from the mean: 60 * 0.5 / 1.5 = 20.
        assert!((jobs[0].profile.t_min() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn header_defaults_apply() {
        let text = format!(
            "{}\n{CORE}\n0,0,1,0,60,120\n",
            r#"{"format":"chronos-trace","version":1,"default_beta":2.0,"default_price":0.25}"#
        );
        let jobs = load_str(&text).unwrap();
        assert_eq!(jobs[0].price, 0.25);
        assert_eq!(jobs[0].profile.beta(), 2.0);
        assert_eq!(jobs[0].profile.t_min(), 30.0);
    }

    #[test]
    fn stream_chunks_match_load() {
        let jobs = GoogleTraceConfig::scaled(30, 9)
            .generate()
            .unwrap()
            .into_jobs();
        let text = write_to_string(&jobs);
        for chunk_size in [1u32, 4, 7, 30, 1000] {
            let chunks: Vec<Vec<JobSpec>> = TraceLoader::from_reader(text.as_bytes())
                .unwrap()
                .stream(chunk_size)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert!(
                chunks.iter().all(|c| c.len() as u32 <= chunk_size),
                "chunk_size {chunk_size}"
            );
            let flat: Vec<JobSpec> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, jobs, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn stream_rejects_zero_chunk_size() {
        let text = format!("{HEADER}\n{CORE}\n");
        let loader = TraceLoader::from_reader(text.as_bytes()).unwrap();
        assert!(loader.stream(0).is_err());
    }

    #[test]
    fn empty_file_and_missing_columns() {
        assert_eq!(load_str("").unwrap_err(), TraceParseError::EmptyFile);
        let err = load_str(&format!("{HEADER}\n")).unwrap_err();
        assert!(
            matches!(err, TraceParseError::MalformedColumns { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn bad_header_version_names_line_1() {
        let text = format!(
            "{}\n{CORE}\n",
            r#"{"format":"chronos-trace","version":9,"default_beta":1.5}"#
        );
        let err = load_str(&text).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::UnsupportedVersion {
                line: 1,
                found: 9,
                supported: FORMAT_VERSION
            }
        );
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn wrong_format_name_is_malformed_header() {
        let err = load_str("{\"format\":\"parquet\",\"version\":1}\n").unwrap_err();
        assert!(
            matches!(err, TraceParseError::MalformedHeader { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn header_without_beta_source_is_rejected_at_open() {
        let text = format!("{}\n{CORE}\n", r#"{"format":"chronos-trace","version":1}"#);
        let err = TraceLoader::from_reader(text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceParseError::MalformedColumns { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("default_beta"), "{err}");
    }

    #[test]
    fn unknown_column_names_its_position() {
        let text = format!("{HEADER}\n{CORE},walltime\n");
        let err = TraceLoader::from_reader(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::UnknownColumn {
                line: 2,
                column: 7,
                name: "walltime".into()
            }
        );
    }

    #[test]
    fn reordered_core_columns_are_rejected() {
        let text = format!(
            "{HEADER}\nsubmit_time_s,job_id,map_tasks,reduce_tasks,mean_task_duration_s,deadline_s\n"
        );
        let err = TraceLoader::from_reader(text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceParseError::MalformedColumns { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn truncated_file_names_the_line_after_the_last_row() {
        let text = format!(
            "{}\n{CORE}\n0,0,1,0,60,120\n",
            r#"{"format":"chronos-trace","version":1,"jobs":3,"default_beta":1.5}"#
        );
        let err = load_str(&text).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::Truncated {
                line: 4,
                declared: 3,
                found: 1
            }
        );
    }

    #[test]
    fn trailing_rows_beyond_declared_count_are_rejected() {
        let text = format!(
            "{}\n{CORE}\n0,0,1,0,60,120\n1,1,1,0,60,120\n",
            r#"{"format":"chronos-trace","version":1,"jobs":1,"default_beta":1.5}"#
        );
        let err = load_str(&text).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::TrailingRow {
                line: 4,
                declared: 1
            }
        );
    }

    #[test]
    fn duplicate_job_id_names_the_second_occurrence() {
        let text = format!("{HEADER}\n{CORE}\n7,0,1,0,60,120\n8,1,1,0,60,120\n7,2,1,0,60,120\n");
        let err = load_str(&text).unwrap_err();
        assert_eq!(err, TraceParseError::DuplicateJobId { line: 5, job_id: 7 });
        assert_eq!(err.line(), 5);
        let message = err.to_string();
        assert!(message.contains("line 5"), "{message}");
        assert!(message.contains("duplicate job_id 7"), "{message}");
        assert!(message.contains("unique within the trace"), "{message}");
    }

    #[test]
    fn duplicate_job_id_is_caught_across_chunk_boundaries() {
        let text = format!("{HEADER}\n{CORE}\n7,0,1,0,60,120\n8,1,1,0,60,120\n7,2,1,0,60,120\n");
        let mut stream = TraceLoader::from_reader(text.as_bytes())
            .unwrap()
            .stream(1)
            .unwrap();
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().unwrap().is_ok());
        assert_eq!(
            stream.next().unwrap().unwrap_err(),
            TraceParseError::DuplicateJobId { line: 5, job_id: 7 }
        );
        assert!(stream.next().is_none());
    }

    #[test]
    fn writer_rejects_duplicate_job_ids() {
        let a = JobSpec::new(JobId::new(7), SimTime::ZERO, 100.0, 2);
        let b = JobSpec::new(JobId::new(7), SimTime::from_secs(1.0), 100.0, 2);
        let mut writer = TraceWriter::new(Vec::new(), None).unwrap();
        writer.write_job(&a).unwrap();
        let err = writer.write_job(&b).unwrap_err();
        assert_eq!(err, TraceWriteError::DuplicateJobId { job: 7 });
        assert!(err.to_string().contains("duplicate job_id"), "{err}");
        // The rejected row was not written: the declared count still holds.
        assert_eq!(writer.written(), 1);
    }

    #[test]
    fn header_only_trace_round_trips() {
        let text = write_to_string(&[]);
        let loaded = load_str(&text).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(write_to_string(&loaded), text);
        // The declared count of zero is enforced: any data row is trailing.
        let with_row = format!("{text}0,0,1,0,60,120,1,1.5,20,\n");
        let err = load_str(&with_row).unwrap_err();
        assert!(
            matches!(err, TraceParseError::TrailingRow { declared: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn non_monotonic_submit_names_the_line() {
        let text = format!("{HEADER}\n{CORE}\n0,5,1,0,60,120\n1,4.5,1,0,60,120\n");
        let err = load_str(&text).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::NonMonotonicSubmit {
                line: 4,
                previous_secs: 5.0,
                found_secs: 4.5
            }
        );
    }

    #[test]
    fn nan_and_negative_durations_are_field_errors() {
        for (bad_row, column) in [
            ("0,0,1,0,NaN,120", 5usize),
            ("0,0,1,0,-3,120", 5),
            ("0,0,1,0,60,-1", 6),
            ("0,-2,1,0,60,120", 2),
        ] {
            let text = format!("{HEADER}\n{CORE}\n{bad_row}\n");
            let err = load_str(&text).unwrap_err();
            match err {
                TraceParseError::Field {
                    line, column: c, ..
                } => {
                    assert_eq!(line, 3, "{bad_row}");
                    assert_eq!(c, column, "{bad_row}");
                }
                other => panic!("expected Field error for `{bad_row}`, got {other}"),
            }
        }
    }

    #[test]
    fn malformed_fields_name_line_and_column() {
        let text = format!("{HEADER}\n{CORE}\n0,0,zero,0,60,120\n");
        let err = load_str(&text).unwrap_err();
        assert_eq!(
            err,
            TraceParseError::Field {
                line: 3,
                column: 3,
                name: "map_tasks".into(),
                message: "`zero` is not a u32".into()
            }
        );
        let text = format!("{HEADER}\n{CORE}\n0,0,1,0,60\n");
        let err = load_str(&text).unwrap_err();
        assert!(
            matches!(err, TraceParseError::Field { line: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn zero_map_tasks_is_rejected() {
        let text = format!("{HEADER}\n{CORE}\n0,0,0,0,60,120\n");
        let err = load_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                TraceParseError::Field {
                    line: 3,
                    column: 3,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn inconsistent_mean_and_t_min_is_rejected() {
        let text = format!(
            "{HEADER}\n{CORE},t_min_s\n0,0,1,0,60,120,25\n" // 25 * 3 = 75 != 60
        );
        let err = load_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                TraceParseError::Field {
                    line: 3,
                    column: 5,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("inconsistent profile"), "{err}");
    }

    #[test]
    fn task_sizes_count_must_match_map_tasks() {
        let text = format!("{HEADER}\n{CORE},task_sizes\n0,0,3,0,60,120,1.0;1.1\n");
        let err = load_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                TraceParseError::Field {
                    line: 3,
                    column: 7,
                    ..
                }
            ),
            "{err}"
        );
        let text = format!("{HEADER}\n{CORE},task_sizes\n0,0,2,0,60,120,1.0;-0.5\n");
        let err = load_str(&text).unwrap_err();
        assert!(err.to_string().contains("size factor"), "{err}");
    }

    #[test]
    fn stream_fuses_after_first_error() {
        let text = format!("{HEADER}\n{CORE}\n0,0,1,0,60,120\n1,1,bad,0,60,120\n2,2,1,0,60,120\n");
        let mut stream = TraceLoader::from_reader(text.as_bytes())
            .unwrap()
            .stream(1)
            .unwrap();
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn writer_rejects_out_of_order_and_invalid_jobs() {
        let a = JobSpec::new(JobId::new(0), SimTime::from_secs(10.0), 100.0, 2);
        let b = JobSpec::new(JobId::new(1), SimTime::from_secs(5.0), 100.0, 2);
        let mut writer = TraceWriter::new(Vec::new(), None).unwrap();
        writer.write_job(&a).unwrap();
        let err = writer.write_job(&b).unwrap_err();
        assert!(
            matches!(err, TraceWriteError::NonMonotonicSubmit { job: 1, .. }),
            "{err}"
        );

        let mut writer = TraceWriter::new(Vec::new(), None).unwrap();
        let invalid = JobSpec::new(JobId::new(2), SimTime::ZERO, 100.0, 0);
        assert!(matches!(
            writer.write_job(&invalid).unwrap_err(),
            TraceWriteError::InvalidSpec { job: 2, .. }
        ));

        let mut writer = TraceWriter::new(Vec::new(), None).unwrap();
        let heavy = JobSpec::new(JobId::new(3), SimTime::ZERO, 100.0, 1)
            .with_profile(Pareto::new(10.0, 0.9).unwrap());
        assert!(matches!(
            writer.write_job(&heavy).unwrap_err(),
            TraceWriteError::InfiniteMean { job: 3, .. }
        ));
    }

    #[test]
    fn writer_enforces_declared_count() {
        let jobs = GoogleTraceConfig::scaled(5, 1)
            .generate()
            .unwrap()
            .into_jobs();
        let mut writer = TraceWriter::new(Vec::new(), Some(9)).unwrap();
        writer.write_all(&jobs).unwrap();
        assert_eq!(writer.written(), 5);
        let err = writer.finish().unwrap_err();
        assert_eq!(
            err,
            TraceWriteError::DeclaredCountMismatch {
                declared: 9,
                written: 5
            }
        );
    }

    #[test]
    fn blank_lines_are_skipped_but_counted() {
        let text = format!("{HEADER}\n\n{CORE}\n\n0,0,1,0,60,120\n\n1,1,bad,0,60,120\n");
        let err = load_str(&text).unwrap_err();
        // The bad row is physical line 7.
        assert_eq!(err.line(), 7);
    }

    #[test]
    fn error_display_names_lines_and_columns() {
        let err = TraceParseError::Field {
            line: 12,
            column: 5,
            name: "mean_task_duration_s".into(),
            message: "`NaN` is not a finite value > 0".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 12"), "{text}");
        assert!(text.contains("column 5"), "{text}");
        assert!(text.contains("mean_task_duration_s"), "{text}");
    }
}
