//! # chronos-obs
//!
//! Deterministic observability primitives for the Chronos reproduction.
//!
//! The paper's pitch is *explainable* speculation — every extra copy exists
//! because a closed-form utility/PoCD calculation justified it — so the
//! audit trail has to be as reproducible as the decisions themselves. This
//! crate provides three building blocks, all worker-count-invariant by
//! construction:
//!
//! * [`MetricsRegistry`] — typed counters / gauges / histograms forming a
//!   commutative monoid, like every report type in the workspace:
//!   per-shard or per-worker registries merge into one total that does not
//!   depend on scheduling. Renders to Prometheus text exposition or JSON.
//! * [`DecisionTrace`] — a bounded ring of typed, sim-time-stamped
//!   [`TraceEvent`]s (submit override applied, speculative copy
//!   launched/killed, deadline missed, plan-cache totals, budget
//!   grant/deny, serve admission/overload) with an integer-only FNV-1a
//!   digest that is bit-identical across worker counts, and a
//!   line-oriented rendering suitable for byte-exact golden comparison.
//! * [`span`] — two-clock phase timing: sim-time spans are plain
//!   [`TraceEvent::Phase`] records (digest-safe); wall-clock spans live
//!   behind the `wallclock` feature and are never hashed.
//!
//! The crate deliberately depends on nothing but `serde`/`serde_json` so
//! every layer of the stack (`chronos-sim`, `chronos-plan`,
//! `chronos-serve`, the bench tools) can feed it without dependency
//! cycles. Timestamps are raw integer microseconds; callers convert from
//! their own time types.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{HistogramMetric, MetricValue, MetricsRegistry};
pub use trace::{DecisionTrace, TraceEvent, TraceRecord};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::metrics::{HistogramMetric, MetricValue, MetricsRegistry};
    pub use crate::span::sim_span;
    #[cfg(feature = "wallclock")]
    pub use crate::span::{WallProfile, WallSpan};
    pub use crate::trace::{DecisionTrace, TraceEvent, TraceRecord};
}
