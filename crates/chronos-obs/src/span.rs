//! Span-style phase timing under two clocks.
//!
//! * **Sim-time spans** are ordinary [`TraceEvent::Phase`] records built
//!   from integer sim-time microseconds: deterministic, digest-safe, part
//!   of the decision log.
//! * **Wall-clock spans** (behind the `wallclock` feature) time real
//!   elapsed nanoseconds for profiling. They are *never* hashed, never
//!   merged into digested traces, and never written to golden files —
//!   they render only through [`WallProfile::render`].

use crate::trace::TraceEvent;

/// Builds a digest-safe sim-time phase span event. `start_micros` and
/// `end_micros` are integer microseconds of simulation time.
#[must_use]
pub fn sim_span(name: &str, start_micros: u64, end_micros: u64) -> TraceEvent {
    TraceEvent::Phase {
        name: name.to_string(),
        start_micros,
        end_micros,
    }
}

/// A running wall-clock span. Profiling only: readings are
/// nondeterministic and must never feed a digest or golden file.
#[cfg(feature = "wallclock")]
#[derive(Debug)]
pub struct WallSpan {
    name: String,
    started: std::time::Instant,
}

#[cfg(feature = "wallclock")]
impl WallSpan {
    /// Starts timing a named phase on the wall clock.
    #[must_use]
    pub fn start(name: &str) -> Self {
        WallSpan {
            name: name.to_string(),
            started: std::time::Instant::now(),
        }
    }

    /// Stops the span and records it into `profile`.
    pub fn finish(self, profile: &mut WallProfile) {
        let elapsed_nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        profile.spans.push((self.name, elapsed_nanos));
    }
}

/// An append-only collection of finished wall-clock spans.
#[cfg(feature = "wallclock")]
#[derive(Debug, Default)]
pub struct WallProfile {
    spans: Vec<(String, u64)>,
}

#[cfg(feature = "wallclock")]
impl WallProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Finished spans in completion order, as `(name, elapsed_nanos)`.
    #[must_use]
    pub fn spans(&self) -> &[(String, u64)] {
        &self.spans
    }

    /// Renders one `wall <name> <nanos>ns` line per span. Human-readable
    /// profiling output — not stable, not for goldens.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, nanos) in &self.spans {
            let _ = writeln!(out, "wall {name} {nanos}ns");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_span_is_a_phase_event() {
        let event = sim_span("simulate", 0, 42);
        assert_eq!(
            event,
            TraceEvent::Phase {
                name: "simulate".to_string(),
                start_micros: 0,
                end_micros: 42,
            }
        );
    }

    #[cfg(feature = "wallclock")]
    #[test]
    fn wall_spans_render() {
        let mut profile = WallProfile::new();
        WallSpan::start("noop").finish(&mut profile);
        assert_eq!(profile.spans().len(), 1);
        assert!(profile.render().starts_with("wall noop "));
    }
}
