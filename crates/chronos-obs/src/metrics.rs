//! A typed metrics registry that is a commutative monoid.
//!
//! Every aggregate in this workspace (`SimulationReport`,
//! `LatencyHistogram`, `CacheStats`, …) merges associatively and
//! commutatively so sharded runs are bit-identical regardless of worker
//! count. The registry follows the same law: [`MetricsRegistry::merge`] is
//! order-insensitive (counters and gauges add, histogram buckets add
//! element-wise), and the empty registry is the identity. Per-shard or
//! per-worker registries can therefore be folded in any order and still
//! render the same snapshot.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram snapshot: per-bucket counts over finite upper bounds, with
/// an implicit overflow bucket and a (non-hashed, informational) sum.
///
/// `counts.len() == bounds.len() + 1`; the final count is the overflow
/// (`+Inf`) bucket. Bounds must be strictly increasing and finite.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramMetric {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl HistogramMetric {
    /// Builds a histogram snapshot from finite upper bounds and per-bucket
    /// counts (`counts.len()` must be `bounds.len() + 1`; the last entry
    /// is the overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if the shape invariant is violated or a bound is not finite
    /// and strictly increasing.
    #[must_use]
    pub fn from_parts(bounds: Vec<f64>, counts: Vec<u64>, sum: f64) -> Self {
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "histogram needs one more count than bounds (overflow bucket)"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        HistogramMetric {
            bounds,
            counts,
            sum,
        }
    }

    /// Total number of observations across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of observed values (approximate if the producer derived it).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Finite bucket upper bounds, in increasing order.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the
    /// overflow (`+Inf`) bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another snapshot into this one, element-wise.
    ///
    /// The empty histogram is the identity. Two non-empty histograms must
    /// share the same bucket bounds — in this workspace every histogram of
    /// a given metric name has the same fixed shape by construction.
    ///
    /// # Panics
    ///
    /// Panics if both histograms are non-empty with different bounds.
    pub fn merge(&mut self, other: &HistogramMetric) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

/// The value of one metric family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotone event count; merges by addition.
    Counter(u64),
    /// Instantaneous level (queue depth, cache entries). Merging adds, so
    /// per-shard gauges report per-shard levels and the merged registry
    /// reports the cluster-wide total.
    Gauge(i64),
    /// Bucketed distribution; merges element-wise.
    Histogram(HistogramMetric),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(mine), MetricValue::Counter(theirs)) => *mine += theirs,
            (MetricValue::Gauge(mine), MetricValue::Gauge(theirs)) => *mine += theirs,
            (MetricValue::Histogram(mine), MetricValue::Histogram(theirs)) => mine.merge(theirs),
            (mine, theirs) => panic!(
                "metric type mismatch on merge: {} vs {}",
                mine.type_name(),
                theirs.type_name()
            ),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MetricFamily {
    help: String,
    value: MetricValue,
}

/// A registry of named metric families with deterministic iteration order
/// (names sort lexicographically) and monoidal merge.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    families: BTreeMap<String, MetricFamily>,
}

impl MetricsRegistry {
    /// An empty registry (the merge identity).
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Number of metric families registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no families are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn counter_add(&mut self, name: &str, help: &str, delta: u64) {
        self.upsert(name, help, MetricValue::Counter(delta));
    }

    /// Adds `delta` to the gauge `name`, creating it at zero first.
    /// Gauges add on merge, so record per-shard levels here and read
    /// cluster-wide totals from the merged registry.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge_add(&mut self, name: &str, help: &str, delta: i64) {
        self.upsert(name, help, MetricValue::Gauge(delta));
    }

    /// Merges `histogram` into the histogram family `name`, creating it
    /// empty first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type, or on a
    /// bucket-shape mismatch.
    pub fn histogram_merge(&mut self, name: &str, help: &str, histogram: HistogramMetric) {
        self.upsert(name, help, MetricValue::Histogram(histogram));
    }

    /// Looks up a metric family's current value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.families.get(name).map(|family| &family.value)
    }

    /// Iterates families in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.families
            .iter()
            .map(|(name, family)| (name.as_str(), &family.value))
    }

    /// Folds another registry into this one. Commutative and associative;
    /// `MetricsRegistry::new()` is the identity, so per-shard registries
    /// may be merged in any order.
    ///
    /// # Panics
    ///
    /// Panics if the same name carries different metric types.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, family) in &other.families {
            self.upsert(name, &family.help, family.value.clone());
        }
    }

    fn upsert(&mut self, name: &str, help: &str, value: MetricValue) {
        match self.families.get_mut(name) {
            Some(existing) => {
                existing.value.merge(&value);
                if existing.help.is_empty() {
                    existing.help = help.to_string();
                }
            }
            None => {
                self.families.insert(
                    name.to_string(),
                    MetricFamily {
                        help: help.to_string(),
                        value,
                    },
                );
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Output is fully deterministic: families print in name order, bucket
    /// bounds use Rust's shortest-roundtrip float formatting, and nothing
    /// wall-clock-derived is included — the rendering of a merged sharded
    /// run is byte-identical across worker counts.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.value.type_name());
            match &family.value {
                MetricValue::Counter(value) => {
                    let _ = writeln!(out, "{name} {value}");
                }
                MetricValue::Gauge(value) => {
                    let _ = writeln!(out, "{name} {value}");
                }
                MetricValue::Histogram(histogram) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in histogram.bounds.iter().zip(&histogram.counts) {
                        cumulative += count;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let total = histogram.count();
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{name}_sum {}", histogram.sum);
                    let _ = writeln!(out, "{name}_count {total}");
                }
            }
        }
        out
    }

    /// Renders the registry as pretty-printed JSON (same content as the
    /// Prometheus form, structured).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the registry contains only serializable
    /// primitives.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_histogram(scale: u64) -> HistogramMetric {
        HistogramMetric::from_parts(vec![1.0, 2.0, 4.0], vec![scale, 0, 2 * scale, 1], 7.5)
    }

    #[test]
    fn merge_is_commutative_with_identity() {
        let mut a = MetricsRegistry::new();
        a.counter_add("chronos_events_total", "events", 3);
        a.gauge_add("chronos_entries", "entries", 5);
        a.histogram_merge("chronos_latency", "latency", sample_histogram(1));

        let mut b = MetricsRegistry::new();
        b.counter_add("chronos_events_total", "events", 4);
        b.gauge_add("chronos_entries", "entries", -2);
        b.histogram_merge("chronos_latency", "latency", sample_histogram(2));
        b.counter_add("chronos_only_b_total", "b-only", 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut with_identity = ab.clone();
        with_identity.merge(&MetricsRegistry::new());
        assert_eq!(with_identity, ab);

        assert_eq!(
            ab.get("chronos_events_total"),
            Some(&MetricValue::Counter(7))
        );
        assert_eq!(ab.get("chronos_entries"), Some(&MetricValue::Gauge(3)));
        match ab.get("chronos_latency") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.counts(), &[3, 0, 6, 2]);
                assert_eq!(h.count(), 11);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prometheus_rendering_is_stable() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("chronos_events_total", "events dispatched", 12);
        registry.histogram_merge(
            "chronos_latency_seconds",
            "job latency",
            sample_histogram(1),
        );
        let text = registry.render_prometheus();
        let expected = "\
# HELP chronos_events_total events dispatched
# TYPE chronos_events_total counter
chronos_events_total 12
# HELP chronos_latency_seconds job latency
# TYPE chronos_latency_seconds histogram
chronos_latency_seconds_bucket{le=\"1\"} 1
chronos_latency_seconds_bucket{le=\"2\"} 1
chronos_latency_seconds_bucket{le=\"4\"} 3
chronos_latency_seconds_bucket{le=\"+Inf\"} 4
chronos_latency_seconds_sum 7.5
chronos_latency_seconds_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_round_trips() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("chronos_events_total", "events", 2);
        let json = registry.render_json();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, registry);
    }

    #[test]
    #[should_panic(expected = "metric type mismatch")]
    fn type_mismatch_panics() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("chronos_x", "", 1);
        registry.gauge_add("chronos_x", "", 1);
    }
}
